"""Tests for the JIT (JAX-like) compiler and the data-loading substrate."""

import pytest

from repro.framework import EagerEngine, tensor
from repro.framework import functional as F
from repro.framework.dataloader import DataLoader
from repro.framework.eager import PHASE_BEFORE
from repro.framework.graph import FusedOperator
from repro.framework.jit import PHASE_FUSION, PHASE_TRACE, JitCompiler, jit
from repro.framework.threads import THREAD_WORKER


def mlp_step(x, w1, w2):
    h = F.linear(x, w1)
    h = F.gelu(h)
    h = F.relu(h)
    h = F.linear(h, w2)
    return F.sum_(h)


@pytest.fixture
def engine():
    return EagerEngine("a100")


class TestTracing:
    def test_trace_records_original_operators(self, engine):
        compiler = JitCompiler(engine)
        with engine:
            w1, w2 = tensor((64, 32), requires_grad=True), tensor((8, 64), requires_grad=True)
            graph = compiler.trace(mlp_step, [tensor((4, 32)), w1, w2])
        assert graph.num_operators == 5
        assert [op.op_name for op in graph.operators] == [
            "aten::linear", "aten::gelu", "aten::relu", "aten::linear", "aten::sum"]
        # Tracing is abstract: nothing was launched on the engine.
        assert engine.kernel_launches == 0

    def test_trace_captures_compile_time_callpaths(self, engine):
        compiler = JitCompiler(engine)
        with engine:
            graph = compiler.trace(mlp_step, [tensor((4, 32)), tensor((64, 32)), tensor((8, 64))])
        for operator in graph.operators:
            assert operator.compile_time_callpath
            files = [frame[0] for frame in operator.compile_time_callpath]
            assert any(path.endswith("test_jit_and_dataloader.py") for path in files)


class TestCompilation:
    def test_fusion_groups_adjacent_elementwise_ops(self, engine):
        compiler = JitCompiler(engine)
        with engine:
            graph = compiler.trace(mlp_step, [tensor((4, 32)), tensor((64, 32)), tensor((8, 64))])
        compiler.compile(graph)
        assert graph.compiled
        fused = graph.fused_groups()
        assert len(fused) == 1
        assert fused[0].member_names == ["aten::gelu", "aten::relu"]
        # linear / linear stay unfused; sum joins no group of size >= 2.
        assert graph.num_executable < graph.num_operators

    def test_compilation_callbacks_observe_passes(self, engine):
        compiler = JitCompiler(engine)
        phases = []
        compiler.add_compilation_callback(lambda event: phases.append(event.phase))
        with engine:
            graph = compiler.trace(mlp_step, [tensor((4, 32)), tensor((64, 32)), tensor((8, 64))])
            compiler.compile(graph)
        assert PHASE_TRACE in phases and PHASE_FUSION in phases

    def test_compile_charges_host_time(self, engine):
        compiler = JitCompiler(engine)
        with engine:
            graph = compiler.trace(mlp_step, [tensor((4, 32)), tensor((64, 32)), tensor((8, 64))])
            before = engine.threads.main.cpu_clock.now
            compiler.compile(graph)
        assert engine.threads.main.cpu_clock.now > before

    def test_execute_requires_compilation(self, engine):
        compiler = JitCompiler(engine)
        with engine:
            graph = compiler.trace(mlp_step, [tensor((4, 32)), tensor((64, 32)), tensor((8, 64))])
            with pytest.raises(RuntimeError):
                compiler.execute(graph)


class TestCompiledFunction:
    def test_first_call_compiles_then_caches(self, engine):
        with engine:
            w1, w2 = tensor((64, 32), requires_grad=True), tensor((8, 64), requires_grad=True)
            compiled = jit(mlp_step, with_grad=True)
            compiled(tensor((4, 32)), w1, w2)
            kernels_first = engine.kernel_launches
            compiled(tensor((4, 32)), w1, w2)
        assert compiled.calls == 2
        assert compiled.compiler.graphs_compiled == 1
        # Second call launches the same number of kernels again (cached graph).
        assert engine.kernel_launches == 2 * kernels_first

    def test_jit_launches_fewer_kernels_than_eager(self, engine):
        with engine:
            w1, w2 = tensor((64, 32), requires_grad=True), tensor((8, 64), requires_grad=True)
            mlp_step(tensor((4, 32)), w1, w2)
            eager_kernels = engine.kernel_launches
        jit_engine = EagerEngine("a100")
        with jit_engine:
            compiled = jit(mlp_step, engine=jit_engine)
            compiled(tensor((4, 32)), w1, w2)
        assert jit_engine.kernel_launches < eager_kernels

    def test_fused_execution_fires_framework_callbacks(self, engine):
        names = []
        engine.add_global_callback(
            lambda info: names.append(info.op_name) if info.phase == PHASE_BEFORE else None)
        with engine:
            compiled = jit(mlp_step)
            compiled(tensor((4, 32)), tensor((64, 32)), tensor((8, 64)))
        assert any(name.startswith("xla::") for name in names)

    def test_with_grad_doubles_executable_passes(self, engine):
        with engine:
            forward_only = jit(mlp_step)
            forward_only(tensor((4, 32)), tensor((64, 32)), tensor((8, 64)))
            forward_kernels = engine.kernel_launches
        training_engine = EagerEngine("a100")
        with training_engine:
            training = jit(mlp_step, engine=training_engine, with_grad=True)
            training(tensor((4, 32)), tensor((64, 32)), tensor((8, 64)))
        assert training_engine.kernel_launches > forward_kernels
        assert training.num_kernels_per_call == 2 * forward_only.num_kernels_per_call


class TestFusedOperatorModel:
    def test_member_bookkeeping(self, engine):
        compiler = JitCompiler(engine)
        with engine:
            graph = compiler.trace(mlp_step, [tensor((4, 32)), tensor((64, 32)), tensor((8, 64))])
            compiler.compile(graph)
        group = graph.fused_groups()[0]
        assert isinstance(group, FusedOperator)
        assert len(group.member_ids) == len(group.members)
        assert graph.find_operator(group.member_ids[0]) is group.members[0]


class TestDataLoader:
    def test_oversubscription_factor(self, engine):
        loader = DataLoader(lambda i: [], num_batches=4, engine=engine,
                            num_workers=16, physical_cores=6)
        assert loader.scheduling_overhead_factor() > 1.5
        balanced = DataLoader(lambda i: [], num_batches=4, engine=engine,
                              num_workers=6, physical_cores=6)
        assert balanced.scheduling_overhead_factor() == 1.0

    def test_initial_load_costs_real_time_once(self, engine):
        loader = DataLoader(lambda i: [tensor((2, 2))], num_batches=3, engine=engine,
                            num_workers=8, physical_cores=6, initial_load_cpu_seconds=6.0)
        first = loader.initial_load()
        assert first > 0
        assert engine.machine.real_time.now == pytest.approx(first)
        assert loader.initial_load() == 0.0  # already loaded

    def test_more_workers_than_cores_is_slower(self, engine):
        def real_load(workers):
            local_engine = EagerEngine("a100")
            loader = DataLoader(lambda i: [], num_batches=1, engine=local_engine,
                                num_workers=workers, physical_cores=6,
                                initial_load_cpu_seconds=12.0)
            return loader.initial_load()
        assert real_load(16) > real_load(8)

    def test_worker_threads_created_and_charged(self, engine):
        loader = DataLoader(lambda i: [], num_batches=1, engine=engine,
                            num_workers=4, physical_cores=6, initial_load_cpu_seconds=4.0)
        charged = []
        loader.initial_load(lambda worker, seconds: (worker.cpu_clock.advance(seconds),
                                                     charged.append(worker.kind)))
        assert charged == [THREAD_WORKER] * 4
        workers = [t for t in engine.threads if t.kind == THREAD_WORKER]
        assert all(worker.cpu_clock.now == pytest.approx(1.0) for worker in workers)

    def test_iteration_yields_batches(self, engine):
        loader = DataLoader(lambda i: [tensor((2, 2))], num_batches=3, engine=engine,
                            num_workers=2, physical_cores=6, initial_load_cpu_seconds=1.0)
        batches = list(loader)
        assert len(batches) == 3 and len(loader) == 3
        assert loader.stats.batches_produced == 3

    def test_invalid_worker_count(self, engine):
        with pytest.raises(ValueError):
            DataLoader(lambda i: [], num_batches=1, engine=engine, num_workers=0)
