"""Tests for the lazy inclusive-metric model and the iterative serializers.

The CCT attributes observations into exclusive aggregates only and rolls the
inclusive view up on demand with parallel Welford merges; these tests pin the
invariants that refactor relies on: merge ≡ sequential adds, the generation
counter invalidates the view after post-query mutations, kind indexes match
traversal results, and the iterative / columnar (de)serializers round-trip
large and very deep trees.
"""

import json
import random
import sys

import pytest

from repro.core import CallingContextTree, MetricAggregate, ProfileDatabase
from repro.core import metrics as M
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)


def _path(module: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame(), thread_frame("main", 1),
        python_frame("train.py", 12, "train_step"),
        framework_frame(module),
        gpu_kernel_frame(kernel),
    ])


def _random_tree(contexts: int, observations: int, seed: int = 7) -> CallingContextTree:
    rng = random.Random(seed)
    tree = CallingContextTree("lazy")
    modules = [f"aten::op_{i}" for i in range(contexts)]
    for _ in range(observations):
        module = rng.choice(modules)
        node = tree.insert(_path(module, f"{module}_kernel"))
        tree.attribute_many(node, {
            M.METRIC_GPU_TIME: rng.uniform(1e-6, 1e-2),
            M.METRIC_KERNEL_COUNT: 1.0,
        })
    return tree


class TestParallelWelfordMerge:
    def test_merge_equals_sequential_within_1e9(self):
        rng = random.Random(13)
        values = [rng.uniform(-100.0, 100.0) for _ in range(500)]
        for split in (1, 137, 250, 499):
            left, right = MetricAggregate(), MetricAggregate()
            for value in values[:split]:
                left.add(value)
            for value in values[split:]:
                right.add(value)
            left.merge(right)

            sequential = MetricAggregate()
            for value in values:
                sequential.add(value)

            assert left.count == sequential.count
            assert left.sum == pytest.approx(sequential.sum, rel=1e-9, abs=1e-9)
            assert left.min == sequential.min and left.max == sequential.max
            assert left.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-9)
            assert left.variance == pytest.approx(sequential.variance, rel=1e-9, abs=1e-9)

    def test_state_roundtrip_is_lossless(self):
        aggregate = MetricAggregate()
        for value in (0.25, 1.5, -3.0, 7.125):
            aggregate.add(value)
        restored = MetricAggregate.from_state(*aggregate.state())
        assert restored.state() == aggregate.state()


class TestLazyInclusiveView:
    def test_inclusive_matches_eager_semantics(self):
        tree = CallingContextTree()
        node = tree.insert(_path("aten::relu", "relu_kernel"))
        tree.attribute(node, M.METRIC_GPU_TIME, 0.25)
        for ancestor in node.ancestors():
            assert ancestor.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(0.25)
        assert node.exclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(0.25)
        assert tree.root.exclusive.sum(M.METRIC_GPU_TIME) == 0.0

    def test_view_invalidates_after_post_query_attribution(self):
        tree = CallingContextTree()
        node = tree.insert(_path("aten::conv2d", "conv_kernel"))
        tree.attribute(node, M.METRIC_GPU_TIME, 1.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(1.0)
        # Mutating an already-queried tree must invalidate the cached view.
        tree.attribute(node, M.METRIC_GPU_TIME, 2.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(3.0)

    def test_view_invalidates_after_post_query_insert(self):
        tree = CallingContextTree()
        first = tree.insert(_path("aten::conv2d", "conv_kernel"))
        tree.attribute(first, M.METRIC_GPU_TIME, 1.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(1.0)
        second = tree.insert(_path("aten::relu", "relu_kernel"))
        tree.attribute_many(second, {M.METRIC_GPU_TIME: 0.5, M.METRIC_KERNEL_COUNT: 1.0})
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(1.5)
        assert tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT) == 1.0

    def test_generation_is_stable_across_pure_queries(self):
        tree = _random_tree(contexts=4, observations=50)
        generation = tree.generation
        tree.root.inclusive.sum(M.METRIC_GPU_TIME)
        tree.node_count()
        tree.approximate_size_bytes()
        _ = tree.kernels, tree.operators, tree.scopes
        assert tree.generation == generation

    def test_attribute_many_equals_repeated_attribute(self):
        batched, sequential = CallingContextTree(), CallingContextTree()
        metrics = {M.METRIC_GPU_TIME: 0.125, M.METRIC_KERNEL_COUNT: 1.0,
                   M.METRIC_BLOCKS: 96.0}
        node_batched = batched.insert(_path("aten::mm", "gemm"))
        node_sequential = sequential.insert(_path("aten::mm", "gemm"))
        batched.attribute_many(node_batched, metrics)
        for name, value in metrics.items():
            sequential.attribute(node_sequential, name, value)
        for name in metrics:
            assert batched.root.inclusive.sum(name) == sequential.root.inclusive.sum(name)
            assert node_batched.exclusive.get(name).state() == \
                node_sequential.exclusive.get(name).state()

    def test_kind_indexes_match_traversal(self):
        tree = _random_tree(contexts=6, observations=80)
        by_traversal = {id(n) for n in tree.nodes() if n.kind == FrameKind.GPU_KERNEL}
        assert {id(n) for n in tree.kernels} == by_traversal
        operators = {id(n) for n in tree.nodes()
                     if n.kind == FrameKind.FRAMEWORK and n.frame.tag != "scope"}
        assert {id(n) for n in tree.operators} == operators
        assert tree.node_count() == sum(1 for _ in tree.nodes())
        assert len(list(tree.bfs())) == tree.node_count()

    def test_bfs_is_level_order(self):
        tree = _random_tree(contexts=5, observations=30)
        depths = [node.depth for node in tree.bfs()]
        assert depths == sorted(depths)
        assert tree.max_depth() == max(depths)


class TestIncrementalMaterialization:
    def test_refresh_propagates_only_dirty_subtrees(self):
        # 40 steps × 12 operators × 2 kernels: ~1400 nodes, moderate fanout
        # everywhere, so one dirty leaf's refresh cost (its ancestor chain
        # plus those nodes' direct children) is a small slice of the tree.
        tree = CallingContextTree("incremental")
        for step in range(40):
            for op in range(12):
                for kernel in range(2):
                    node = tree.insert(CallPath.of([
                        root_frame("incremental"), thread_frame("main", 1),
                        python_frame("train.py", step, f"step_{step}"),
                        framework_frame(f"aten::op_{op}"),
                        gpu_kernel_frame(f"k{kernel}"),
                    ]))
                    tree.attribute(node, M.METRIC_GPU_TIME, 1e-4)
        tree.root.inclusive.sum(M.METRIC_GPU_TIME)  # full first pass
        full_pass = tree.propagations
        assert full_pass >= tree.node_count() - 1
        leaf = tree.kernels[0]
        tree.attribute(leaf, M.METRIC_GPU_TIME, 0.5)
        before = tree.root.inclusive.sum(M.METRIC_GPU_TIME)
        delta = tree.propagations - full_pass
        # Chain root→thread→step→op→kernel: ≈ 1 + 40 + 12 + 2 child merges,
        # versus ~1400 for a full pass.
        assert 0 < delta < tree.node_count() // 10
        tree.attribute(leaf, M.METRIC_GPU_TIME, 0.25)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == \
            pytest.approx(before + 0.25)

    def test_incremental_matches_full_rebuild(self):
        rng = random.Random(23)
        incremental = _random_tree(contexts=30, observations=200, seed=5)
        mirror = _random_tree(contexts=30, observations=200, seed=5)
        incremental.root.inclusive.sum(M.METRIC_GPU_TIME)  # prime the view
        for _round_index in range(12):
            module = f"aten::op_{rng.randrange(30)}"
            metrics = {M.METRIC_GPU_TIME: rng.uniform(1e-6, 1e-2),
                       M.METRIC_KERNEL_COUNT: 1.0}
            for tree in (incremental, mirror):
                tree.attribute_many(tree.insert(_path(module, f"{module}_kernel")),
                                    metrics)
            # Query the incremental tree every round (interleaved refreshes);
            # the mirror materializes once at the end, from scratch.
            incremental.root.inclusive.sum(M.METRIC_GPU_TIME)
        for ours, theirs in zip(incremental.all_nodes(), mirror.all_nodes()):
            assert ours.frame.identity() == theirs.frame.identity()
            for name, aggregate in theirs.inclusive.items():
                mine = ours.inclusive.get(name)
                assert mine.count == aggregate.count
                assert mine.total == pytest.approx(aggregate.total, rel=1e-9,
                                                   abs=1e-12)

    def test_structure_only_changes_keep_view_valid_without_work(self):
        tree = _random_tree(contexts=10, observations=50)
        total = tree.root.inclusive.sum(M.METRIC_GPU_TIME)
        done = tree.propagations
        tree.insert(_path("aten::fresh", "fresh_kernel"))  # no attribution
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == total
        assert tree.propagations == done  # nothing to propagate
        # The new node's (empty) inclusive is still correct and refreshable.
        fresh = tree.kernels[-1]
        assert fresh.inclusive.sum(M.METRIC_GPU_TIME) == 0.0
        tree.attribute(fresh, M.METRIC_GPU_TIME, 1.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(total + 1.0)

    def test_large_dirty_fraction_falls_back_to_full_pass(self):
        tree = _random_tree(contexts=6, observations=40)
        tree.root.inclusive.sum(M.METRIC_GPU_TIME)
        for node in tree.kernels:  # dirty most of the tree
            tree.attribute(node, M.METRIC_GPU_TIME, 0.1)
        # Correctness is what matters; the fallback keeps worst-case cost at
        # one full pass instead of affected-set bookkeeping plus ~a full pass.
        expected = sum(n.exclusive.sum(M.METRIC_GPU_TIME) for n in tree.all_nodes())
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(expected)


class TestQueryLayerCaching:
    def test_aggregate_by_name_memoized_behind_generation(self):
        tree = _random_tree(contexts=8, observations=100)
        first = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                       metric=M.METRIC_GPU_TIME)
        cached = tree._aggregate_cache[(FrameKind.GPU_KERNEL, M.METRIC_GPU_TIME)]
        assert cached[0] == tree.generation
        again = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                       metric=M.METRIC_GPU_TIME)
        assert again == first
        # Callers get copies: mutating a result must not poison the cache.
        again["poison"] = 1.0
        assert "poison" not in tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                                      metric=M.METRIC_GPU_TIME)

    def test_aggregate_cache_invalidated_by_attribution(self):
        tree = _random_tree(contexts=4, observations=30)
        kernel = tree.kernels[0]
        before = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                        metric=M.METRIC_GPU_TIME)
        tree.attribute(kernel, M.METRIC_GPU_TIME, 123.0)
        after = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                       metric=M.METRIC_GPU_TIME)
        assert after[kernel.name] == pytest.approx(before[kernel.name] + 123.0)

    def test_top_kernels_memoized_behind_generation(self, tmp_path):
        tree = _random_tree(contexts=6, observations=80)
        database = ProfileDatabase(tree)
        first = database.top_kernels(3)
        assert database.top_kernels(3) == first
        assert database._top_kernels_cache is not None
        # Different k → recompute; same k after mutation → recompute.
        assert len(database.top_kernels(1)) == 1
        kernel = tree.kernels[0]
        tree.attribute(kernel, M.METRIC_GPU_TIME, 999.0)
        assert database.top_kernels(3)[0]["kernel"] == kernel.name

    def test_total_metric_matches_inclusive_root(self):
        tree = _random_tree(contexts=5, observations=60)
        assert tree.total_metric(M.METRIC_GPU_TIME) == pytest.approx(
            tree.root.inclusive.sum(M.METRIC_GPU_TIME), rel=1e-12)
        tree.attribute(tree.kernels[0], M.METRIC_GPU_TIME, 2.5)
        assert tree.total_metric(M.METRIC_GPU_TIME) == pytest.approx(
            tree.root.inclusive.sum(M.METRIC_GPU_TIME), rel=1e-12)


class TestIterativeSerialization:
    def test_roundtrip_5k_node_tree_identical(self):
        tree = CallingContextTree("big")
        for index in range(2500):
            node = tree.insert(_path(f"aten::op_{index}", f"kernel_{index}"))
            tree.attribute_many(node, {M.METRIC_GPU_TIME: 1e-5 * (index + 1),
                                       M.METRIC_KERNEL_COUNT: 1.0})
        assert tree.node_count() >= 5000
        encoded = tree.to_dict()
        restored = CallingContextTree.from_dict(encoded)
        assert restored.node_count() == tree.node_count()
        # Round-tripping the restored tree must reproduce the encoding exactly
        # (same nesting, same sibling order, same aggregate values).
        assert restored.to_dict() == encoded

    def test_deep_tree_exceeding_recursion_limit(self):
        depth = sys.getrecursionlimit() + 500
        frames = [root_frame("deep")]
        frames += [python_frame("deep.py", line, f"f{line}") for line in range(depth)]
        tree = CallingContextTree("deep")
        leaf = tree.insert(CallPath.of(frames))
        tree.attribute(leaf, M.METRIC_CPU_TIME, 1.0)
        assert tree.max_depth() == depth
        restored = CallingContextTree.from_dict(tree.to_dict())
        assert restored.node_count() == tree.node_count()
        assert restored.root.inclusive.sum(M.METRIC_CPU_TIME) == pytest.approx(1.0)

    def test_roundtrip_preserves_registry_order_for_interleaved_creation(self):
        # Nodes created in an order that differs from pre-order: x, op2 first,
        # then y/op, then op under x.  Index-backed queries (all_nodes,
        # operators, ...) must enumerate identically before and after both
        # serialization formats.
        tree = CallingContextTree("order")
        tree.insert(CallPath.of([root_frame(), python_frame("a.py", 1, "x"),
                                 framework_frame("op2")]))
        tree.insert(CallPath.of([root_frame(), python_frame("b.py", 2, "y"),
                                 framework_frame("op", backward=True)]))
        tree.insert(CallPath.of([root_frame(), python_frame("a.py", 1, "x"),
                                 framework_frame("op", backward=True)]))
        live_order = [node.frame.identity() for node in tree.all_nodes()]
        from_json = CallingContextTree.from_dict(tree.to_dict())
        from_cols = CallingContextTree.from_columnar(tree.to_columnar())
        assert [n.frame.identity() for n in from_json.all_nodes()] == live_order
        assert [n.frame.identity() for n in from_cols.all_nodes()] == live_order
        assert [n.frame.identity() for n in from_json.operators] == \
            [n.frame.identity() for n in tree.operators]

    def test_columnar_roundtrip_preserves_metrics(self):
        tree = _random_tree(contexts=8, observations=200)
        payload = json.loads(json.dumps(tree.to_columnar()))  # exercise JSON safety
        restored = CallingContextTree.from_columnar(payload)
        assert restored.node_count() == tree.node_count()
        assert restored.insertions == tree.insertions
        for original, copy in zip(tree.all_nodes(), restored.all_nodes()):
            assert original.frame.identity() == copy.frame.identity()
            assert original.depth == copy.depth
            for name, aggregate in original.exclusive.items():
                assert copy.exclusive.get(name).state() == aggregate.state()
        assert restored.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(
            tree.root.inclusive.sum(M.METRIC_GPU_TIME), rel=1e-9)

    def test_columnar_database_save_load(self, tmp_path):
        tree = _random_tree(contexts=5, observations=120)
        database = ProfileDatabase(tree)
        json_path = database.save(str(tmp_path / "profile.json"))
        columnar_path = database.save(str(tmp_path / "profile.columnar.json"),
                                      format=ProfileDatabase.FORMAT_COLUMNAR)
        from_json = ProfileDatabase.load(json_path)
        from_columnar = ProfileDatabase.load(columnar_path)
        assert from_json.node_count() == from_columnar.node_count() == database.node_count()
        assert from_columnar.total_gpu_time() == pytest.approx(
            database.total_gpu_time(), rel=1e-9)
        assert from_columnar.top_kernels(5) == from_json.top_kernels(5)
        # The columnar file omits the recomputable inclusive view.
        assert (tmp_path / "profile.columnar.json").stat().st_size < \
            (tmp_path / "profile.json").stat().st_size

    def test_deep_columnar_save_survives_json_recursion_limit(self, tmp_path):
        depth = sys.getrecursionlimit() + 500
        frames = [root_frame("deep")]
        frames += [python_frame("deep.py", line, f"f{line}") for line in range(depth)]
        tree = CallingContextTree("deep")
        tree.attribute(tree.insert(CallPath.of(frames)), M.METRIC_CPU_TIME, 2.0)
        database = ProfileDatabase(tree)
        path = database.save(str(tmp_path / "deep.json"),
                             format=ProfileDatabase.FORMAT_COLUMNAR)
        restored = ProfileDatabase.load(path)
        assert restored.node_count() == tree.node_count()
        assert restored.total_cpu_time() == pytest.approx(2.0)
        # The nested default format cannot encode traces this deep (stdlib
        # json recursion limit) — it must fail with a helpful error, not a
        # bare RecursionError.
        with pytest.raises(ValueError, match="columnar"):
            database.save(str(tmp_path / "deep_nested.json"))
