"""Tests for the pluggable profile storage engine.

Three properties are pinned here:

* **Round-trip equivalence** (hypothesis): for any set of per-thread
  observations, saving through each registered backend — nested ``json``,
  ``columnar-json``, mmap-backed ``cct-binary-v1`` — and loading back yields
  the same structure, the same exclusive Welford states (byte-exact for the
  flat formats), the same inclusive views, and (for the shard-aware formats)
  the same thread provenance.

* **Laziness**: opening a binary profile decodes nothing; a single-shard
  query decodes exactly that shard's frame table plus the one requested
  metric column; cross-shard aggregation touches one column per shard and no
  merged tree; structural access hydrates and matches the eager tree.

* **Sniffing**: ``ProfileDatabase.load`` detects the on-disk format instead
  of assuming JSON, and mismatches/unknown files raise errors naming what was
  actually found.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CallingContextTree,
    LazyProfileView,
    ProfileDatabase,
    ProfileMetadata,
    ShardedCallingContextTree,
    backend_for,
    detect_format,
    registered_formats,
)
from repro.core import metrics as M
from repro.core.storage import BINARY_MAGIC
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)

ALL_FORMATS = ("json", "columnar-json", "cct-binary-v1")
THREAD_NAMES = {1: "main", 2: "backward-0", 3: "worker-0"}


def _path(tid: int, module: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame("storage"), thread_frame(THREAD_NAMES[tid], tid),
        python_frame("train.py", 10 + tid, "train_step"),
        framework_frame(f"aten::{module}"),
        gpu_kernel_frame(kernel),
    ])


def _build_sharded(observations) -> ShardedCallingContextTree:
    tree = ShardedCallingContextTree("storage")
    for tid, module, kernel, gpu_time in observations:
        shard = tree.shard_for_tid(tid, thread_name=THREAD_NAMES[tid])
        node = shard.insert(_path(tid, module, kernel))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                    M.METRIC_KERNEL_COUNT: 1.0})
    return tree


def _build_single(observations) -> CallingContextTree:
    tree = CallingContextTree("storage")
    for tid, module, kernel, gpu_time in observations:
        node = tree.insert(_path(tid, module, kernel))
        tree.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                   M.METRIC_KERNEL_COUNT: 1.0})
    return tree


def _snapshot(tree):
    """Path-keyed exclusive states and inclusive (count, sum) pairs."""
    snapshot = {}
    for node in tree.all_nodes():
        key = tuple(n.frame.identity() for n in node.path_from_root())
        exclusive = {name: aggregate.state()
                     for name, aggregate in node.exclusive.items() if aggregate.count}
        inclusive = {name: (aggregate.count, aggregate.total)
                     for name, aggregate in node.inclusive.items() if aggregate.count}
        snapshot[key] = (exclusive, inclusive)
    return snapshot


def _merged_of(database):
    tree = database.tree
    merged = getattr(tree, "merged", None)
    return merged() if merged is not None else tree


observations_strategy = st.lists(
    st.tuples(
        st.sampled_from([1, 2, 3]),
        st.sampled_from(["conv", "linear", "norm"]),
        st.sampled_from(["k0", "k1"]),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1, max_size=60,
)


class TestRoundTripEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(observations_strategy)
    def test_sharded_roundtrip_across_all_backends(self, observations):
        import tempfile, os
        tree = _build_sharded(observations)
        database = ProfileDatabase(tree, metadata=ProfileMetadata(program="storage"))
        expected = _snapshot(tree.merged())
        with tempfile.TemporaryDirectory() as directory:
            for format_name in ALL_FORMATS:
                path = database.save(os.path.join(directory, f"p.{format_name}"),
                                     format=format_name)
                restored = ProfileDatabase.load(path)
                actual = _snapshot(_merged_of(restored))
                assert set(actual) == set(expected), format_name
                exact = format_name != "json"  # nested JSON stores std, not m2
                for key, (exclusive, inclusive) in expected.items():
                    actual_exclusive, actual_inclusive = actual[key]
                    assert set(actual_exclusive) == set(exclusive)
                    for name, state in exclusive.items():
                        if exact:
                            assert actual_exclusive[name] == state, (format_name, key)
                        else:
                            assert actual_exclusive[name][0] == state[0]
                            assert actual_exclusive[name][1] == pytest.approx(
                                state[1], rel=1e-9, abs=1e-12)
                    assert set(actual_inclusive) == set(inclusive)
                    for name, (count, total) in inclusive.items():
                        assert actual_inclusive[name][0] == count
                        assert actual_inclusive[name][1] == pytest.approx(
                            total, rel=1e-9, abs=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(observations_strategy)
    def test_single_tree_roundtrip_across_all_backends(self, observations):
        import tempfile, os
        tree = _build_single(observations)
        database = ProfileDatabase(tree)
        with tempfile.TemporaryDirectory() as directory:
            for format_name in ALL_FORMATS:
                path = database.save(os.path.join(directory, f"p.{format_name}"),
                                     format=format_name)
                restored = ProfileDatabase.load(path)
                assert restored.node_count() == database.node_count(), format_name
                assert restored.total_gpu_time() == pytest.approx(
                    database.total_gpu_time(), rel=1e-9)
                assert [row["kernel"] for row in restored.top_kernels(4)] == \
                    [row["kernel"] for row in database.top_kernels(4)]

    def test_provenance_survives_shard_aware_backends(self, tmp_path):
        tree = _build_sharded([(1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0),
                               (3, "linear", "k0", 3.0)])
        database = ProfileDatabase(tree)
        for format_name in ("columnar-json", "cct-binary-v1"):
            path = database.save(str(tmp_path / f"p.{format_name}"),
                                 format=format_name)
            restored = ProfileDatabase.load(path)
            names = {entry["thread_name"]
                     for entry in restored.tree.shard_provenance()}
            assert names == {"main", "backward-0", "worker-0"}, format_name

    def test_binary_roundtrips_metadata_stats_and_issues(self, tmp_path):
        database = ProfileDatabase(
            _build_sharded([(1, "conv", "k0", 1.0)]),
            metadata=ProfileMetadata(program="p", framework="jax", iterations=7),
            dlmonitor_stats={"events": 42})
        database.issues = [{"analysis": "hotspot", "message": "hot"}]
        path = database.save(str(tmp_path / "p.cctb"), format="cct-binary-v1")
        restored = ProfileDatabase.load(path)
        assert restored.metadata.framework == "jax"
        assert restored.metadata.iterations == 7
        assert restored.dlmonitor_stats == {"events": 42}
        assert restored.issues == database.issues

    def test_single_tree_binary_hydrates_back_to_single_tree(self, tmp_path):
        database = ProfileDatabase(_build_single([(1, "conv", "k0", 1.0)]))
        path = database.save(str(tmp_path / "p.cctb"), format="cct-binary-v1")
        view = ProfileDatabase.load(path).tree
        assert isinstance(view.hydrate(), CallingContextTree)

    def test_binary_survives_recursion_limit_depth(self, tmp_path):
        import sys
        depth = sys.getrecursionlimit() + 300
        frames = [root_frame("deep")]
        frames += [python_frame("deep.py", line, f"f{line}") for line in range(depth)]
        tree = CallingContextTree("deep")
        tree.attribute(tree.insert(CallPath.of(frames)), M.METRIC_CPU_TIME, 2.0)
        database = ProfileDatabase(tree)
        path = database.save(str(tmp_path / "deep.cctb"), format="cct-binary-v1")
        restored = ProfileDatabase.load(path)
        assert restored.node_count() == tree.node_count()
        assert restored.total_cpu_time() == pytest.approx(2.0)


class TestLazyProfileView:
    def _binary_database(self, tmp_path):
        tree = _build_sharded([
            (1, "conv", "k0", 1.5), (2, "norm", "k1", 0.5), (3, "linear", "k0", 2.0),
            (1, "linear", "k1", 0.25), (2, "conv", "k0", 0.75),
        ])
        # A second metric family so column selectivity is observable.
        shard = tree.shard_for_tid(1)
        shard.attribute(shard.kernels[0], M.METRIC_STALL_SAMPLES, 9.0)
        database = ProfileDatabase(tree)
        path = database.save(str(tmp_path / "lazy.cctb"), format="cct-binary-v1")
        return database, ProfileDatabase.load(path)

    def test_open_decodes_nothing(self, tmp_path):
        _database, loaded = self._binary_database(tmp_path)
        view = loaded.tree
        assert isinstance(view, LazyProfileView)
        assert view.decoded_shard_ids() == set()
        assert view.decoded_columns() == set()
        assert not view.hydrated
        # TOC-served metadata costs no decode either.
        assert view.shard_count() == 3
        assert view.stored_node_count() > 0
        assert set(view.metric_names()) >= {M.METRIC_GPU_TIME, M.METRIC_KERNEL_COUNT}
        assert view.decoded_shard_ids() == set()

    def test_totals_come_from_column_blocks_alone(self, tmp_path):
        database, loaded = self._binary_database(tmp_path)
        assert loaded.total_gpu_time() == database.total_gpu_time()
        assert loaded.total_kernel_launches() == database.total_kernel_launches()
        view = loaded.tree
        assert view.decoded_shard_ids() == set()  # sums read, nothing decoded
        assert not view.hydrated

    def test_single_shard_query_decodes_only_that_shard_and_column(self, tmp_path):
        database, loaded = self._binary_database(tmp_path)
        view = loaded.tree
        totals = view.shard_aggregate_by_name(2, kind=FrameKind.GPU_KERNEL,
                                              metric=M.METRIC_GPU_TIME)
        shard = database.tree.shards()[2]
        assert totals == shard.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                                 metric=M.METRIC_GPU_TIME)
        assert view.decoded_shard_ids() == {2}
        assert view.decoded_columns() == {(2, M.METRIC_GPU_TIME)}
        assert not view.hydrated

    def test_column_aggregate_matches_tree_path_bitwise(self, tmp_path):
        """The names-only fast path returns bit-for-bit the tree path's rows
        while decoding no structure at all (the fleet aggregator's gear)."""
        database, loaded = self._binary_database(tmp_path)
        view = loaded.tree
        for kind in (FrameKind.GPU_KERNEL, None):
            fast = view.column_aggregate_by_name(kind=kind,
                                                 metric=M.METRIC_GPU_TIME)
            assert view.decoded_shard_ids() == set()
            assert view.decoded_columns() == set()
            assert not view.hydrated
            # A fresh view (the fast result is memoized on the first one).
            tree_view = ProfileDatabase.load(view.path).tree
            assert fast == tree_view.aggregate_by_name(
                kind=kind, metric=M.METRIC_GPU_TIME)
        assert view.column_aggregate_by_name(
            kind=FrameKind.GPU_KERNEL, metric="no_such_metric") == {}
        # Once a shard is warm (tree decoded), the fast path reuses it.
        view.shard_aggregate_by_name(1, kind=FrameKind.GPU_KERNEL,
                                     metric=M.METRIC_GPU_TIME)
        warm = view.column_aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                             metric=M.METRIC_GPU_TIME)
        fresh = ProfileDatabase.load(view.path).tree
        assert warm == fresh.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                               metric=M.METRIC_GPU_TIME)

    def test_cross_shard_aggregate_touches_one_column_per_shard(self, tmp_path):
        database, loaded = self._binary_database(tmp_path)
        view = loaded.tree
        totals = view.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                        metric=M.METRIC_GPU_TIME)
        expected = database.tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                                   metric=M.METRIC_GPU_TIME)
        assert set(totals) == set(expected)
        for name, value in expected.items():
            assert totals[name] == pytest.approx(value, rel=1e-12)
        assert view.decoded_columns() == {(tid, M.METRIC_GPU_TIME)
                                          for tid in view.shard_ids()}
        assert not view.hydrated  # no merged tree was built

    def test_top_kernels_stays_lazy_and_matches(self, tmp_path):
        database, loaded = self._binary_database(tmp_path)
        assert loaded.top_kernels(5) == database.top_kernels(5)
        view = loaded.tree
        assert not view.hydrated
        assert all(metric == M.METRIC_GPU_TIME
                   for _tid, metric in view.decoded_columns())

    def test_structural_access_hydrates_and_matches_eager(self, tmp_path):
        database, loaded = self._binary_database(tmp_path)
        view = loaded.tree
        assert _snapshot(view.merged()) is not None
        assert view.hydrated
        assert _snapshot(view.merged()) == _snapshot(database.tree.merged())
        assert loaded.node_count() == database.node_count()

    def test_analyzers_and_gui_work_against_the_lazy_view(self, tmp_path):
        from repro.analyzer.query import CCTQuery
        from repro.gui.flamegraph import FlameGraphBuilder
        database, loaded = self._binary_database(tmp_path)
        query = CCTQuery(loaded.tree)
        assert {node.name for node in query.kernels()} == \
            {node.name for node in CCTQuery(database.tree).kernels()}
        graph = FlameGraphBuilder().top_down(loaded.tree)
        reference = FlameGraphBuilder().top_down(database.tree)
        assert graph.total == pytest.approx(reference.total, rel=1e-9)
        assert graph.node_count() == reference.node_count()

    def test_resave_through_other_backends(self, tmp_path):
        database, loaded = self._binary_database(tmp_path)
        for format_name in ("json", "columnar-json"):
            path = loaded.save(str(tmp_path / f"re.{format_name}"),
                               format=format_name)
            resaved = ProfileDatabase.load(path)
            assert resaved.node_count() == database.node_count()
            assert resaved.total_gpu_time() == pytest.approx(
                database.total_gpu_time(), rel=1e-9)

    def test_unknown_shard_raises(self, tmp_path):
        _database, loaded = self._binary_database(tmp_path)
        with pytest.raises(KeyError, match="no shard"):
            loaded.tree.shard_aggregate_by_name(99)

    def test_totals_invalidate_after_shard_tree_mutation(self, tmp_path):
        # total_metric and aggregate_by_name share the generation-signature
        # cache key: a mutation through the shard_tree() handle must refresh
        # both, or top_kernels' fractions go inconsistent (>1).
        _database, loaded = self._binary_database(tmp_path)
        view = loaded.tree
        before = view.total_metric(M.METRIC_GPU_TIME)
        shard = view.shard_tree(1)
        shard.attribute(shard.kernels[0], M.METRIC_GPU_TIME, 5.0)
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(before + 5.0)
        assert all(row["fraction"] <= 1.0 + 1e-9 for row in loaded.top_kernels(5))


class TestFormatSniffing:
    def _database(self):
        return ProfileDatabase(_build_sharded([(1, "conv", "k0", 1.0)]))

    def test_detect_format_for_every_backend(self, tmp_path):
        database = self._database()
        for format_name in ALL_FORMATS:
            path = database.save(str(tmp_path / f"p.{format_name}"),
                                 format=format_name)
            assert detect_format(path) == format_name

    def test_legacy_alias_still_accepted(self, tmp_path):
        database = self._database()
        path = database.save(str(tmp_path / "p.columnar"), format="columnar")
        assert detect_format(path) == "columnar-json"
        assert ProfileDatabase.load(path).node_count() == database.node_count()

    def test_mismatch_error_names_detected_format(self, tmp_path):
        database = self._database()
        json_path = database.save(str(tmp_path / "p.json"), format="json")
        binary_path = database.save(str(tmp_path / "p.cctb"),
                                    format="cct-binary-v1")
        with pytest.raises(ValueError, match="'json'"):
            ProfileDatabase.load(json_path, format="cct-binary-v1")
        with pytest.raises(ValueError, match="'cct-binary-v1'"):
            ProfileDatabase.load(binary_path, format="columnar-json")
        with pytest.raises(ValueError, match="'columnar-json'"):
            ProfileDatabase.load(
                database.save(str(tmp_path / "p.cjson"), format="columnar-json"),
                format="json")

    def test_unrecognisable_files_raise_clear_errors(self, tmp_path):
        not_json = tmp_path / "garbage.bin"
        not_json.write_bytes(b"\x00\x01\x02 not a profile")
        with pytest.raises(ValueError, match="not a recognised profile"):
            ProfileDatabase.load(str(not_json))
        wrong_json = tmp_path / "other.json"
        wrong_json.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="neither 'tree' nor 'tree_columnar'"):
            ProfileDatabase.load(str(wrong_json))

    def test_truncated_binary_is_rejected(self, tmp_path):
        database = self._database()
        path = database.save(str(tmp_path / "p.cctb"), format="cct-binary-v1")
        blob = open(path, "rb").read()
        truncated = tmp_path / "trunc.cctb"
        truncated.write_bytes(blob[:len(blob) - 4])
        with pytest.raises(ValueError, match="truncated|corrupt"):
            ProfileDatabase.load(str(truncated))
        assert blob[:len(BINARY_MAGIC)] == BINARY_MAGIC
        offset, length, magic = struct.unpack("<QQ8s", blob[-24:])
        assert magic == BINARY_MAGIC and offset + length == len(blob) - 24

    def test_unknown_format_name_lists_registered(self):
        with pytest.raises(ValueError, match="registered formats"):
            backend_for("tarball")
        assert registered_formats() == ["json", "columnar-json", "cct-binary-v1"]

    def test_custom_backend_plugs_into_sniffing(self, tmp_path):
        from repro.core.storage import (StorageBackend, _BACKENDS, _REGISTRY,
                                        register_backend)

        class EnvelopeBackend(StorageBackend):
            """Toy plug-in: the columnar payload behind a custom magic."""

            name = "envelope-v1"
            MAGIC = b"ENVELOP1"

            def sniff(self, head):
                return head.startswith(self.MAGIC)

            def save(self, database, path):
                payload = json.dumps(database.to_dict(format="columnar-json"))
                with open(path, "wb") as handle:
                    handle.write(self.MAGIC + payload.encode("utf-8"))
                return path

            def load(self, path):
                with open(path, "rb") as handle:
                    blob = handle.read()
                return ProfileDatabase.from_dict(
                    json.loads(blob[len(self.MAGIC):].decode("utf-8")))

        backend = register_backend(EnvelopeBackend())
        try:
            database = self._database()
            path = database.save(str(tmp_path / "p.env"), format="envelope-v1")
            assert detect_format(path) == "envelope-v1"
            restored = ProfileDatabase.load(path)  # dispatched by sniffing
            assert restored.node_count() == database.node_count()
            with pytest.raises(ValueError, match="'envelope-v1'"):
                ProfileDatabase.load(path, format="json")
        finally:
            _BACKENDS.remove(backend)
            del _REGISTRY["envelope-v1"]

    def test_save_default_format_follows_profiler_config(self, tmp_path):
        database = self._database()
        database.metadata.config["profile_format"] = "cct-binary-v1"
        path = database.save(str(tmp_path / "configured"))
        assert detect_format(path) == "cct-binary-v1"
        assert isinstance(ProfileDatabase.load(path).tree, LazyProfileView)


class TestBlockCompression:
    def _database(self):
        tree = _build_sharded([
            (1, "conv", "k0", 1.5), (2, "norm", "k1", 0.5),
            (3, "linear", "k0", 2.0), (1, "conv", "k1", 0.25),
        ])
        return ProfileDatabase(tree, metadata=ProfileMetadata(program="z"))

    def test_zlib_roundtrip_matches_uncompressed_bit_for_bit(self, tmp_path):
        database = self._database()
        plain = database.save(str(tmp_path / "plain.cctb"),
                              format="cct-binary-v1")
        packed = database.save(str(tmp_path / "packed.cctb"),
                               format="cct-binary-v1", compression="zlib")
        assert detect_format(packed) == "cct-binary-v1"
        from_plain = ProfileDatabase.load(plain)
        from_packed = ProfileDatabase.load(packed)
        # Exact Welford states either way: compression is transparent.
        assert _snapshot(_merged_of(from_packed)) == \
            _snapshot(_merged_of(from_plain))
        assert from_packed.total_gpu_time() == from_plain.total_gpu_time()

    def test_compressed_blocks_carry_descriptor_flags(self, tmp_path):
        database = self._database()
        path = database.save(str(tmp_path / "packed.cctb"),
                             format="cct-binary-v1", compression="zlib")
        view = ProfileDatabase.load(path).tree
        descriptors = [descriptor
                       for shard in view._shards.values()
                       for descriptor in (shard.entry["frames"],
                                          *shard.entry["columns"].values())]
        assert descriptors
        assert all(d.get("compression") == "zlib" for d in descriptors)
        assert all(d["raw_length"] >= d["length"] - 64 for d in descriptors)

    def test_lazy_read_path_is_transparent_over_compression(self, tmp_path):
        database = self._database()
        path = database.save(str(tmp_path / "packed.cctb"),
                             format="cct-binary-v1", compression="zlib")
        loaded = ProfileDatabase.load(path)
        view = loaded.tree
        # Column-sum fast path and single-shard selectivity both survive.
        assert loaded.total_gpu_time() == pytest.approx(
            database.total_gpu_time())
        assert view.decoded_shard_ids() == set()
        totals = view.shard_aggregate_by_name(2, kind=FrameKind.GPU_KERNEL,
                                              metric=M.METRIC_GPU_TIME)
        assert totals == database.tree.shards()[2].aggregate_by_name(
            kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
        assert view.decoded_shard_ids() == {2}
        assert loaded.top_kernels(3) == database.top_kernels(3)

    def test_mixed_compressed_and_uncompressed_blocks_in_one_file(self, tmp_path):
        from repro.core import StreamingProfileWriter
        tree = _build_sharded([(1, "conv", "k0", 1.0)])
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "mixed.cctb"))
        writer.checkpoint()  # shard 1's blocks: uncompressed
        shard = tree.shard_for_tid(2, thread_name=THREAD_NAMES[2])
        node = shard.insert(_path(2, "norm", "k1"))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: 2.0,
                                    M.METRIC_KERNEL_COUNT: 1.0})
        writer.compression = "zlib"
        writer.checkpoint()  # shard 2's blocks: zlib; shard 1 carried forward
        writer._handle.close()  # no closing seal: keep both block flavours
        loaded = ProfileDatabase.load(str(tmp_path / "mixed.cctb"))
        flags = {shard.entry["frames"].get("compression")
                 for shard in loaded.tree._shards.values()}
        assert flags == {None, "zlib"}
        assert _snapshot(_merged_of(loaded)) == _snapshot(tree.merged())

    def test_profile_compression_config_drives_default_save(self, tmp_path):
        database = self._database()
        database.metadata.config["profile_format"] = "cct-binary-v1"
        database.metadata.config["profile_compression"] = "zlib"
        path = database.save(str(tmp_path / "configured"))
        view = ProfileDatabase.load(path).tree
        assert all(shard.entry["frames"].get("compression") == "zlib"
                   for shard in view._shards.values())

    def test_json_backends_reject_compression(self, tmp_path):
        database = self._database()
        for format_name in ("json", "columnar-json"):
            with pytest.raises(ValueError, match="does not support"):
                database.save(str(tmp_path / f"p.{format_name}"),
                              format=format_name, compression="zlib")

    def test_unknown_compression_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported profile compression"):
            self._database().save(str(tmp_path / "p.cctb"),
                                  format="cct-binary-v1", compression="lz77")


class TestProfileFormatErrors:
    def test_empty_file_names_path_and_condition(self, tmp_path):
        from repro.core import ProfileFormatError
        empty = tmp_path / "empty.profile"
        empty.write_bytes(b"")
        for probe in (ProfileDatabase.load, detect_format):
            with pytest.raises(ProfileFormatError,
                               match=r"empty\.profile.*empty \(0 bytes\)"):
                probe(str(empty))

    def test_truncated_json_profile_is_a_format_error(self, tmp_path):
        from repro.core import ProfileFormatError
        database = ProfileDatabase(_build_sharded([(1, "conv", "k0", 1.0)]))
        path = database.save(str(tmp_path / "p.json"), format="columnar-json")
        blob = open(path, "rb").read()
        cut = tmp_path / "cut.json"
        cut.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(ProfileFormatError, match="cut.json"):
            ProfileDatabase.load(str(cut))

    def test_mid_block_truncated_binary_is_a_format_error(self, tmp_path):
        from repro.core import ProfileFormatError
        database = ProfileDatabase(_build_sharded([(1, "conv", "k0", 1.0)]))
        path = database.save(str(tmp_path / "p.cctb"), format="cct-binary-v1")
        blob = open(path, "rb").read()
        for cut_name, cut in (("mid_block", len(blob) // 2),
                              ("mid_tail", len(blob) - 5),
                              ("head_only", 20)):
            truncated = tmp_path / f"{cut_name}.cctb"
            truncated.write_bytes(blob[:cut])
            with pytest.raises(ProfileFormatError, match=cut_name):
                ProfileDatabase.load(str(truncated))

    def test_format_errors_are_valueerrors(self):
        from repro.core import ProfileFormatError
        assert issubclass(ProfileFormatError, ValueError)

    def test_config_compression_with_json_format_saves_plain_json(self, tmp_path):
        # profile_compression is session-wide; combined with a JSON
        # profile_format it must not blow up after the run — the default
        # only applies to backends that support compression.
        database = ProfileDatabase(_build_sharded([(1, "conv", "k0", 1.0)]))
        database.metadata.config["profile_format"] = "json"
        database.metadata.config["profile_compression"] = "zlib"
        path = database.save(str(tmp_path / "plain"))
        assert detect_format(path) == "json"
        assert ProfileDatabase.load(path).node_count() == database.node_count()
