"""Property-based tests on cross-cutting invariants (hypothesis).

These complement the per-module tests: whatever call paths and metric values a
profile contains, the CCT, the flame-graph views and the exports must agree on
totals, and aggregation must stay consistent under collapsing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CallingContextTree
from repro.core import metrics as M
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.gui import FlameGraphBuilder, flamegraph_to_dict, flamegraph_to_folded

# Strategy: a synthetic profile is a list of (module, kernel, gpu_time) tuples.
profiles = st.lists(
    st.tuples(
        st.sampled_from(["conv", "linear", "norm", "softmax", "index"]),
        st.sampled_from(["k0", "k1", "k2"]),
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    ),
    min_size=1, max_size=60,
)


def build_tree(observations):
    tree = CallingContextTree("property")
    for module, kernel, gpu_time in observations:
        path = CallPath.of([
            root_frame("property"), thread_frame("main", 1),
            python_frame("train.py", 10, "train_step"),
            framework_frame(f"aten::{module}"),
            gpu_kernel_frame(f"{module}_{kernel}"),
        ])
        node = tree.insert(path)
        tree.attribute(node, M.METRIC_GPU_TIME, gpu_time)
        tree.attribute(node, M.METRIC_KERNEL_COUNT, 1.0)
    return tree


class TestProfileInvariants:
    @settings(max_examples=40, deadline=None)
    @given(profiles)
    def test_top_down_total_equals_tree_total(self, observations):
        tree = build_tree(observations)
        graph = FlameGraphBuilder().top_down(tree)
        assert graph.total == pytest.approx(tree.root.inclusive.sum(M.METRIC_GPU_TIME))
        # Every parent's value is at least the value of each of its children.
        for node in graph.root.walk():
            for child in node.children:
                assert node.value >= child.value - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(profiles)
    def test_bottom_up_preserves_total_and_uniqueness(self, observations):
        tree = build_tree(observations)
        graph = FlameGraphBuilder().bottom_up(tree, kind=FrameKind.GPU_KERNEL)
        assert graph.total == pytest.approx(tree.root.inclusive.sum(M.METRIC_GPU_TIME))
        labels = [child.label for child in graph.root.children]
        assert len(labels) == len(set(labels))
        # Aggregation by name agrees with the tree's own aggregation.
        by_name = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
        for child in graph.root.children:
            assert child.value == pytest.approx(by_name[child.label])

    @settings(max_examples=30, deadline=None)
    @given(profiles)
    def test_folded_export_sums_to_total(self, observations):
        tree = build_tree(observations)
        graph = FlameGraphBuilder().top_down(tree)
        folded = flamegraph_to_folded(graph)
        total = sum(float(line.rsplit(" ", 1)[1]) for line in folded.splitlines() if line)
        assert total == pytest.approx(graph.total, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(profiles)
    def test_serialization_preserves_totals_and_structure(self, observations):
        tree = build_tree(observations)
        restored = CallingContextTree.from_dict(tree.to_dict())
        assert restored.node_count() == tree.node_count()
        assert restored.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(
            tree.root.inclusive.sum(M.METRIC_GPU_TIME))
        assert restored.root.inclusive.sum(M.METRIC_KERNEL_COUNT) == \
            tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT)

    @settings(max_examples=30, deadline=None)
    @given(profiles)
    def test_kernel_count_equals_number_of_observations(self, observations):
        tree = build_tree(observations)
        assert tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT) == len(observations)
        exported = flamegraph_to_dict(FlameGraphBuilder().top_down(tree))
        assert exported["root"]["value"] == pytest.approx(
            tree.root.inclusive.sum(M.METRIC_GPU_TIME))

    @settings(max_examples=20, deadline=None)
    @given(profiles, profiles)
    def test_insertion_order_does_not_change_the_tree(self, first, second):
        combined = first + second
        forward = build_tree(combined)
        backward = build_tree(list(reversed(combined)))
        assert forward.node_count() == backward.node_count()
        assert forward.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(
            backward.root.inclusive.sum(M.METRIC_GPU_TIME))
