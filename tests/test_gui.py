"""Tests for the GUI layer: flame graphs, colours, exporters, IDE bridge."""

import json
import os

import pytest

from repro.analyzer import PerformanceAnalyzer, Severity
from repro.core import DeepContextProfiler, ProfilerConfig
from repro.dlmonitor.callpath import FrameKind
from repro.dlmonitor.fusion_map import FusionMap, OriginalOperator
from repro.framework import EagerEngine, modules, tensor
from repro.gui import (
    FlameGraphBuilder,
    IdeBridge,
    VisualizationEvent,
    flamegraph_to_dict,
    flamegraph_to_folded,
    flamegraph_to_json,
    flamegraph_to_speedscope,
    frame_color,
    heat_color,
    kind_color,
    render_html,
    render_svg,
    save_html,
    save_svg,
    severity_color,
)


@pytest.fixture(scope="module")
def profile():
    engine = EagerEngine("a100")
    profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="gui"))
    with engine, profiler.profile():
        net = modules.Sequential(modules.Conv2d(3, 8), modules.ReLU(),
                                 modules.Conv2d(8, 16), name="net")
        loss_fn = modules.MSELoss()
        for _ in range(2):
            out = net(tensor((2, 3, 32, 32)))
            loss = loss_fn(out, out.like())
            engine.backward(loss)
        engine.synchronize()
    database = profiler.database
    report = PerformanceAnalyzer().analyze(database)
    return database, report


class TestFlameGraphs:
    def test_top_down_mirrors_tree_totals(self, profile):
        database, report = profile
        graph = FlameGraphBuilder().top_down(database.tree, issues=report.issues)
        assert graph.view == "top_down"
        assert graph.total == pytest.approx(database.total_gpu_time())
        fractions = [node.fraction for node in graph.root.walk()]
        assert all(0.0 <= fraction <= 1.0 + 1e-9 for fraction in fractions)
        hottest = graph.hottest_path()
        assert hottest[0] is graph.root and len(hottest) > 3

    def test_children_sorted_by_value(self, profile):
        database, _report = profile
        graph = FlameGraphBuilder().top_down(database.tree)
        for node in graph.root.walk():
            values = [child.value for child in node.children]
            assert values == sorted(values, reverse=True)

    def test_bottom_up_aggregates_kernels(self, profile):
        database, _report = profile
        graph = FlameGraphBuilder().bottom_up(database.tree, kind=FrameKind.GPU_KERNEL)
        assert graph.view == "bottom_up"
        labels = [child.label for child in graph.root.children]
        assert len(labels) == len(set(labels)), "bottom-up entries must be unique per kernel"
        assert graph.total == pytest.approx(database.total_gpu_time())
        # Entries expand into caller chains.
        assert graph.root.children[0].children

    def test_issue_annotations_attach_to_nodes(self, profile):
        database, report = profile
        if not report.issues:
            pytest.skip("no issues flagged for this profile")
        graph = FlameGraphBuilder().top_down(database.tree, issues=report.issues)
        annotated = [node for node in graph.root.walk() if node.issues]
        assert annotated


class TestColors:
    def test_heat_scale_endpoints(self):
        assert heat_color(0.0) != heat_color(1.0)
        assert heat_color(2.0) == heat_color(1.0)

    def test_kind_and_severity_palettes(self):
        assert kind_color("gpu_kernel").startswith("#")
        assert kind_color("unknown-kind").startswith("#")
        assert severity_color(Severity.CRITICAL) != severity_color(Severity.INFO)

    def test_issue_frames_use_severity_color(self):
        assert frame_color("python", 0.5, has_issue=True) == severity_color(Severity.WARNING)
        assert frame_color("python", 0.9) == heat_color(0.9)
        assert frame_color("python", 0.001) == kind_color("python")


class TestExports:
    def test_json_and_folded_exports(self, profile):
        database, _report = profile
        graph = FlameGraphBuilder().top_down(database.tree)
        data = flamegraph_to_dict(graph)
        assert data["view"] == "top_down" and data["root"]["children"]
        parsed = json.loads(flamegraph_to_json(graph))
        assert parsed["metric"] == "gpu_time"
        folded = flamegraph_to_folded(graph)
        assert folded.endswith("\n")
        assert any(";" in line for line in folded.splitlines())

    def test_speedscope_document_structure(self, profile):
        database, _report = profile
        graph = FlameGraphBuilder().top_down(database.tree)
        doc = flamegraph_to_speedscope(graph, name="gui-test")
        assert doc["profiles"][0]["type"] == "evented"
        events = doc["profiles"][0]["events"]
        assert len(events) % 2 == 0
        opens = sum(1 for event in events if event["type"] == "O")
        closes = sum(1 for event in events if event["type"] == "C")
        assert opens == closes == len(events) // 2
        assert doc["profiles"][0]["endValue"] >= doc["profiles"][0]["startValue"]

    def test_svg_and_html_rendering(self, profile, tmp_path):
        database, report = profile
        graph = FlameGraphBuilder().top_down(database.tree, issues=report.issues)
        svg = render_svg(graph, title="test")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "<rect" in svg and "title" in svg
        html = render_html(graph, report=report, title="GUI test")
        assert "<!DOCTYPE html>" in html and "deepcontext-flamegraph" in html
        svg_path = save_svg(graph, str(tmp_path / "graph.svg"))
        html_path = save_html(graph, str(tmp_path / "graph.html"), report=report)
        assert (tmp_path / "graph.svg").exists() and (tmp_path / "graph.html").exists()
        assert svg_path.endswith(".svg") and html_path.endswith(".html")


class TestIdeBridge:
    def test_python_frame_click_opens_file(self, profile):
        database, _report = profile
        python_nodes = database.tree.nodes_of_kind(FrameKind.PYTHON)
        bridge = IdeBridge()
        actions = bridge.handle(VisualizationEvent(kind="click", node=python_nodes[0]))
        assert actions[0].command == "open_file"
        assert actions[0].file == python_nodes[0].frame.file
        assert bridge.actions_log

    def test_kernel_click_walks_up_to_python_ancestor(self, profile):
        database, _report = profile
        kernel = database.tree.kernels[0]
        actions = IdeBridge().handle(VisualizationEvent(kind="click", node=kernel))
        assert actions[0].command in ("open_file", "show_message")
        if actions[0].command == "open_file":
            assert actions[0].file.endswith(".py")

    def test_fused_operator_click_uses_fusion_map(self):
        from repro.core.cct import CCTNode
        from repro.dlmonitor.callpath import framework_frame
        fusion_map = FusionMap()
        fusion_map.record("xla::gelu_relu", "step", [
            OriginalOperator("aten::gelu", 1, (("model.py", 12, "ffn"),)),
            OriginalOperator("aten::relu", 2, (("model.py", 13, "ffn"),)),
        ])
        node = CCTNode(framework_frame("xla::gelu_relu"))
        actions = IdeBridge(fusion_map=fusion_map).handle(
            VisualizationEvent(kind="click", node=node))
        assert len(actions) == 2
        assert {action.line for action in actions} == {12, 13}

    def test_click_without_node_shows_message(self):
        actions = IdeBridge().handle(VisualizationEvent(kind="click", label="mystery"))
        assert actions[0].command == "show_message"


class TestDashboard:
    def _store(self, tmp_path):
        from repro.core import ProfileDatabase, ProfileMetadata
        from repro.core import metrics as M
        from repro.core.cct import ShardedCallingContextTree
        from repro.dlmonitor.callpath import (CallPath, framework_frame,
                                              gpu_kernel_frame, python_frame,
                                              root_frame, thread_frame)
        from repro.fleet import ProfileStore

        store = ProfileStore(tmp_path / "store")
        for index in range(2):
            tree = ShardedCallingContextTree("unet")
            shard = tree.shard_for_tid(1, thread_name="main")
            node = shard.insert(CallPath.of([
                root_frame("unet"), thread_frame("main", 1),
                python_frame("train.py", 10, "train_step"),
                framework_frame("aten::conv"), gpu_kernel_frame("k_conv")]))
            shard.attribute_many(node, {M.METRIC_GPU_TIME: 1.0 + index,
                                        M.METRIC_KERNEL_COUNT: 1.0})
            metadata = ProfileMetadata(program="unet", workload="unet",
                                       device="A100")
            store.ingest(ProfileDatabase(tree, metadata))
        return store

    def test_empty_dashboard_still_renders(self):
        from repro.gui import render_dashboard
        page = render_dashboard()
        assert '<meta http-equiv="refresh" content="5"/>' in page
        assert "No live runs." in page
        assert "No health time-series." in page
        assert "No issue log." in page
        state = json.loads(page.split(
            'id="repro-dashboard-state">')[1].split("</script>")[0])
        assert state["live"] == []

    def test_store_panels_render_from_catalog(self, tmp_path):
        from repro.gui import render_dashboard
        store = self._store(tmp_path)
        page = render_dashboard(store=store, title="fleet <dash>")
        assert "fleet &lt;dash&gt;" in page  # titles are escaped
        assert "runs in store" in page
        assert "unet" in page
        state = json.loads(page.split(
            'id="repro-dashboard-state">')[1].split("</script>")[0])
        assert state["store"]["runs"] == 2
        assert state["store"]["workloads"] == {"unet": 2}
        assert "catalog_lock" in state["store"]

    def test_live_runs_render_flame_graphs_and_stall_badges(self, tmp_path):
        from repro.fleet import WatchedRun
        from repro.gui import render_dashboard

        store = self._store(tmp_path)
        run_id = store.run_ids()[0]
        view = store.open_view(run_id)
        try:
            live = [
                WatchedRun(path="/x/run-live.cctb", view=view, nodes=5,
                           metric_total=1.0),
                WatchedRun(path="/x/run-stuck.cctb", view=None, nodes=3,
                           metric_total=0.5, stalled=True),
            ]
            page = render_dashboard(live=live)
        finally:
            view.close()
        assert "run-live" in page
        assert "<svg" in page  # the live view got flame-graphed
        assert "run-stuck" in page
        assert "stalled (serving last sealed prefix)" in page

    def test_health_sparklines_and_issue_rows(self, tmp_path):
        from repro.gui import render_dashboard
        from repro.obs import HealthTimeSeries

        health = HealthTimeSeries(str(tmp_path / "h.jsonl"), fsync=False)
        for tick in range(3):
            health.append({"gauges": {"watcher.runs_live": float(tick)}},
                          ts=float(tick))
        issues = HealthTimeSeries(str(tmp_path / "i.jsonl"), fsync=False)
        issues.append({"analysis": "regression", "node": "k_hot",
                       "severity": "critical",
                       "message": "gpu_time grew 1 -> 9"}, ts=1.0)
        page = render_dashboard(health=health, issue_log=issues)
        assert "live runs — now 2" in page
        assert "polyline" in page  # the sparkline SVG
        assert "regression" in page
        assert "k_hot" in page
        assert 'class="issue critical"' in page
        assert "1 issue(s) on file" in page

    def test_save_dashboard_is_atomic_overwrite(self, tmp_path):
        from repro.gui import save_dashboard
        target = str(tmp_path / "dash.html")
        save_dashboard(target, title="first")
        save_dashboard(target, title="second")
        page = open(target, encoding="utf-8").read()
        assert "second" in page and "first" not in page
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]
