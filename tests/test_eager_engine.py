"""Tests for the eager execution engine: callbacks, autograd, threads, scopes."""

import pytest

from repro.framework import EagerEngine, modules, tensor
from repro.framework import functional as F
from repro.framework.eager import PHASE_AFTER, PHASE_BEFORE, current_engine, has_current_engine
from repro.framework.threads import THREAD_BACKWARD
from repro.native.symbols import LIBMIOPEN, LIBTORCH_HIP


@pytest.fixture
def engine():
    return EagerEngine("a100")


class TestEngineBasics:
    def test_no_engine_active_outside_context(self):
        assert not has_current_engine()
        with pytest.raises(RuntimeError):
            current_engine()

    def test_context_manager_activates_engine(self, engine):
        with engine:
            assert current_engine() is engine
        assert not has_current_engine()

    def test_nested_engines(self, engine):
        inner = EagerEngine("mi250")
        with engine:
            with inner:
                assert current_engine() is inner
            assert current_engine() is engine

    def test_op_executes_and_counts(self, engine):
        with engine:
            out = F.relu(tensor((4, 4)))
        assert out.shape == (4, 4)
        assert engine.op_count == 1
        assert engine.kernel_launches == 1

    def test_main_thread_native_stack_seeded_with_libpython(self, engine):
        functions = [frame.function for frame in engine.threads.main.native_stack.frames]
        assert "PyEval_EvalFrameDefault" in functions
        assert "__libc_start_main" in functions

    def test_native_stack_balanced_after_op(self, engine):
        base_depth = engine.threads.main.native_stack.depth
        with engine:
            F.linear(tensor((2, 8)), tensor((4, 8), requires_grad=True))
        assert engine.threads.main.native_stack.depth == base_depth


class TestCallbacks:
    def test_before_and_after_phases(self, engine):
        events = []
        engine.add_global_callback(lambda info: events.append((info.op_name, info.phase)))
        with engine:
            F.relu(tensor((2, 2)))
        assert events == [("aten::relu", PHASE_BEFORE), ("aten::relu", PHASE_AFTER)]

    def test_callback_sees_scope_and_io_metadata(self, engine):
        seen = []
        engine.add_global_callback(lambda info: seen.append(info))
        with engine:
            layer = modules.Linear(8, 4, name="proj")
            layer(tensor((2, 8)))
        assert any(info.scope == ["proj"] for info in seen)
        assert all(info.call.input_bytes() > 0 for info in seen)

    def test_remove_callback(self, engine):
        events = []
        callback = lambda info: events.append(info.op_name)  # noqa: E731
        engine.add_global_callback(callback)
        engine.remove_global_callback(callback)
        with engine:
            F.relu(tensor((2, 2)))
        assert events == []


class TestAutograd:
    def test_sequence_ids_assigned_to_differentiable_ops(self, engine):
        sequence_ids = []
        engine.add_global_callback(
            lambda info: sequence_ids.append(info.sequence_id) if info.phase == PHASE_BEFORE else None)
        with engine:
            w = tensor((4, 8), requires_grad=True)
            h = F.linear(tensor((2, 8)), w)
            F.relu(h)
        assigned = [sid for sid in sequence_ids if sid is not None]
        assert len(assigned) == 2 and len(set(assigned)) == 2

    def test_backward_runs_on_backward_thread_with_same_sequence_ids(self, engine):
        forward, backward = {}, {}
        def record(info):
            if info.phase != PHASE_BEFORE:
                return
            target = backward if info.is_backward else forward
            target.setdefault(info.op_name, info.sequence_id)
            if info.is_backward:
                assert info.thread.kind == THREAD_BACKWARD
                assert not info.thread.has_python_context
        engine.add_global_callback(record)
        with engine:
            w = tensor((4, 8), requires_grad=True)
            loss = F.sum_(F.relu(F.linear(tensor((2, 8)), w)))
            executed = engine.backward(loss)
        assert executed == 3
        assert forward["aten::relu"] == backward["aten::relu"]
        assert engine.backward_thread is not None

    def test_tape_cleared_after_backward(self, engine):
        with engine:
            w = tensor((4, 8), requires_grad=True)
            loss = F.sum_(F.linear(tensor((2, 8)), w))
            engine.backward(loss)
            assert len(engine.tape) == 0
            assert engine.backward(loss) == 0

    def test_no_grad_suppresses_tape(self, engine):
        with engine:
            w = tensor((4, 8), requires_grad=True)
            with engine.no_grad():
                F.linear(tensor((2, 8)), w)
            assert len(engine.tape) == 0

    def test_non_differentiable_inputs_not_recorded(self, engine):
        with engine:
            F.relu(tensor((2, 2)))  # no requires_grad anywhere
            assert len(engine.tape) == 0


class TestExecutionEffects:
    def test_cpu_time_and_gpu_time_advance(self, engine):
        with engine:
            F.conv2d(tensor((2, 3, 32, 32)), tensor((8, 3, 3, 3)))
            engine.synchronize()
        assert engine.threads.main.cpu_clock.now > 0
        assert engine.runtime.total_kernel_seconds > 0
        assert engine.elapsed_real_time() >= engine.runtime.total_kernel_seconds

    def test_amd_engine_maps_cuda_libraries_to_hip(self):
        engine = EagerEngine("mi250")
        libraries = set()
        def record(info):
            libraries.update(frame.library for frame in info.thread.native_stack.frames)
        engine.add_global_callback(record)
        with engine:
            F.conv2d(tensor((2, 3, 16, 16)), tensor((4, 3, 3, 3)))
        assert LIBTORCH_HIP in libraries or LIBMIOPEN in libraries

    def test_scope_stack_nesting(self, engine):
        with engine:
            with engine.scope("outer"):
                with engine.scope("inner"):
                    assert engine.current_scope == ["outer", "inner"]
                assert engine.current_scope == ["outer"]
            assert engine.current_scope == []

    def test_run_kernels_fires_callbacks_like_an_operator(self, engine):
        from repro.gpu.kernels import KernelSpec
        events = []
        engine.add_global_callback(lambda info: events.append((info.op_name, info.phase)))
        with engine:
            engine.run_kernels("xla::fusion_test",
                               [KernelSpec(name="fused_kernel", flops=1e6, bytes_accessed=1e6)],
                               inputs=[tensor((4, 4))])
        assert ("xla::fusion_test", PHASE_BEFORE) in events
        assert engine.kernel_launches == 1


class TestModulesAndOptimizers:
    def test_module_parameters_collected_recursively(self, engine):
        with engine:
            block = modules.TransformerBlock(32, 4, name="block")
        parameter_count = len(block.parameters())
        assert parameter_count >= 10
        assert block.parameter_bytes() == sum(p.nbytes for p in block.parameters())

    def test_sequential_and_modulelist(self, engine):
        with engine:
            net = modules.Sequential(modules.Linear(8, 8), modules.ReLU(), modules.Linear(8, 2))
            out = net(tensor((4, 8)))
        assert out.shape == (4, 2)
        assert len(net) == 3
        items = modules.ModuleList([modules.ReLU(), modules.GELU()])
        assert len(items) == 2 and isinstance(items[1], modules.GELU)
        with pytest.raises(RuntimeError):
            items(tensor((1,)))

    def test_optimizer_step_runs_in_optimizer_scope(self, engine):
        scopes = []
        engine.add_global_callback(lambda info: scopes.append(tuple(info.scope)))
        with engine:
            layer = modules.Linear(4, 4)
            optimizer = modules.SGD(layer.parameters())
            optimizer.step()
            optimizer.zero_grad()
        assert ("optimizer",) in scopes

    def test_rms_norm_fast_conversion_skips_to_copy(self, engine):
        ops = []
        engine.add_global_callback(
            lambda info: ops.append(info.op_name) if info.phase == PHASE_BEFORE else None)
        with engine:
            slow = modules.RMSNorm(64, name="slow")
            fast = modules.RMSNorm(64, fast_conversion=True, name="fast")
            x = tensor((2, 16, 64), dtype="float16")
            slow(x)
            count_with_conversion = ops.count("aten::_to_copy")
            fast(x)
        assert count_with_conversion == 2
        assert ops.count("aten::_to_copy") == 2  # fast path added none
