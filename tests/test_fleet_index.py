"""Tests for the fleet query index (PR 8).

Pins the index subsystem's contracts:

* **lifecycle**: ingest writes the global name dictionary and a per-run
  columnar summary; quarantine invalidates a run's summary and restore
  rebuilds it; ``reindex`` backfills pre-index stores; ``scrub`` heals a
  rotten index; re-ingesting known bytes heals a missing summary;
* **equality**: a hypothesis property that indexed fleet queries are
  *bit-for-bit* equal to the lazy-view path — totals, per-name sums and
  full per-name Welford states — including after quarantine + reindex +
  restore, and Welford-consistent with the eager merged tree;
* **fallback**: a hand-corrupted summary, a stale digest, a schema-version
  bump, a rotten name dictionary or an unresolvable name id all fall back
  to lazy views with a ``degradation_report()["index"]`` problem entry —
  same answers, never a crash;
* **staleness**: a second ingest is reflected by the next aggregator, and
  per-run query passes are memoized per fingerprint (``top_kernels`` with
  different ``k`` reuse one pass);
* **the satellites**: the catalog generation counter behind ``find`` /
  ``latest``, parallel fallback decode parity, and the index-served
  ``name_drift`` scan.
"""

import json
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ProfileDatabase, ProfileMetadata
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import (
    INDEX_VERSION,
    STATUS_CHANGED,
    STATUS_NEW,
    STATUS_VANISHED,
    FleetIndex,
    ProfileStore,
    name_drift,
)


def _path(workload: str, op: str, kernel: str, line: int = 10) -> CallPath:
    return CallPath.of([
        root_frame(workload), thread_frame("main", 1),
        python_frame("train.py", line, "train_step"),
        framework_frame(f"aten::{op}"),
        gpu_kernel_frame(kernel),
    ])


def make_database(workload: str, observations) -> ProfileDatabase:
    tree = ShardedCallingContextTree(workload)
    shard = tree.shard_for_tid(1, thread_name="main")
    for op, kernel, gpu_time in observations:
        node = shard.insert(_path(workload, op, kernel))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                    M.METRIC_KERNEL_COUNT: 1.0})
    metadata = ProfileMetadata(program=workload, workload=workload,
                               device="A100")
    return ProfileDatabase(tree, metadata)


BASE_OBSERVATIONS = [("conv", "k_conv", 0.010), ("conv", "k_conv", 0.012),
                     ("linear", "k_gemm", 0.020), ("linear", "k_gemm", 0.021),
                     ("norm", "k_norm", 0.002), ("norm", "k_norm", 0.002)]


def make_store(tmp_path, runs=3):
    store = ProfileStore(tmp_path / "store")
    records = []
    for index in range(runs):
        observations = [(op, kernel, value * (index + 1))
                        for op, kernel, value in BASE_OBSERVATIONS]
        records.append(store.ingest(make_database(f"wl-{index}",
                                                  observations)))
    return store, records


def query_snapshot(aggregator):
    """Every lazily-answerable query result, for exact == comparisons."""
    return {
        "total": aggregator.total_metric(M.METRIC_GPU_TIME),
        "per_run": aggregator.per_run_totals(M.METRIC_GPU_TIME),
        "by_name": aggregator.aggregate_by_name(metric=M.METRIC_GPU_TIME),
        "kernels": aggregator.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                                metric=M.METRIC_GPU_TIME),
        "states": aggregator.name_states(metric=M.METRIC_GPU_TIME),
        "kernel_states": aggregator.name_states(kind=FrameKind.GPU_KERNEL,
                                                metric=M.METRIC_GPU_TIME),
        "top": aggregator.top_kernels(k=3, metric=M.METRIC_GPU_TIME),
        "counts": aggregator.total_metric(M.METRIC_KERNEL_COUNT),
    }


# ---------------------------------------------------------------------------
# Lifecycle: ingest writes the index; quarantine/restore/reindex/scrub
# ---------------------------------------------------------------------------

class TestIndexLifecycle:
    def test_ingest_writes_dictionary_and_summary(self, tmp_path):
        store, records = make_store(tmp_path, runs=2)
        index = store.fleet_index
        assert sorted(index.run_ids()) == sorted(r.run_id for r in records)
        names = index.names()
        assert names is not None
        # Only names carrying metric values are interned (exclusive
        # attribution lands on the kernel leaves in this fixture).
        for name in ("k_conv", "k_gemm", "k_norm"):
            assert name in names
        with open(index.summary_path(records[0].run_id),
                  encoding="utf-8") as handle:
            raw = json.load(handle)
        assert raw["version"] == INDEX_VERSION
        assert raw["digest"] == records[0].digest
        assert set(raw["metrics"]) == {M.METRIC_GPU_TIME,
                                       M.METRIC_KERNEL_COUNT}

    def test_indexed_queries_open_no_views(self, tmp_path):
        store, records = make_store(tmp_path)
        with store.aggregator() as aggregator:
            snapshot = query_snapshot(aggregator)
            assert sorted(aggregator.indexed_run_ids) == sorted(
                r.run_id for r in records)
            assert aggregator.opened_run_ids == []
            assert aggregator.hydrated_run_ids == []
            report = aggregator.degradation_report()
        assert report["index"] == {"indexed_runs": 3, "fallback_runs": 0,
                                   "problems": []}
        assert snapshot["total"] > 0.0

    def test_name_ids_are_append_only_across_ingests(self, tmp_path):
        store, _records = make_store(tmp_path, runs=1)
        before = store.fleet_index.names()
        store.ingest(make_database("other", [("softmax", "k_soft", 0.5)]))
        after = store.fleet_index.names()
        assert after[:len(before)] == before  # interned ids never move
        assert "k_soft" in after

    def test_quarantine_invalidates_restore_rebuilds(self, tmp_path):
        store, records = make_store(tmp_path)
        victim = records[1].run_id
        store.quarantine(victim, "operator says so")
        assert victim not in store.fleet_index.run_ids()
        with store.aggregator() as aggregator:
            assert victim not in aggregator.run_ids()
        store.restore(victim)
        assert victim in store.fleet_index.run_ids()
        assert store.fleet_index.is_current(store.get(victim))

    def test_remove_drops_summary(self, tmp_path):
        store, records = make_store(tmp_path)
        store.remove(records[0].run_id)
        assert records[0].run_id not in store.fleet_index.run_ids()

    def test_reindex_backfills_preindex_store(self, tmp_path):
        store, records = make_store(tmp_path)
        shutil.rmtree(store.fleet_index.index_dir)
        # A store that predates the index answers lazily, silently (a
        # missing summary is not a problem entry — old stores keep working).
        reopened = ProfileStore(tmp_path / "store")
        with reopened.aggregator() as aggregator:
            lazy = query_snapshot(aggregator)
            assert aggregator.indexed_run_ids == []
            assert aggregator.degradation_report()["index"]["problems"] == []
        rebuilt = reopened.reindex()
        assert sorted(rebuilt) == sorted(r.run_id for r in records)
        with reopened.aggregator() as aggregator:
            assert query_snapshot(aggregator) == lazy
            assert len(aggregator.indexed_run_ids) == 3

    def test_scrub_heals_a_rotten_index(self, tmp_path):
        store, records = make_store(tmp_path)
        os.unlink(store.fleet_index.summary_path(records[2].run_id))
        report = store.scrub()
        assert report.clean
        assert store.fleet_index.is_current(records[2])

    def test_reingest_of_known_bytes_heals_missing_summary(self, tmp_path):
        store, _records = make_store(tmp_path, runs=1)
        database = make_database("wl-extra", BASE_OBSERVATIONS)
        record = store.ingest(database)
        os.unlink(store.fleet_index.summary_path(record.run_id))
        again = store.ingest(make_database("wl-extra", BASE_OBSERVATIONS))
        assert again.run_id == record.run_id  # content-addressed dedup
        assert store.fleet_index.is_current(record)

    def test_second_ingest_reflected_by_next_aggregator(self, tmp_path):
        store, _records = make_store(tmp_path, runs=2)
        with store.aggregator() as aggregator:
            before = aggregator.total_metric(M.METRIC_GPU_TIME)
        extra = store.ingest(make_database("wl-late", BASE_OBSERVATIONS))
        with store.aggregator() as aggregator:
            assert extra.run_id in aggregator.indexed_run_ids
            after = aggregator.total_metric(M.METRIC_GPU_TIME)
        assert after == before + extra.metrics[M.METRIC_GPU_TIME]


# ---------------------------------------------------------------------------
# The equality property: indexed == lazy, bit for bit
# ---------------------------------------------------------------------------

run_observations = st.lists(
    st.tuples(st.sampled_from(["conv", "linear", "norm"]),
              st.sampled_from(["k0", "k1", "k2", "k3"]),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=10)


class TestIndexedEquality:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(run_observations, min_size=1, max_size=4))
    def test_indexed_queries_bitwise_equal_lazy_and_merge(self, runs):
        """Index rows replay the lazy path's exact accumulation sequence, so
        every indexed answer — totals, per-name sums, full Welford states —
        is ``==`` the lazy-view answer (not approx), before and after a
        quarantine + reindex + restore cycle, and Welford-consistent with
        the eager fleet-merged tree."""
        with tempfile.TemporaryDirectory() as root:
            store = ProfileStore(root)
            run_ids = []
            for index, observations in enumerate(runs):
                record = store.ingest(
                    make_database(f"run-{index}", observations))
                if record.run_id not in run_ids:
                    run_ids.append(record.run_id)

            def snapshots():
                with store.aggregator(run_ids=run_ids) as indexed, \
                        store.aggregator(run_ids=run_ids,
                                         use_index=False) as lazy:
                    assert len(indexed.indexed_run_ids) == len(run_ids)
                    assert indexed.opened_run_ids == []
                    return query_snapshot(indexed), query_snapshot(lazy)

            indexed, lazy = snapshots()
            assert indexed == lazy  # bit-for-bit, every query shape

            # The eager gear: the fleet CCT's rollup groups additions by
            # context rather than by run, so it is Welford-equal (same
            # counts, same values up to float association), not bit-equal.
            with store.aggregator(run_ids=run_ids) as aggregator:
                merged = aggregator.merged_tree()
                eager = merged.aggregate_by_name(kind=None,
                                                 metric=M.METRIC_GPU_TIME)
            assert set(eager) >= set(indexed["by_name"])
            for name, value in indexed["by_name"].items():
                assert value == pytest.approx(eager[name], abs=1e-12)

            # Quarantine + reindex + restore must not change a single bit.
            victim = run_ids[0]
            store.quarantine(victim, "cycle test")
            store.reindex()
            store.restore(victim)
            assert snapshots() == (indexed, lazy)


# ---------------------------------------------------------------------------
# Fallback: a rotten index costs the fast path, never a query
# ---------------------------------------------------------------------------

class TestIndexFallback:
    def corrupt(self, store, record, mutate):
        path = store.fleet_index.summary_path(record.run_id)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        payload = mutate(data)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload if isinstance(payload, str)
                         else json.dumps(payload))

    def assert_falls_back(self, store, records, victim_index, reason_part):
        with store.aggregator(use_index=False) as lazy:
            expected = query_snapshot(lazy)
        with store.aggregator() as aggregator:
            assert query_snapshot(aggregator) == expected
            victim = records[victim_index].run_id
            assert victim not in aggregator.indexed_run_ids
            assert victim in aggregator.opened_run_ids
            report = aggregator.degradation_report()
        assert not report["degraded"]  # fallback is not degradation
        assert report["index"]["fallback_runs"] >= 1
        (problem,) = [entry for entry in report["index"]["problems"]
                      if entry["run_id"] == victim]
        assert reason_part in problem["reason"]

    def test_unparseable_summary_falls_back(self, tmp_path):
        store, records = make_store(tmp_path)
        self.corrupt(store, records[1], lambda data: "{not json")
        self.assert_falls_back(store, records, 1, "unreadable")

    def test_schema_version_mismatch_falls_back(self, tmp_path):
        store, records = make_store(tmp_path)
        self.corrupt(store, records[0],
                     lambda data: {**data, "version": INDEX_VERSION + 1})
        self.assert_falls_back(store, records, 0, "schema version")

    def test_stale_digest_falls_back(self, tmp_path):
        store, records = make_store(tmp_path)
        self.corrupt(store, records[2],
                     lambda data: {**data, "digest": "0" * 64})
        self.assert_falls_back(store, records, 2, "stale")

    def test_unresolvable_name_id_falls_back(self, tmp_path):
        store, records = make_store(tmp_path)

        def poison(data):
            metric_rows = data["metrics"][M.METRIC_GPU_TIME]
            metric_rows[0][0] = 10_000
            return data

        self.corrupt(store, records[1], poison)
        self.assert_falls_back(store, records, 1, "name id")

    def test_rotten_name_dictionary_fails_every_summary_softly(self, tmp_path):
        store, records = make_store(tmp_path)
        with open(store.fleet_index.names_path, "w",
                  encoding="utf-8") as handle:
            handle.write("[broken")
        reopened = ProfileStore(tmp_path / "store")
        with reopened.aggregator(use_index=False) as lazy:
            expected = query_snapshot(lazy)
        with reopened.aggregator() as aggregator:
            assert query_snapshot(aggregator) == expected
            assert aggregator.indexed_run_ids == []
            report = aggregator.degradation_report()
        assert len(report["index"]["problems"]) == len(records)
        assert "dictionary" in report["index"]["problems"][0]["reason"]

    def test_use_index_false_forces_lazy_views(self, tmp_path):
        store, records = make_store(tmp_path)
        with store.aggregator(use_index=False) as aggregator:
            assert aggregator.indexed_run_ids == []
            assert sorted(aggregator.opened_run_ids) == sorted(
                record.run_id for record in records)
            report = aggregator.degradation_report()
        assert report["index"]["indexed_runs"] == 0
        assert report["index"]["fallback_runs"] == len(records)


# ---------------------------------------------------------------------------
# Satellites: memoized passes, catalog generation, parallel decode, drift
# ---------------------------------------------------------------------------

class TestQueryMemoization:
    def test_top_kernels_variants_share_one_pass(self, tmp_path):
        store, _records = make_store(tmp_path)
        for use_index in (True, False):
            with store.aggregator(use_index=use_index) as aggregator:
                aggregator.top_kernels(k=1)
                passes = aggregator.aggregate_passes
                aggregator.top_kernels(k=2)
                aggregator.top_kernels(k=10)
                aggregator.aggregate_by_name(kind=FrameKind.GPU_KERNEL)
                assert aggregator.aggregate_passes == passes

    def test_total_and_per_run_share_one_pass(self, tmp_path):
        store, _records = make_store(tmp_path)
        with store.aggregator() as aggregator:
            total = aggregator.total_metric(M.METRIC_GPU_TIME)
            passes = aggregator.aggregate_passes
            per_run = aggregator.per_run_totals(M.METRIC_GPU_TIME)
            assert aggregator.aggregate_passes == passes
            assert sum(per_run.values()) == total


class TestCatalogGeneration:
    def test_mutations_bump_the_generation(self, tmp_path):
        store, records = make_store(tmp_path, runs=1)
        generation = store.catalog_generation
        record = store.ingest(make_database("wl-new", BASE_OBSERVATIONS))
        assert store.catalog_generation > generation
        generation = store.catalog_generation
        store.quarantine(record.run_id, "test")
        assert store.catalog_generation > generation
        generation = store.catalog_generation
        store.restore(record.run_id)
        assert store.catalog_generation > generation

    def test_find_latest_reflect_mutations_through_the_cache(self, tmp_path):
        store, records = make_store(tmp_path, runs=1)
        assert [r.run_id for r in store.find()] == [records[0].run_id]
        late = store.ingest(make_database("wl-late", BASE_OBSERVATIONS))
        assert store.latest().run_id == late.run_id
        assert len(store.find()) == 2
        store.quarantine(late.run_id, "test")
        assert [r.run_id for r in store.find()] == [records[0].run_id]

    def test_query_then_ingest_persists_both_runs(self, tmp_path):
        """Regression: a cached ordered list must never be serialized into
        the catalog after an ingest mutated the record map."""
        store = ProfileStore(tmp_path / "store")
        assert store.find() == []  # warms the ordered cache while empty
        record = store.ingest(make_database("wl", BASE_OBSERVATIONS))
        reopened = ProfileStore(tmp_path / "store")
        assert reopened.get(record.run_id).run_id == record.run_id


class TestParallelDecode:
    def test_parallel_fallback_matches_sequential_bitwise(self, tmp_path):
        store, _records = make_store(tmp_path, runs=4)
        with store.aggregator(use_index=False) as sequential, \
                store.aggregator(use_index=False, max_workers=4) as parallel:
            assert query_snapshot(parallel) == query_snapshot(sequential)

    def test_max_workers_passes_through_store_aggregator(self, tmp_path):
        store, _records = make_store(tmp_path, runs=2)
        with store.aggregator(max_workers=2, use_index=False) as aggregator:
            assert aggregator.total_metric(M.METRIC_GPU_TIME) > 0.0


class TestNameDrift:
    def test_indexed_drift_opens_no_views_and_matches_lazy(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        base_rec = store.ingest(make_database("base", [
            ("conv", "k_conv", 0.010), ("linear", "k_gemm", 0.020)]))
        cand_rec = store.ingest(make_database("cand", [
            ("conv", "k_conv", 0.015), ("norm", "k_norm", 0.002)]))

        def drift(use_index):
            with store.aggregator(run_ids=[base_rec.run_id],
                                  use_index=use_index) as base, \
                    store.aggregator(run_ids=[cand_rec.run_id],
                                     use_index=use_index) as cand:
                deltas = name_drift(base, cand, kind=FrameKind.GPU_KERNEL)
                if use_index:
                    assert base.opened_run_ids == []
                    assert cand.opened_run_ids == []
                return [(d.name, d.status, d.delta_sum, d.z_score)
                        for d in deltas]

        indexed = drift(use_index=True)
        assert indexed == drift(use_index=False)
        by_name = {name: (status, delta) for name, status, delta, _z
                   in indexed}
        assert by_name["k_conv"][0] == STATUS_CHANGED
        assert by_name["k_gemm"][0] == STATUS_VANISHED
        assert by_name["k_norm"][0] == STATUS_NEW
        assert by_name["k_conv"][1] == pytest.approx(0.005)

    def test_drift_ranks_biggest_mover_first(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        base = store.ingest(make_database("base", BASE_OBSERVATIONS))
        cand = store.ingest(make_database("cand", [
            (op, kernel, value * (3.0 if kernel == "k_gemm" else 1.0))
            for op, kernel, value in BASE_OBSERVATIONS]))
        with store.aggregator(run_ids=[base.run_id]) as b, \
                store.aggregator(run_ids=[cand.run_id]) as c:
            deltas = name_drift(b, c, kind=FrameKind.GPU_KERNEL)
        assert deltas[0].name == "k_gemm"
        assert deltas[0].delta_sum > 0


# ---------------------------------------------------------------------------
# FleetIndex unit edges
# ---------------------------------------------------------------------------

class TestFleetIndexUnit:
    def test_missing_index_reads_as_none_not_error(self, tmp_path):
        index = FleetIndex(str(tmp_path), str(tmp_path / "lock"))
        assert index.names() is None
        assert index.run_ids() == []

    def test_remove_of_absent_summary_is_false(self, tmp_path):
        store, records = make_store(tmp_path, runs=1)
        assert store.fleet_index.remove("no-such-run") is False
        assert store.fleet_index.remove(records[0].run_id) is True
        assert store.fleet_index.remove(records[0].run_id) is False
