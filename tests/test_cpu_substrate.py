"""Tests for the CPU substrate: virtual clocks, interval sampling, perf/PAPI."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import (
    CPU_TIME,
    IntervalSampler,
    MachineClock,
    PapiError,
    PapiEventSet,
    PerfEventGroup,
    SamplerGroup,
    VirtualClock,
)
from repro.cpu.perf_events import PERF_CPU_CYCLES, PERF_INSTRUCTIONS


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(1.75)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_zero_advance_does_not_notify(self):
        clock = VirtualClock()
        events = []
        clock.on_advance(lambda prev, now: events.append((prev, now)))
        clock.advance(0.0)
        assert events == []

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        clock.advance_to(1.0)  # never goes backwards
        assert clock.now == 2.0

    def test_listeners_observe_intervals(self):
        clock = VirtualClock()
        events = []
        clock.on_advance(lambda prev, now: events.append((prev, now)))
        clock.advance(1.0)
        clock.advance(2.0)
        assert events == [(0.0, 1.0), (1.0, 3.0)]

    def test_remove_listener(self):
        clock = VirtualClock()
        events = []
        listener = lambda prev, now: events.append(now)  # noqa: E731
        clock.on_advance(listener)
        clock.advance(1.0)
        clock.remove_listener(listener)
        clock.advance(1.0)
        assert events == [1.0]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
    def test_monotonic_under_any_advances(self, deltas):
        clock = VirtualClock()
        previous = 0.0
        for delta in deltas:
            clock.advance(delta)
            assert clock.now >= previous
            previous = clock.now
        assert clock.now == pytest.approx(sum(deltas), rel=1e-9, abs=1e-9)


class TestMachineClock:
    def test_tied_cpu_clock_advances_real_time(self):
        machine = MachineClock()
        cpu = machine.new_cpu_clock("main")
        cpu.advance(0.5)
        assert machine.real_time.now == pytest.approx(0.5)

    def test_untied_cpu_clock_does_not_advance_real_time(self):
        machine = MachineClock()
        worker = machine.new_cpu_clock("worker", tied=False)
        worker.advance(5.0)
        assert machine.real_time.now == 0.0

    def test_wait_advances_only_real_time(self):
        machine = MachineClock()
        cpu = machine.new_cpu_clock("main")
        machine.wait(2.0)
        assert machine.real_time.now == 2.0
        assert cpu.now == 0.0


class TestIntervalSampler:
    def test_fires_once_per_period(self):
        clock = VirtualClock()
        sampler = IntervalSampler(clock, CPU_TIME, period=0.01)
        samples = []
        sampler.install(samples.append)
        clock.advance(0.035)
        assert len(samples) == 3
        assert all(sample.interval == pytest.approx(0.01) for sample in samples)
        assert [round(s.timestamp, 4) for s in samples] == [0.01, 0.02, 0.03]

    def test_accumulates_across_small_advances(self):
        clock = VirtualClock()
        sampler = IntervalSampler(clock, period=0.01)
        samples = []
        sampler.install(samples.append)
        for _ in range(25):
            clock.advance(0.001)
        assert len(samples) == 2

    def test_uninstall_stops_sampling(self):
        clock = VirtualClock()
        sampler = IntervalSampler(clock, period=0.01)
        samples = []
        sampler.install(samples.append)
        clock.advance(0.02)
        sampler.uninstall()
        clock.advance(0.05)
        assert len(samples) == 2

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            IntervalSampler(VirtualClock(), period=0.0)

    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
           st.floats(min_value=1e-3, max_value=1.0, allow_nan=False))
    def test_sample_count_matches_elapsed_over_period(self, elapsed, period):
        clock = VirtualClock()
        sampler = IntervalSampler(clock, period=period)
        samples = []
        sampler.install(samples.append)
        clock.advance(elapsed)
        # Allow one sample of slack for floating-point accumulation drift.
        assert abs(len(samples) - elapsed / period) <= 1.0


class TestSamplerGroup:
    def test_manages_multiple_samplers(self):
        group = SamplerGroup()
        clock_a, clock_b = VirtualClock("a"), VirtualClock("b")
        seen = []
        group.add(clock_a, CPU_TIME, 0.01, seen.append)
        group.add(clock_b, CPU_TIME, 0.01, seen.append)
        clock_a.advance(0.02)
        clock_b.advance(0.01)
        assert group.total_samples == 3
        group.stop()
        clock_a.advance(1.0)
        assert group.total_samples == 3


class TestPerfEvents:
    def test_counters_accumulate_only_when_enabled(self):
        group = PerfEventGroup()
        group.open(PERF_CPU_CYCLES)
        group.accumulate(1.0)
        assert group.read_all()[PERF_CPU_CYCLES] == 0.0
        group.enable()
        group.accumulate(1.0)
        assert group.read_all()[PERF_CPU_CYCLES] > 1e9

    def test_instructions_scale_with_cpu_seconds(self):
        group = PerfEventGroup()
        group.open(PERF_INSTRUCTIONS)
        group.enable()
        group.accumulate(2.0)
        two_seconds = group.read_all()[PERF_INSTRUCTIONS]
        group.accumulate(2.0)
        assert group.read_all()[PERF_INSTRUCTIONS] == pytest.approx(2 * two_seconds)

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            PerfEventGroup().open("not-a-counter")


class TestPapi:
    def test_start_read_stop(self):
        event_set = PapiEventSet()
        event_set.add_event("PAPI_TOT_INS")
        event_set.add_event("PAPI_TOT_CYC")
        event_set.start()
        event_set.accumulate(0.5)
        values = event_set.stop()
        assert values["PAPI_TOT_INS"] > 0
        assert values["PAPI_TOT_CYC"] > 0
        assert not event_set.running

    def test_unknown_preset_rejected(self):
        with pytest.raises(PapiError):
            PapiEventSet().add_event("PAPI_NOT_REAL")

    def test_cannot_add_while_running(self):
        event_set = PapiEventSet()
        event_set.add_event("PAPI_TOT_INS")
        event_set.start()
        with pytest.raises(PapiError):
            event_set.add_event("PAPI_TOT_CYC")

    def test_double_start_rejected(self):
        event_set = PapiEventSet()
        event_set.add_event("PAPI_TOT_INS")
        event_set.start()
        with pytest.raises(PapiError):
            event_set.start()
