"""Unit tests for the call-path integration rules (CallPathBuilder in isolation).

The end-to-end behaviour is covered in ``test_dlmonitor.py``; these tests
construct thread states by hand to pin down the individual integration rules:
the libpython boundary, operator insertion under the matching native frame,
the cached-prefix early stop, backward-thread grafting and source selection.
"""

import pytest

from repro.cpu.clock import MachineClock
from repro.dlmonitor.association import ForwardRecord
from repro.dlmonitor.audit import LibraryAuditor
from repro.dlmonitor.cache import CachedPrefix
from repro.dlmonitor.callpath import FrameKind
from repro.dlmonitor.integration import CallPathBuilder, CallPathSources, GpuLeafContext
from repro.dlmonitor.shadow_stack import ShadowEntry, ShadowStack
from repro.framework.threads import THREAD_BACKWARD, THREAD_MAIN, ThreadRegistry
from repro.native.symbols import LIBCUDART, LIBPYTHON, LIBTORCH_CPU, LIBTORCH_CUDA, standard_address_space
from repro.native.unwinder import Unwinder


@pytest.fixture
def setup():
    """An address space, a main thread with a realistic native stack, a builder."""
    space = standard_address_space()
    registry = ThreadRegistry(MachineClock())
    thread = registry.main
    thread.kind = THREAD_MAIN
    # Simulated native stack: libc -> libpython -> dispatcher -> impl -> launch.
    for library, name in ((("libc.so", "__libc_start_main")),
                          (LIBPYTHON, "PyEval_EvalFrameDefault"),
                          (LIBTORCH_CPU, "at::_ops::conv2d::call"),
                          (LIBTORCH_CUDA, "at::native::cudnn_convolution"),
                          (LIBCUDART, "cudaLaunchKernel")):
        thread.native_stack.push(space.add_symbol(library, name))
    builder = CallPathBuilder(LibraryAuditor(space), Unwinder(space), "unit")
    return space, thread, builder


def _shadow_for(thread, op_name="aten::conv2d", backward=False, sequence_id=1):
    stack = ShadowStack()
    dispatch_frame = thread.native_stack.frames[2]  # at::_ops::conv2d::call
    stack.push(ShadowEntry(op_name=op_name, is_backward=backward, sequence_id=sequence_id,
                           dispatch_pc=dispatch_frame.pc,
                           python_callpath=(("model.py", 42, "forward"),),
                           scope=("net", "conv1")))
    return stack


PYTHON_TRIPLES = (("train.py", 7, "train_step"), ("model.py", 42, "forward"))


class TestIntegrationRules:
    def test_full_integration_order(self, setup):
        _space, thread, builder = setup
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES,
                             CallPathSources.all(),
                             gpu_leaf=GpuLeafContext("cudaLaunchKernel", "conv_kernel"))
        kinds = path.kinds()
        # Root/thread, then Python, then framework scopes+op, native, GPU API, kernel.
        assert kinds[0] == FrameKind.ROOT and kinds[1] == FrameKind.THREAD
        assert kinds.index(FrameKind.PYTHON) < kinds.index(FrameKind.FRAMEWORK)
        assert kinds.index(FrameKind.FRAMEWORK) < kinds.index(FrameKind.NATIVE)
        assert kinds[-2:] == [FrameKind.GPU_API, FrameKind.GPU_KERNEL]

    def test_libpython_frames_replaced_by_python_path(self, setup):
        _space, thread, builder = setup
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES, CallPathSources.all())
        native_names = [frame.name for frame in path.frames_of_kind(FrameKind.NATIVE)]
        assert "PyEval_EvalFrameDefault" not in native_names
        assert "__libc_start_main" not in native_names
        python_files = [frame.file for frame in path.frames_of_kind(FrameKind.PYTHON)]
        assert python_files == ["train.py", "model.py"]

    def test_operator_inserted_above_its_dispatch_frame(self, setup):
        _space, thread, builder = setup
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES, CallPathSources.all())
        labels = [frame.name for frame in path]
        op_index = labels.index("aten::conv2d")
        dispatch_index = labels.index("at::_ops::conv2d::call")
        assert op_index == dispatch_index - 1

    def test_scope_frames_precede_operator(self, setup):
        _space, thread, builder = setup
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES, CallPathSources.all())
        framework_frames = path.frames_of_kind(FrameKind.FRAMEWORK)
        assert [frame.name for frame in framework_frames] == ["net", "conv1", "aten::conv2d"]
        assert framework_frames[0].tag == "scope"

    def test_without_native_source(self, setup):
        _space, thread, builder = setup
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES,
                             CallPathSources.without_native())
        assert not path.has_kind(FrameKind.NATIVE)
        assert path.has_kind(FrameKind.PYTHON) and path.has_kind(FrameKind.FRAMEWORK)

    def test_without_framework_source_hides_operators(self, setup):
        _space, thread, builder = setup
        sources = CallPathSources(python=True, framework=False, native=True, gpu=True)
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES, sources)
        assert not path.has_kind(FrameKind.FRAMEWORK)
        assert path.has_kind(FrameKind.NATIVE)

    def test_gpu_leaf_omitted_when_gpu_source_disabled(self, setup):
        _space, thread, builder = setup
        sources = CallPathSources(python=True, framework=True, native=True, gpu=False)
        path = builder.build(thread, _shadow_for(thread), PYTHON_TRIPLES, sources,
                             gpu_leaf=GpuLeafContext("cudaLaunchKernel", "k"))
        assert not path.has_kind(FrameKind.GPU_API)
        assert not path.has_kind(FrameKind.GPU_KERNEL)

    def test_cached_prefix_supplies_python_frames(self, setup):
        _space, thread, builder = setup
        shadow = _shadow_for(thread)
        cached = CachedPrefix(op_name="aten::conv2d",
                              dispatch_pc=shadow.top().dispatch_pc,
                              python_callpath=PYTHON_TRIPLES, scope=("net",))
        path = builder.build(thread, shadow, (), CallPathSources.all(), cached_prefix=cached)
        python_files = [frame.file for frame in path.frames_of_kind(FrameKind.PYTHON)]
        assert python_files == ["train.py", "model.py"]

    def test_cached_prefix_stops_unwinding_early(self, setup):
        space, thread, builder = setup
        shadow = _shadow_for(thread)
        cached = CachedPrefix(op_name="aten::conv2d",
                              dispatch_pc=shadow.top().dispatch_pc,
                              python_callpath=PYTHON_TRIPLES, scope=())
        steps_before = builder.unwinder.steps
        builder.build(thread, shadow, (), CallPathSources.all(), cached_prefix=cached)
        cached_steps = builder.unwinder.steps - steps_before

        fresh_builder = CallPathBuilder(LibraryAuditor(space), Unwinder(space), "unit")
        fresh_builder.build(thread, shadow, PYTHON_TRIPLES, CallPathSources.all())
        uncached_steps = fresh_builder.unwinder.steps
        assert cached_steps <= uncached_steps

    def test_backward_thread_grafts_forward_record(self, setup):
        space, _main, builder = setup
        registry = ThreadRegistry(MachineClock())
        backward = registry.create("backward-0", kind=THREAD_BACKWARD)
        for library, name in ((LIBTORCH_CUDA, "autograd::engine::evaluate_function"),
                              (LIBCUDART, "cudaLaunchKernel")):
            backward.native_stack.push(space.add_symbol(library, name))
        shadow = ShadowStack()
        shadow.push(ShadowEntry(op_name="aten::index", is_backward=True, sequence_id=9,
                                dispatch_pc=backward.native_stack.frames[0].pc,
                                python_callpath=(), scope=()))
        record = ForwardRecord(sequence_id=9, op_name="aten::index", thread_tid=1,
                               python_callpath=(("dlrm.py", 33, "forward"),),
                               scope=("table0",))
        path = builder.build(backward, shadow, (), CallPathSources.all(),
                             forward_record=record,
                             gpu_leaf=GpuLeafContext("cudaLaunchKernel",
                                                     "indexing_backward_kernel"))
        python_files = [frame.file for frame in path.frames_of_kind(FrameKind.PYTHON)]
        assert python_files == ["dlrm.py"]
        names = [frame.name for frame in path.frames_of_kind(FrameKind.FRAMEWORK)]
        assert "table0" in names and "aten::index" in names
        assert path.leaf.name == "indexing_backward_kernel"

    def test_backward_thread_without_record_has_no_python(self, setup):
        space, _main, builder = setup
        registry = ThreadRegistry(MachineClock())
        backward = registry.create("backward-0", kind=THREAD_BACKWARD)
        backward.native_stack.push(space.add_symbol(LIBCUDART, "cudaLaunchKernel"))
        path = builder.build(backward, ShadowStack(), (), CallPathSources.all())
        assert not path.has_kind(FrameKind.PYTHON)
        assert path.has_kind(FrameKind.NATIVE)

    def test_paths_built_counter(self, setup):
        _space, thread, builder = setup
        before = builder.paths_built
        builder.build(thread, ShadowStack(), (), CallPathSources.python_only())
        assert builder.paths_built == before + 1
