"""End-to-end integration tests across modules.

These exercise the full pipeline — workload → DLMonitor → profiler → analyzer
→ GUI — on both simulated platforms and both execution modes, checking the
cross-cutting invariants the paper's design relies on.
"""

import pytest

from repro.analyzer import PerformanceAnalyzer
from repro.core import DeepContextProfiler, ProfilerConfig
from repro.core import metrics as M
from repro.dlmonitor.callpath import FrameKind
from repro.experiments import (
    PROFILER_DEEPCONTEXT_NATIVE,
    run_workload,
)
from repro.gui import FlameGraphBuilder, render_html
from repro.workloads import create_workload


@pytest.mark.parametrize("device", ["a100", "mi250"])
def test_full_pipeline_on_both_platforms(device):
    result = run_workload(create_workload("resnet", small=True), device=device,
                          profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)
    database = result.database
    assert database.metadata.device in ("A100 SXM", "MI250")

    # Every kernel node has the full multi-layer context above it.
    kernels = database.tree.kernels
    assert kernels
    for kernel in kernels[:20]:
        kinds = set(kernel.callpath().kinds())
        assert FrameKind.GPU_API in kinds and FrameKind.NATIVE in kinds
        assert FrameKind.FRAMEWORK in kinds

    # The attributed GPU time matches the runtime's accounting.
    assert database.total_gpu_time() == pytest.approx(result.gpu_kernel_seconds, rel=1e-6)
    assert database.total_kernel_launches() == result.kernel_launches

    # Analyzer and GUI run on the result without errors.
    report = PerformanceAnalyzer().analyze(database)
    html = render_html(FlameGraphBuilder().top_down(database.tree, issues=report.issues),
                       report=report)
    assert "<svg" in html


def test_kernel_count_invariant_between_profiler_and_engine():
    engine_result = run_workload(create_workload("vit", small=True),
                                 profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=1)
    tree = engine_result.database.tree
    per_kernel = sum(int(node.exclusive.sum(M.METRIC_KERNEL_COUNT)) for node in tree.kernels)
    assert per_kernel == engine_result.kernel_launches


def test_profile_is_iteration_stable():
    """Two profiles of the same deterministic workload have identical structure."""
    def run_once():
        return run_workload(create_workload("gnn", small=True),
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2).database

    first, second = run_once(), run_once()
    assert first.node_count() == second.node_count()
    assert first.total_kernel_launches() == second.total_kernel_launches()
    assert first.total_gpu_time() == pytest.approx(second.total_gpu_time(), rel=1e-9)


def test_more_iterations_do_not_grow_the_cct():
    short = run_workload(create_workload("transformer_big", small=True),
                         profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=1).database
    long = run_workload(create_workload("transformer_big", small=True),
                        profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=4).database
    assert long.node_count() <= short.node_count() * 1.05
    assert long.total_kernel_launches() > 3 * short.total_kernel_launches()


def test_profiler_detach_leaves_engine_clean():
    from repro.framework import EagerEngine, functional as F, tensor

    engine = EagerEngine("a100")
    profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="detach"))
    with engine:
        profiler.start()
        F.relu(tensor((8, 8)))
        database = profiler.stop()
        nodes_after_stop = database.node_count()
        F.relu(tensor((8, 8)))  # not profiled any more
    assert database.node_count() == nodes_after_stop
    assert not engine.has_callbacks
