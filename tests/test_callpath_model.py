"""Tests for the call-path model, shadow stacks, caches, association, fusion map."""

import pytest
from hypothesis import given, strategies as st

from repro.dlmonitor import (
    CachedPrefix,
    CallPath,
    CallPathCache,
    ForwardBackwardAssociator,
    Frame,
    FrameKind,
    FusionMap,
    OriginalOperator,
    ShadowEntry,
    ShadowStack,
    ShadowStackRegistry,
    framework_frame,
    gpu_kernel_frame,
    native_frame,
    python_frame,
    root_frame,
    thread_frame,
)


class TestFrameIdentity:
    def test_python_frames_compare_by_file_and_line(self):
        a = python_frame("model.py", 10, "forward")
        b = python_frame("model.py", 10, "forward_renamed")
        c = python_frame("model.py", 11, "forward")
        assert a.identity() == b.identity()
        assert a.identity() != c.identity()

    def test_native_frames_compare_by_library_and_pc(self):
        a = native_frame("f", "libtorch.so", 0x100)
        b = native_frame("g", "libtorch.so", 0x100)
        c = native_frame("f", "libtorch.so", 0x200)
        assert a.identity() == b.identity()
        assert a.identity() != c.identity()

    def test_framework_frames_compare_by_name_and_direction(self):
        forward = framework_frame("aten::conv2d")
        backward = framework_frame("aten::conv2d", backward=True)
        assert forward.identity() != backward.identity()
        assert "[backward]" in backward.label()

    def test_kernel_frames_compare_by_name(self):
        assert gpu_kernel_frame("k", "a100").identity() == gpu_kernel_frame("k", "mi250").identity()

    def test_labels_are_human_readable(self):
        assert "model.py:3" in python_frame("/x/model.py", 3, "f").label()
        assert "[libc.so]" in native_frame("f", "libc.so", 1).label()
        assert "long_scoreboard" in Frame(kind=FrameKind.GPU_INSTRUCTION, name="k",
                                          pc=16, tag="long_scoreboard").label()


class TestCallPath:
    def _path(self):
        return CallPath.of([root_frame(), thread_frame("main", 1),
                            python_frame("a.py", 1, "main"),
                            framework_frame("aten::relu"),
                            gpu_kernel_frame("relu_kernel")])

    def test_accessors(self):
        path = self._path()
        assert path.depth == 5
        assert path.root.kind == FrameKind.ROOT
        assert path.leaf.kind == FrameKind.GPU_KERNEL
        assert path.has_kind(FrameKind.PYTHON)
        assert len(path.frames_of_kind(FrameKind.FRAMEWORK)) == 1
        assert bool(path) and not bool(CallPath())

    def test_extended_and_prefixed_do_not_mutate(self):
        path = self._path()
        longer = path.extended(gpu_kernel_frame("second"))
        assert longer.depth == path.depth + 1
        prefixed = path.prefixed(root_frame("other"))
        assert prefixed.depth == path.depth + 1
        assert path.depth == 5

    def test_format_is_indented(self):
        text = self._path().format()
        assert text.splitlines()[0].startswith("program")
        assert text.splitlines()[-1].strip().startswith("relu_kernel")

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=10))
    def test_extended_preserves_order(self, names):
        path = CallPath()
        for name in names:
            path = path.extended(framework_frame(name))
        assert [frame.name for frame in path] == names


class TestShadowStack:
    def _entry(self, name="aten::relu", pc=0x10, backward=False, seq=None):
        return ShadowEntry(op_name=name, is_backward=backward, sequence_id=seq,
                           dispatch_pc=pc, python_callpath=(), scope=())

    def test_push_pop_and_depth_tracking(self):
        stack = ShadowStack()
        stack.push(self._entry("a", 1))
        stack.push(self._entry("b", 2))
        assert stack.depth == 2 and stack.max_depth == 2
        assert stack.top().op_name == "b"
        assert stack.pop().op_name == "b"
        assert stack.max_depth == 2
        stack.pop()
        with pytest.raises(IndexError):
            stack.pop()

    def test_find_by_pc_prefers_innermost(self):
        stack = ShadowStack()
        stack.push(self._entry("outer", 0x10))
        stack.push(self._entry("inner", 0x10))
        assert stack.find_by_pc(0x10).op_name == "inner"
        assert stack.find_by_pc(0x99) is None

    def test_registry_creates_per_thread_stacks(self):
        registry = ShadowStackRegistry()
        registry.for_thread(1).push(self._entry())
        assert registry.for_thread(1).depth == 1
        assert registry.for_thread(2).depth == 0
        assert registry.threads() == [1, 2]
        assert registry.total_max_depth() == 1


class TestCallPathCache:
    def test_hit_miss_and_invalidate(self):
        cache = CallPathCache()
        assert cache.lookup(1) is None
        cache.store(1, CachedPrefix("aten::relu", 0x10, (), ()))
        assert cache.lookup(1).op_name == "aten::relu"
        cache.invalidate(1)
        assert cache.lookup(1) is None
        assert cache.hits == 1 and cache.misses == 2 and cache.invalidations == 1
        assert 0 < cache.hit_rate < 1

    def test_peek_does_not_affect_stats(self):
        cache = CallPathCache()
        cache.peek(5)
        assert cache.misses == 0


class TestForwardBackwardAssociator:
    def test_record_and_lookup(self):
        associator = ForwardBackwardAssociator()
        associator.record_forward(7, "aten::index", 1, (("dlrm.py", 42, "forward"),), ("table0",))
        record = associator.lookup(7)
        assert record.op_name == "aten::index"
        assert record.python_callpath[0][2] == "forward"
        assert associator.lookup(99) is None
        assert associator.lookup(None) is None
        assert 0 < associator.hit_rate < 1

    def test_none_sequence_id_not_recorded(self):
        associator = ForwardBackwardAssociator()
        associator.record_forward(None, "aten::relu", 1, (), ())
        assert associator.size == 0

    def test_eviction_keeps_most_recent(self):
        associator = ForwardBackwardAssociator(max_records=4)
        for sequence_id in range(10):
            associator.record_forward(sequence_id, "op", 1, (), ())
        assert associator.size == 4
        assert associator.lookup(9) is not None
        assert associator.lookup(0) is None


class TestFusionMap:
    def test_record_and_lookup(self):
        fusion_map = FusionMap()
        originals = [OriginalOperator("aten::gelu", 1, (("model.py", 5, "ffn"),)),
                     OriginalOperator("aten::relu", 2, (("model.py", 6, "ffn"),))]
        fusion_map.record("xla::gelu_relu", "train_step", originals)
        assert "xla::gelu_relu" in fusion_map and len(fusion_map) == 1
        record = fusion_map.lookup("xla::gelu_relu")
        assert record.original_names == ["aten::gelu", "aten::relu"]
        callpaths = fusion_map.original_callpaths("xla::gelu_relu")
        assert len(callpaths) == 2 and callpaths[0][0][2] == "ffn"
        assert fusion_map.original_callpaths("xla::unknown") == []
