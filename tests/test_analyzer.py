"""Tests for the automated performance analyzer: query layer and the five analyses."""

import pytest

from repro.analyzer import (
    Analysis,
    CallPathPattern,
    CCTQuery,
    CpuLatencyAnalysis,
    ForwardBackwardAnalysis,
    HotspotAnalysis,
    KernelFusionAnalysis,
    PerformanceAnalyzer,
    Severity,
    StallAnalysis,
)
from repro.core import CallingContextTree
from repro.core import metrics as M
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_instruction_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
    Frame,
)


def build_profile_tree():
    """A hand-built CCT exhibiting every issue the bundled analyses look for."""
    tree = CallingContextTree("synthetic")

    def insert(frames, gpu_time=0.0, kernel_count=0.0, cpu_time=0.0, registers=0.0,
               stalls=None):
        node = tree.insert(CallPath.of([root_frame("synthetic"), thread_frame("main", 1)] + frames))
        if gpu_time:
            tree.attribute(node, M.METRIC_GPU_TIME, gpu_time)
        for _ in range(int(kernel_count)):
            tree.attribute(node, M.METRIC_KERNEL_COUNT, 1.0)
        if cpu_time:
            tree.attribute(node, M.METRIC_CPU_TIME, cpu_time)
        if registers:
            tree.attribute(node, M.METRIC_REGISTERS, registers)
        for offset, (reason, samples) in enumerate(sorted((stalls or {}).items())):
            child = node.child_for(gpu_instruction_frame(frames[-1].name, 0x10 + 0x10 * offset, reason))
            tree.attribute(child, M.METRIC_INSTRUCTION_SAMPLES, samples)
            tree.attribute(child, M.METRIC_STALL_SAMPLES, samples)
        return node

    # A dominating hotspot kernel with stall samples (hotspot + stall analyses).
    insert([python_frame("train.py", 10, "train_step"),
            framework_frame("aten::index", backward=True),
            gpu_kernel_frame("indexing_backward_kernel")],
           gpu_time=6.0, kernel_count=1, registers=40,
           stalls={"execution_dependency": 50, "long_scoreboard": 30})
    # Its cheap forward counterpart (forward/backward analysis).
    insert([python_frame("train.py", 10, "train_step"),
            framework_frame("aten::index"),
            gpu_kernel_frame("index_elementwise_kernel")],
           gpu_time=0.05, kernel_count=1)
    # A loss scope launching many tiny kernels (kernel-fusion analysis).
    loss_scope = Frame(kind=FrameKind.FRAMEWORK, name="loss_fn", tag="scope")
    for index in range(30):
        insert([python_frame("train.py", 20, "loss"), loss_scope,
                framework_frame("aten::softmax"),
                gpu_kernel_frame(f"tiny_kernel_{index % 3}")],
               gpu_time=1e-6, kernel_count=1, registers=24)
    # A data-loading frame with lots of CPU time and no GPU work (CPU latency).
    insert([python_frame("input_pipeline.py", 5, "data_selection")], cpu_time=3.0)
    # Balanced compute elsewhere so totals are sane.
    insert([python_frame("train.py", 30, "forward"),
            framework_frame("aten::conv2d"),
            gpu_kernel_frame("implicit_convolve_sgemm")],
           gpu_time=2.0, kernel_count=1, cpu_time=0.2, registers=160)
    return tree


@pytest.fixture(scope="module")
def tree():
    return build_profile_tree()


class TestQueryLayer:
    def test_semantic_categories(self, tree):
        loss_nodes = CCTQuery(tree).semantic_nodes("loss")
        assert any(node.frame.name == "loss_fn" for node in loss_nodes)
        data_nodes = CCTQuery(tree).semantic_nodes("data")
        assert any("data_selection" in node.frame.name for node in data_nodes)
        backward = CCTQuery(tree).semantic_nodes("backward")
        assert any(node.frame.name == "aten::index" for node in backward)

    def test_pattern_matching(self, tree):
        query = CCTQuery(tree)
        pattern = CallPathPattern(kind=FrameKind.GPU_KERNEL, name_regex="indexing_backward")
        assert len(query.match(pattern)) == 1
        nested = CallPathPattern(kind=FrameKind.GPU_KERNEL,
                                 within=CallPathPattern(name_regex="loss_fn"))
        assert len(query.match(nested)) == 3
        with_metric = CallPathPattern(kind=FrameKind.GPU_KERNEL,
                                      min_metric={M.METRIC_GPU_TIME: 1.0})
        assert {node.frame.name for node in query.match(with_metric)} == {
            "indexing_backward_kernel", "implicit_convolve_sgemm"}

    def test_top_by_metric_and_fractions(self, tree):
        query = CCTQuery(tree)
        top = query.top_by_metric(query.kernels(), M.METRIC_GPU_TIME, k=2)
        assert top[0].frame.name == "indexing_backward_kernel"
        assert query.fraction_of_total(top[0], M.METRIC_GPU_TIME) > 0.5
        aggregated = query.aggregate_kernels_by_name()
        assert aggregated["indexing_backward_kernel"] == pytest.approx(6.0)


class TestHotspotAnalysis:
    def test_flags_dominant_kernels(self, tree):
        issues = HotspotAnalysis(hotspot_threshold=0.1).analyze(tree)
        names = {issue.node.frame.name for issue in issues}
        assert "indexing_backward_kernel" in names
        assert "implicit_convolve_sgemm" in names
        assert all("GPU time" in issue.message for issue in issues)
        critical = {issue.node.frame.name for issue in issues
                    if issue.severity == Severity.CRITICAL}
        assert "indexing_backward_kernel" in critical

    def test_empty_tree_produces_no_issues(self):
        assert HotspotAnalysis().analyze(CallingContextTree()) == []


class TestKernelFusionAnalysis:
    def test_flags_small_kernel_regions_once(self, tree):
        issues = KernelFusionAnalysis(gpu_threshold_seconds=1e-4, min_kernels=5).analyze(tree)
        assert issues
        assert any("Small GPU kernels" in issue.message for issue in issues)
        flagged = [issue.node.frame.name for issue in issues]
        # The dominating conv/index kernels are not flagged.
        assert "aten::conv2d" not in flagged

    def test_register_guidance_in_suggestion(self, tree):
        issues = KernelFusionAnalysis(gpu_threshold_seconds=1e-4, min_kernels=5).analyze(tree)
        assert any("register" in issue.suggestion for issue in issues)


class TestForwardBackwardAnalysis:
    def test_detects_index_imbalance(self, tree):
        analysis = ForwardBackwardAnalysis(ratio=2.0, min_backward_seconds=1e-3)
        issues = analysis.analyze(tree)
        assert len(issues) == 1
        issue = issues[0]
        assert "aten::index" in issue.message
        assert issue.metrics["ratio"] > 50
        assert "index_select" in issue.suggestion
        ranked = analysis.ranked_imbalances(tree)
        assert ranked[0][0] == "aten::index"

    def test_balanced_operators_not_flagged(self):
        tree = CallingContextTree()
        for tag in ("", "backward"):
            node = tree.insert(CallPath.of([
                root_frame(), thread_frame("main", 1),
                Frame(kind=FrameKind.FRAMEWORK, name="aten::linear", tag=tag),
                gpu_kernel_frame(f"gemm_{tag or 'fwd'}")]))
            tree.attribute(node, M.METRIC_GPU_TIME, 1.0)
        assert ForwardBackwardAnalysis(ratio=2.0).analyze(tree) == []


class TestStallAnalysis:
    def test_reports_top_stall_reasons_for_hotspots(self, tree):
        analysis = StallAnalysis(stall_threshold=5.0, hotspot_threshold=0.1)
        issues = analysis.analyze(tree)
        assert issues
        assert any("execution_dependency" in issue.message for issue in issues)
        breakdown = analysis.stall_breakdown(tree)
        assert breakdown["execution_dependency"] == pytest.approx(50)

    def test_no_samples_no_issues(self):
        tree = CallingContextTree()
        node = tree.insert(CallPath.of([root_frame(), gpu_kernel_frame("k")]))
        tree.attribute(node, M.METRIC_GPU_TIME, 1.0)
        assert StallAnalysis(hotspot_threshold=0.01).analyze(tree) == []


class TestCpuLatencyAnalysis:
    def test_flags_cpu_bound_frames_only_once(self, tree):
        issues = CpuLatencyAnalysis(cpu_threshold=3.0, min_cpu_seconds=0.5).analyze(tree)
        assert len(issues) == 1
        assert "data_selection" in issues[0].node.frame.label()
        assert issues[0].metrics["cpu_time"] == pytest.approx(3.0)

    def test_gpu_bound_frames_not_flagged(self, tree):
        issues = CpuLatencyAnalysis(cpu_threshold=3.0, min_cpu_seconds=0.5).analyze(tree)
        assert all("conv2d" not in issue.node_name for issue in issues)


class TestPerformanceAnalyzer:
    def test_runs_all_default_analyses(self, tree):
        report = PerformanceAnalyzer().analyze_tree(tree)
        assert set(report.per_analysis) == {
            "hotspot", "kernel_fusion", "forward_backward", "stalls", "cpu_latency"}
        assert report.count == sum(report.counts_by_analysis().values())
        text = report.to_text()
        assert "hotspot" in text and "issue" in text

    def test_custom_analysis_registration(self, tree):
        class EverythingIsFine(Analysis):
            name = "noop"

            def run(self, tree, collector):
                return []

        analyzer = PerformanceAnalyzer()
        analyzer.register(EverythingIsFine())
        report = analyzer.analyze_tree(tree)
        assert "noop" in report.per_analysis
        analyzer.remove("noop")
        assert "noop" not in {a.name for a in analyzer.analyses}
        with pytest.raises(KeyError):
            analyzer.analysis("noop")

    def test_thresholds_forwarded(self, tree):
        strict = PerformanceAnalyzer(thresholds={"hotspot": {"hotspot_threshold": 0.99}})
        assert strict.analyze_tree(tree).by_analysis("hotspot") == []

    def test_issues_attached_to_database(self, tree):
        from repro.core.database import ProfileDatabase
        database = ProfileDatabase(tree)
        report = PerformanceAnalyzer().analyze(database)
        assert len(database.issues) == report.count
        assert all("analysis" in issue for issue in database.issues)
