"""Tests for the native-code simulation: symbols, address space, unwinding, DWARF."""

import pytest

from repro.native import (
    LIBPYTHON,
    LIBTORCH_CPU,
    AddressSpace,
    LineTable,
    NativeStack,
    Unwinder,
    standard_address_space,
)


class TestAddressSpace:
    def test_libraries_do_not_overlap(self):
        space = standard_address_space()
        libraries = space.libraries
        for i, first in enumerate(libraries):
            for second in libraries[i + 1:]:
                assert first.end <= second.base or second.end <= first.base

    def test_symbol_resolution(self):
        space = AddressSpace()
        symbol = space.add_symbol("libfoo.so", "foo::bar")
        library, resolved = space.resolve(symbol.address + 4)
        assert library.name == "libfoo.so"
        assert resolved is not None and resolved.name == "foo::bar"

    def test_resolve_unknown_pc(self):
        assert AddressSpace().resolve(0x1234) is None

    def test_duplicate_symbol_returns_existing(self):
        space = AddressSpace()
        first = space.add_symbol("libfoo.so", "foo")
        second = space.add_symbol("libfoo.so", "foo")
        assert first is second

    def test_is_in_library_detects_libpython(self):
        space = standard_address_space()
        py_eval = space.library(LIBPYTHON).symbols["PyEval_EvalFrameDefault"]
        assert space.is_in_library(py_eval.address + 8, LIBPYTHON)
        assert not space.is_in_library(py_eval.address + 8, LIBTORCH_CPU)

    def test_library_lookup_errors_for_unloaded(self):
        with pytest.raises(KeyError):
            AddressSpace().library("libmissing.so")


class TestNativeStackAndUnwinder:
    def _stack(self, space, names):
        stack = NativeStack()
        for library, name in names:
            stack.push(space.add_symbol(library, name))
        return stack

    def test_push_pop_order(self):
        space = AddressSpace()
        stack = self._stack(space, [("libc.so", "main"), ("libtorch.so", "dispatch")])
        assert stack.depth == 2
        assert stack.top().function == "dispatch"
        assert stack.pop().function == "dispatch"
        assert stack.pop().function == "main"
        with pytest.raises(IndexError):
            stack.pop()

    def test_full_unwind_outermost_first(self):
        space = AddressSpace()
        stack = self._stack(space, [("libc.so", "main"), ("libtorch.so", "dispatch"),
                                    ("libcudart.so", "cudaLaunchKernel")])
        unwinder = Unwinder(space)
        frames = unwinder.unwind(stack)
        assert [frame.function for frame in frames] == ["main", "dispatch", "cudaLaunchKernel"]
        assert unwinder.full_unwinds == 1
        assert unwinder.steps == 3

    def test_cursor_steps_bottom_up(self):
        space = AddressSpace()
        stack = self._stack(space, [("libc.so", "main"), ("libtorch.so", "dispatch")])
        unwinder = Unwinder(space)
        cursor = unwinder.cursor(stack)
        assert cursor.step().function == "dispatch"
        assert cursor.step().function == "main"
        assert cursor.step() is None
        unwinder.charge(cursor)
        assert unwinder.steps == 2

    def test_cursor_iteration_stops_at_top(self):
        space = AddressSpace()
        stack = self._stack(space, [("libc.so", "main")])
        frames = list(Unwinder(space).cursor(stack))
        assert len(frames) == 1

    def test_resolve_frame_library(self):
        space = AddressSpace()
        stack = self._stack(space, [("libfoo.so", "f")])
        unwinder = Unwinder(space)
        assert unwinder.resolve(stack.top()) == "libfoo.so"


class TestLineTable:
    def test_symbol_location_lookup(self):
        space = AddressSpace()
        symbol = space.add_symbol("libtorch.so", "at::native::conv2d")
        table = LineTable(space)
        table.add_symbol_location(symbol, "Conv.cpp", 120)
        location = table.lookup_pc(symbol.address + 4)
        assert location is not None
        assert (location.file, location.line) == ("Conv.cpp", 120)

    def test_exact_pc_wins_over_symbol(self):
        space = AddressSpace()
        symbol = space.add_symbol("libtorch.so", "fn")
        table = LineTable(space)
        table.add_symbol_location(symbol, "fn.cpp", 1)
        table.add_pc_location(symbol.address + 8, "fn.cpp", 42)
        assert table.lookup_pc(symbol.address + 8).line == 42
        assert table.lookup_pc(symbol.address + 4).line == 1

    def test_unknown_pc_returns_none(self):
        assert LineTable(AddressSpace()).lookup_pc(0xdead) is None
        assert len(LineTable()) == 0
