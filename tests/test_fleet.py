"""Tests for the fleet aggregation subsystem (store, aggregator, diff).

Pins the subsystem's contracts:

* the **store**: content-addressed ingest (dedup), catalog round-trips,
  identity validation (anonymous profiles rejected with ``ValueError``),
  ingest of whole files and of crashed/in-flight streamed checkpoint files
  (recovered at their last intact seal), lazy views, filters and ``latest``;
* the **aggregator**: hypothesis property that fleet-merging N single-run
  profiles through a real store is *bit-for-bit* Welford-equivalent to one
  profile containing all N runs' shards, and that the lazy column-sum
  queries match the merged tree without hydrating any view;
* the **differential**: new / vanished / changed call paths, Welch
  significance and ranking, the self-diff-is-empty acceptance contract, and
  population diffs;
* the **wiring**: ``RegressionAnalysis`` report ordering, the differential
  flame-graph export, and the runner's ``store_path``/``baseline`` flow
  surfacing an injected slowdown as the top-ranked regression issue.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyzer import PerformanceAnalyzer, RegressionAnalysis, Severity
from repro.core import ProfileDatabase, ProfileMetadata, recover_profile
from repro.core import metrics as M
from repro.core.cct import CallingContextTree, ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.experiments.runner import PROFILER_DEEPCONTEXT, run_named_workload
from repro.fleet import (
    STATUS_CHANGED,
    STATUS_NEW,
    STATUS_VANISHED,
    DifferentialProfile,
    FleetAggregator,
    ProfileStore,
    config_hash,
    merge_population,
)
from repro.gui import (
    delta_color,
    differential_flamegraph,
    differential_to_dict,
)
from repro.workloads import create_workload


def _path(workload: str, op: str, kernel: str, line: int = 10) -> CallPath:
    return CallPath.of([
        root_frame(workload), thread_frame("main", 1),
        python_frame("train.py", line, "train_step"),
        framework_frame(f"aten::{op}"),
        gpu_kernel_frame(kernel),
    ])


def make_database(workload: str, observations, device: str = "A100",
                  config=None) -> ProfileDatabase:
    """A single-shard profile from ``(op, kernel, gpu_time)`` observations."""
    tree = ShardedCallingContextTree(workload)
    shard = tree.shard_for_tid(1, thread_name="main")
    for op, kernel, gpu_time in observations:
        node = shard.insert(_path(workload, op, kernel))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                    M.METRIC_KERNEL_COUNT: 1.0})
    metadata = ProfileMetadata(program=workload, workload=workload,
                               device=device, config=dict(config or {}))
    return ProfileDatabase(tree, metadata)


BASE_OBSERVATIONS = [("conv", "k_conv", 0.010), ("conv", "k_conv", 0.012),
                     ("linear", "k_gemm", 0.020), ("linear", "k_gemm", 0.021),
                     ("norm", "k_norm", 0.002), ("norm", "k_norm", 0.002)]


# ---------------------------------------------------------------------------
# ProfileStore
# ---------------------------------------------------------------------------

class TestProfileStore:
    def test_ingest_catalogs_run_metadata(self, tmp_path):
        store = ProfileStore(tmp_path)
        database = make_database("unet", BASE_OBSERVATIONS,
                                 config={"pc_sampling": False})
        record = store.ingest(database, labels={"ci": "nightly"})
        assert record.workload == "unet"
        assert record.device == "A100"
        assert record.run_id == record.digest[:16]
        assert record.shards == 1
        assert record.nodes > 0
        assert record.metrics[M.METRIC_GPU_TIME] == pytest.approx(
            database.total_gpu_time())
        assert record.config_hash == config_hash({"pc_sampling": False})
        assert record.labels == {"ci": "nightly"}
        assert os.path.exists(store.profile_path(record.run_id))

    def test_content_addressed_dedup(self, tmp_path):
        store = ProfileStore(tmp_path)
        first = store.ingest(make_database("unet", BASE_OBSERVATIONS))
        second = store.ingest(make_database("unet", BASE_OBSERVATIONS))
        assert first.run_id == second.run_id
        assert len(store) == 1
        # Re-ingesting known bytes folds new labels in instead of dropping
        # them, and the fold persists.
        store.ingest(make_database("unet", BASE_OBSERVATIONS),
                     labels={"ci": "nightly"})
        assert ProfileStore(tmp_path).get(first.run_id).labels == {
            "ci": "nightly"}

    def test_concurrent_handles_do_not_clobber_each_other(self, tmp_path):
        """Two handles on one store: saving through one must not drop runs
        the other catalogued since this handle loaded the catalog."""
        first_handle = ProfileStore(tmp_path)
        second_handle = ProfileStore(tmp_path)
        a = first_handle.ingest(make_database("unet", BASE_OBSERVATIONS))
        b = second_handle.ingest(make_database("vit", BASE_OBSERVATIONS[:2]))
        reopened = ProfileStore(tmp_path)
        assert set(reopened.run_ids()) == {a.run_id, b.run_id}
        # Ingest order is global (by ingest time), not per handle.
        assert reopened.run_ids() == [a.run_id, b.run_id]
        # A removal through one handle survives that handle's later saves.
        first_handle.remove(a.run_id)
        first_handle.ingest(make_database("gnn", BASE_OBSERVATIONS[:4]))
        assert a.run_id not in ProfileStore(tmp_path)

    def test_catalog_survives_reopen(self, tmp_path):
        store = ProfileStore(tmp_path)
        record = store.ingest(make_database("unet", BASE_OBSERVATIONS))
        reopened = ProfileStore(tmp_path)
        assert reopened.run_ids() == [record.run_id]
        again = reopened.get(record.run_id)
        assert again.as_dict() == record.as_dict()
        # Unique prefixes resolve; unknown ids raise with the inventory.
        assert reopened.get(record.run_id[:6]).run_id == record.run_id
        with pytest.raises(KeyError):
            reopened.get("0000000000000000")

    def test_ingest_does_not_mutate_caller_metadata(self, tmp_path):
        store = ProfileStore(tmp_path)
        database = make_database("original", BASE_OBSERVATIONS)
        record = store.ingest(database, workload="fleet-name")
        assert record.workload == "fleet-name"
        assert store.load(record.run_id).metadata.workload == "fleet-name"
        # The caller's live database keeps its own metadata.
        assert database.metadata.workload == "original"

    def test_ingest_rejects_identityless_profile(self, tmp_path):
        store = ProfileStore(tmp_path)
        database = make_database("x", BASE_OBSERVATIONS)
        database.metadata.workload = ""
        database.metadata.program = "program"  # the collision-prone default
        with pytest.raises(ValueError, match="workload/run identity"):
            store.ingest(database)
        assert len(store) == 0
        # An explicit identity overrides the missing metadata.
        record = store.ingest(database, workload="rescued")
        assert record.workload == "rescued"

    def test_ingest_profile_file_any_format(self, tmp_path):
        database = make_database("vit", BASE_OBSERVATIONS)
        json_path = str(tmp_path / "profile.json")
        database.save(json_path, format="columnar-json")
        store = ProfileStore(tmp_path / "store")
        record = store.ingest(json_path)
        # Canonicalised to binary: the stored file loads as a lazy view and
        # preserves the metric totals exactly.
        loaded = store.load(record.run_id)
        assert loaded.total_gpu_time() == database.total_gpu_time()
        assert loaded.metadata.workload == "vit"

    def test_ingest_recovers_truncated_stream(self, tmp_path):
        """A crashed streamed checkpoint file ingests at its last seal."""
        database = make_database("llm", BASE_OBSERVATIONS)
        path = str(tmp_path / "stream.cctb")
        database.save(path, format="cct-binary-v1")
        with open(path, "ab") as handle:
            handle.write(b"partial-append-cut-by-a-crash")
        with pytest.raises(ValueError):
            ProfileDatabase.load(path)  # strict load refuses the dirty tail
        expected = recover_profile(path).total_gpu_time()
        store = ProfileStore(tmp_path / "store")
        record = store.ingest(path)
        assert record.workload == "llm"
        assert store.load(record.run_id).total_gpu_time() == expected

    def test_compressed_store_round_trips_and_stays_lazy(self, tmp_path):
        store = ProfileStore(tmp_path, compression="zlib")
        database = make_database("unet", BASE_OBSERVATIONS)
        record = store.ingest(database)
        assert store.load(record.run_id).total_gpu_time() == \
            database.total_gpu_time()
        with store.aggregator() as aggregator:
            totals = aggregator.aggregate_by_name(kind=FrameKind.GPU_KERNEL)
            assert totals == database.tree.aggregate_by_name(
                kind=FrameKind.GPU_KERNEL)
            assert aggregator.hydrated_run_ids == []
        with pytest.raises(ValueError, match="compression"):
            ProfileStore(tmp_path / "bad", compression="lz99")

    def test_find_latest_and_remove(self, tmp_path):
        store = ProfileStore(tmp_path)
        a = store.ingest(make_database("unet", BASE_OBSERVATIONS, device="A100"))
        b = store.ingest(make_database("unet", BASE_OBSERVATIONS[:4],
                                       device="MI250"))
        c = store.ingest(make_database("vit", BASE_OBSERVATIONS[:2]))
        assert {r.run_id for r in store.find(workload="unet")} == {a.run_id,
                                                                   b.run_id}
        assert store.find(workload="unet", device="MI250") == [b]
        assert store.latest(workload="unet").run_id == b.run_id
        assert store.latest(workload="gnn") is None
        store.remove(b.run_id)
        assert store.latest(workload="unet", device="MI250") is None
        assert len(store) == 2
        assert not os.path.exists(os.path.join(store.root, b.path))
        assert c.run_id in store


# ---------------------------------------------------------------------------
# FleetAggregator
# ---------------------------------------------------------------------------

def _tree_states(tree: CallingContextTree):
    """``identity-path → {metric: exact Welford state}`` for every node."""
    keys = {id(tree.root): ()}
    states = {}
    for node in tree.all_nodes():
        if node.parent is None:
            key = ()
        else:
            key = keys[id(node.parent)] + (node.frame.identity(),)
            keys[id(node)] = key
        states[key] = {metric: aggregate.state()
                       for metric, aggregate in node.exclusive.items()
                       if aggregate.count > 0}
    return states


shard_observations = st.lists(
    st.tuples(st.sampled_from(["conv", "linear"]),
              st.sampled_from(["k0", "k1", "k2"]),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=12)


class TestFleetAggregator:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(shard_observations, min_size=1, max_size=4))
    def test_fleet_merge_bitwise_equals_combined_profile(self, runs):
        """Fleet-merging N stored single-run profiles == one profile holding
        all N runs' shards, down to exact Welford state bits."""
        combined = ShardedCallingContextTree("fleet")
        for index, observations in enumerate(runs):
            shard = combined.shard_for_tid(index + 1,
                                           thread_name=f"run-{index}")
            for op, kernel, gpu_time in observations:
                node = shard.insert(_path("fleet", op, kernel))
                shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                            M.METRIC_KERNEL_COUNT: 1.0})
        expected = _tree_states(combined.merged())

        with tempfile.TemporaryDirectory() as root:
            store = ProfileStore(root)
            run_ids = []
            for index, observations in enumerate(runs):
                tree = ShardedCallingContextTree("fleet")
                shard = tree.shard_for_tid(index + 1,
                                           thread_name=f"run-{index}")
                for op, kernel, gpu_time in observations:
                    node = shard.insert(_path("fleet", op, kernel))
                    shard.attribute_many(node,
                                         {M.METRIC_GPU_TIME: gpu_time,
                                          M.METRIC_KERNEL_COUNT: 1.0})
                # Distinct identities: byte-identical runs would content-
                # address to one catalog entry, which is not this test.
                metadata = ProfileMetadata(program="fleet",
                                           workload=f"run-{index}")
                run_ids.append(store.ingest(
                    ProfileDatabase(tree, metadata)).run_id)
            assert len(set(run_ids)) == len(runs)
            with store.aggregator(run_ids=run_ids) as aggregator:
                merged = aggregator.merged_tree()
                assert _tree_states(merged) == expected

    def test_lazy_queries_match_merged_tree_without_hydration(self, tmp_path):
        store = ProfileStore(tmp_path)
        for index in range(3):
            observations = [(op, kernel, 0.001 * (index + 1) * (j + 1))
                            for j, (op, kernel, _v) in
                            enumerate(BASE_OBSERVATIONS)]
            store.ingest(make_database(f"wl-{index}", observations))
        with store.aggregator() as aggregator:
            assert aggregator.run_count == 3
            totals = aggregator.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                                  metric=M.METRIC_GPU_TIME)
            fleet_total = aggregator.total_metric(M.METRIC_GPU_TIME)
            top = aggregator.top_kernels(2)
            per_run = aggregator.per_run_totals(M.METRIC_GPU_TIME)
            # The lazy gear never hydrated a single run's view.
            assert aggregator.hydrated_run_ids == []
            assert sorted(aggregator.metric_names()) == [
                M.METRIC_GPU_TIME, M.METRIC_KERNEL_COUNT]

            merged = aggregator.merged_tree()
            expected = merged.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                                metric=M.METRIC_GPU_TIME)
            assert set(totals) == set(expected)
            for name, value in expected.items():
                assert totals[name] == pytest.approx(value)
            assert fleet_total == pytest.approx(
                merged.total_metric(M.METRIC_GPU_TIME))
            assert sum(per_run.values()) == pytest.approx(fleet_total)
            assert top[0][M.METRIC_GPU_TIME] >= top[1][M.METRIC_GPU_TIME]
            assert top[0]["fraction"] == pytest.approx(
                top[0][M.METRIC_GPU_TIME] / fleet_total)

    def test_aggregator_follows_live_attached_view(self, tmp_path):
        """Caches invalidate when a live-attached view advances to a new
        seal (the streamed-run dashboard flow); querying must not
        self-invalidate through its own decoding."""
        from repro.core import LazyProfileView
        from repro.core.streaming import StreamingProfileWriter

        database = make_database("live", BASE_OBSERVATIONS[:2])
        writer = StreamingProfileWriter(database,
                                        str(tmp_path / "live.cctb"))
        writer.checkpoint()
        view = LazyProfileView.attach(writer.path)
        aggregator = FleetAggregator({"live": view})
        first = aggregator.total_metric(M.METRIC_GPU_TIME)
        assert first == pytest.approx(0.022)
        # Repeat queries serve the memoized result (fingerprint stable).
        assert aggregator.total_metric(M.METRIC_GPU_TIME) == first
        assert aggregator.merged_tree() is aggregator.merged_tree()

        shard = database.tree.shards()[1]
        node = shard.insert(_path("live", "norm", "k_norm"))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: 0.5,
                                    M.METRIC_KERNEL_COUNT: 1.0})
        writer.checkpoint()
        assert view.refresh() is True
        assert aggregator.total_metric(M.METRIC_GPU_TIME) == pytest.approx(
            0.522)
        totals = aggregator.aggregate_by_name(kind=FrameKind.GPU_KERNEL)
        assert totals["k_norm"] == pytest.approx(0.5)
        writer.close()
        view.close()

    def test_aggregator_explicit_views_and_filters(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.ingest(make_database("unet", BASE_OBSERVATIONS, device="A100"))
        store.ingest(make_database("vit", BASE_OBSERVATIONS[:2],
                                   device="MI250"))
        with store.aggregator(device="MI250") as aggregator:
            assert aggregator.run_count == 1
        with FleetAggregator.from_store(store, workload="unet") as aggregator:
            assert aggregator.run_count == 1


# ---------------------------------------------------------------------------
# DifferentialProfile
# ---------------------------------------------------------------------------

class TestDifferentialProfile:
    def test_self_diff_is_exactly_empty(self):
        database = make_database("unet", BASE_OBSERVATIONS)
        diff = DifferentialProfile(database, database)
        assert diff.is_identical
        assert diff.deltas == []
        assert diff.regressions() == []
        assert diff.improvements() == []
        assert diff.total_delta == 0.0
        assert diff.max_abs_delta == 0.0
        assert diff.new_kernels == [] and diff.vanished_kernels == []

    def test_reload_round_trip_diff_is_empty(self, tmp_path):
        database = make_database("unet", BASE_OBSERVATIONS)
        path = str(tmp_path / "profile.cctb")
        database.save(path, format="cct-binary-v1")
        diff = DifferentialProfile(database, ProfileDatabase.load(path))
        assert diff.is_identical

    def test_changed_new_and_vanished_call_paths(self):
        baseline = make_database("wl", [("conv", "k_conv", 0.010),
                                        ("conv", "k_conv", 0.010),
                                        ("old", "k_gone", 0.005)])
        candidate = make_database("wl", [("conv", "k_conv", 0.030),
                                         ("conv", "k_conv", 0.030),
                                         ("extra", "k_new", 0.001)])
        diff = DifferentialProfile(baseline, candidate)
        by_status = {}
        for delta in diff.deltas:
            by_status.setdefault(delta.status, []).append(delta)
        changed = [d for d in by_status[STATUS_CHANGED]
                   if d.kind == "gpu_kernel"]
        assert [d.name for d in changed] == ["k_conv"]
        assert changed[0].delta_sum == pytest.approx(0.040)
        assert changed[0].z_score > 0
        assert [d.name for d in by_status[STATUS_NEW]] == ["k_new"]
        assert [d.name for d in by_status[STATUS_VANISHED]] == ["k_gone"]
        assert diff.new_kernels == ["k_new"]
        assert diff.vanished_kernels == ["k_gone"]
        assert any(path[-1] == "k_new" for path in diff.new_call_paths())
        assert any(path[-1] == "k_gone"
                   for path in diff.vanished_call_paths())
        # Regressions: the changed kernel's growth outranks the small new
        # context; the vanished one is an improvement.
        regressions = diff.regressions()
        assert regressions[0].name == "k_conv"
        assert {d.name for d in regressions} == {"k_conv", "k_new"}
        assert [d.name for d in diff.improvements()] == ["k_gone"]
        rows = {row["name"]: row for row in diff.kernel_deltas()}
        assert rows["k_conv"]["status"] == STATUS_CHANGED
        assert rows["k_new"]["status"] == STATUS_NEW
        assert rows["k_gone"]["status"] == STATUS_VANISHED

    def test_significance_separates_noise_from_shift(self):
        # Baseline: noisy kernel around 10ms; candidate: same noise for one
        # kernel, a clean deterministic shift for the other.
        noisy_base = [("a", "k_noisy", 0.010 + 0.002 * (i % 3))
                      for i in range(6)]
        shift_base = [("b", "k_shift", 0.010)] * 6
        noisy_cand = [("a", "k_noisy", 0.0102 + 0.002 * ((i + 1) % 3))
                      for i in range(6)]
        shift_cand = [("b", "k_shift", 0.0102)] * 6
        diff = DifferentialProfile(make_database("wl", noisy_base + shift_base),
                                   make_database("wl", noisy_cand + shift_cand))
        by_name = {d.name: d for d in diff.deltas}
        assert by_name["k_shift"].significance > by_name["k_noisy"].significance
        # Equal sums moved, but the deterministic shift ranks first.
        assert diff.regressions()[0].name == "k_shift"

    def test_large_regression_outranks_trivial_new_context(self):
        """Significance scales rank by at most one order of magnitude: a
        negligible deterministic new context must not outrank a regression
        thousands of times its size (the z-saturation footgun)."""
        baseline = make_database("wl", [("hot", "k_hot", 1.0 + 0.01 * i)
                                        for i in range(6)])
        candidate = make_database("wl", [("hot", "k_hot", 1.2 + 0.01 * i)
                                         for i in range(6)]
                                  + [("tiny", "k_tiny_new", 0.0001)])
        diff = DifferentialProfile(baseline, candidate)
        ranked = diff.regressions()
        assert [d.name for d in ranked] == ["k_hot", "k_tiny_new"]

    def test_population_diff_matches_merged_singles(self):
        base_runs = [make_database(f"b{i}", BASE_OBSERVATIONS)
                     for i in range(2)]
        cand_runs = [make_database(f"c{i}", [(op, kernel, value * 2)
                                             for op, kernel, value
                                             in BASE_OBSERVATIONS])
                     for i in range(2)]
        diff = DifferentialProfile.between_populations(base_runs, cand_runs)
        assert diff.total_delta == pytest.approx(diff.baseline_total)
        merged = merge_population(base_runs)
        assert merged.total_metric(M.METRIC_GPU_TIME) == pytest.approx(
            2 * base_runs[0].total_gpu_time())
        summary = diff.summary()
        assert summary["contexts"][STATUS_CHANGED] > 0
        assert summary["top_regressions"]


# ---------------------------------------------------------------------------
# RegressionAnalysis + differential flame graph
# ---------------------------------------------------------------------------

class TestRegressionAnalysis:
    def test_report_ranks_regressions_first(self):
        baseline = make_database("wl", BASE_OBSERVATIONS)
        candidate = make_database("wl", [
            (op, kernel, value * (4.0 if kernel == "k_gemm" else 1.0))
            for op, kernel, value in BASE_OBSERVATIONS])
        analyzer = PerformanceAnalyzer(analyses=[
            RegressionAnalysis(baseline=baseline)])
        report = analyzer.analyze(candidate)
        issues = report.by_analysis("regression")
        assert issues, "expected ranked regression issues"
        top = issues[0]
        assert top.node is not None and top.node.frame.name == "k_gemm"
        assert top.metrics["rank"] == 1.0
        assert top.metrics["delta_sum"] == pytest.approx(0.041 * 3)
        assert top.severity == Severity.CRITICAL  # ~3x the baseline total
        # Findings were attached to the analyzed database.
        assert any(issue["analysis"] == "regression"
                   for issue in candidate.issues)

    def test_no_baseline_is_a_noop(self):
        database = make_database("wl", BASE_OBSERVATIONS)
        report = PerformanceAnalyzer(analyses=[RegressionAnalysis()]).analyze(
            database)
        assert report.by_analysis("regression") == []

    def test_vanished_kernels_flagged_info(self):
        baseline = make_database("wl", BASE_OBSERVATIONS)
        candidate = make_database("wl", BASE_OBSERVATIONS[:4])  # k_norm gone
        issues = RegressionAnalysis(baseline=baseline).analyze(
            candidate.tree)
        info = [issue for issue in issues if issue.severity == Severity.INFO]
        assert any("k_norm" in issue.message for issue in info)


class TestDifferentialFlameGraph:
    def test_delta_coloring_and_statuses(self):
        baseline = make_database("wl", [("conv", "k_conv", 0.010),
                                        ("old", "k_gone", 0.004)])
        candidate = make_database("wl", [("conv", "k_conv", 0.020),
                                         ("extra", "k_new", 0.003)])
        graph = differential_flamegraph(baseline, candidate)
        assert graph.view == "differential"
        nodes = {node.label: node for node in graph.root.walk()}
        regressed = nodes["k_conv"]
        assert regressed.delta == pytest.approx(0.010)
        assert regressed.color not in ("", delta_color(0.0))
        new = nodes["k_new"]
        assert new.status == STATUS_NEW and new.baseline_value == 0.0
        vanished = nodes["k_gone"]
        assert vanished.status == STATUS_VANISHED
        assert vanished.value == 0.0
        assert vanished.delta == pytest.approx(-0.004)
        data = differential_to_dict(graph)
        assert data["view"] == "differential"
        assert data["root"]["delta"] == pytest.approx(
            candidate.total_gpu_time() - baseline.total_gpu_time())

    def test_self_diff_graph_is_neutral(self):
        database = make_database("wl", BASE_OBSERVATIONS)
        graph = differential_flamegraph(database, database)
        for node in graph.root.walk():
            assert node.delta == 0.0
            assert node.color == delta_color(0.0)


# ---------------------------------------------------------------------------
# Runner integration: the --store/--baseline flow
# ---------------------------------------------------------------------------

class _InjectedSlowdown:
    """Wraps a workload, adding one heavy extra operation per iteration.

    The injected op flows through the full interception machinery
    (``EagerEngine.run_kernels``), so the slowdown appears in the candidate
    profile as a genuinely collected context.
    """

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.training = inner.training
        self.supports_jit = inner.supports_jit

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def run_iteration(self, engine, iteration=0):
        from repro.gpu.kernels import KernelSpec

        self._inner.run_iteration(engine, iteration)
        engine.run_kernels("injected::slowdown", [KernelSpec(
            name="injected_slowdown_kernel", flops=5e12,
            bytes_accessed=2e9, num_blocks=2048)])


class TestRunnerFleetFlow:
    def test_baseline_flow_surfaces_injected_slowdown(self, tmp_path):
        store_path = str(tmp_path / "fleet")

        def run(inject: bool):
            workload = create_workload("gnn", small=True)
            if inject:
                workload = _InjectedSlowdown(workload)
            from repro.experiments.runner import run_workload
            return run_workload(workload, profiler=PROFILER_DEEPCONTEXT,
                                iterations=2, store_path=store_path,
                                baseline="latest")

        first = run(inject=False)
        assert first.store_run_id
        assert first.baseline_run_id == ""  # bootstrap: nothing to diff
        assert first.report is None
        assert first.extra["store_runs"] == 1.0

        second = run(inject=True)
        assert second.baseline_run_id == first.store_run_id
        assert second.store_run_id != first.store_run_id
        assert second.extra["store_runs"] == 2.0
        assert second.extra["indexed_runs"] == 2.0  # ingest indexed both
        issues = second.report.by_analysis("regression")
        assert issues and second.extra["regression_issues"] == float(
            len(issues))
        top = issues[0]
        assert top.metrics["rank"] == 1.0
        assert "injected_slowdown_kernel" in top.node_name
        assert top.metrics["delta_sum"] > 0
        # The stored profile carries the findings it was flagged with.
        store = ProfileStore(store_path)
        stored = store.load(second.store_run_id)
        assert any(issue["analysis"] == "regression"
                   for issue in stored.issues)

    def test_runner_ingests_identity_and_dedups(self, tmp_path):
        store_path = str(tmp_path / "fleet")
        results = [run_named_workload("gnn", profiler=PROFILER_DEEPCONTEXT,
                                      iterations=1, store_path=store_path)
                   for _ in range(2)]
        store = ProfileStore(store_path)
        for result in results:
            record = store.get(result.store_run_id)
            assert record.workload == result.workload
            assert record.iterations == 1

    def test_baseline_requires_store(self):
        with pytest.raises(ValueError, match="store_path"):
            run_named_workload("gnn", profiler=PROFILER_DEEPCONTEXT,
                               iterations=1, baseline="latest")

    def test_store_requires_deepcontext(self, tmp_path):
        with pytest.raises(ValueError, match="DeepContext"):
            run_named_workload("gnn", iterations=1,
                               store_path=str(tmp_path / "fleet"))
