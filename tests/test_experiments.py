"""Tests for the experiment drivers (tables, overhead sweeps, case studies)."""

import pytest

from repro.experiments import (
    MODE_EAGER,
    MODE_JIT,
    PROFILER_DEEPCONTEXT,
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_FRAMEWORK,
    PROFILER_NONE,
    case_study_dlrm_index,
    case_study_transformer_fusion,
    case_study_unet_amd_vs_nvidia,
    deepcontext_dominates,
    format_table1,
    format_table2,
    format_table3,
    jax_vs_pytorch,
    measure_overhead,
    median_overheads,
    run_named_workload,
    table1_matrix,
    table2_rows,
)
from repro.experiments.overhead import memory_growth_with_iterations


class TestRunner:
    def test_run_without_profiler(self):
        result = run_named_workload("resnet", iterations=1)
        assert result.profiler == PROFILER_NONE
        assert result.database is None
        assert result.kernel_launches > 0 and result.gpu_kernel_seconds > 0
        assert result.memory_overhead == 1.0

    def test_run_with_deepcontext(self):
        result = run_named_workload("gnn", profiler=PROFILER_DEEPCONTEXT, iterations=1)
        assert result.database is not None
        assert result.profile_bytes > 0
        assert result.memory_overhead > 1.0

    def test_run_with_framework_baseline(self):
        result = run_named_workload("gnn", profiler=PROFILER_FRAMEWORK, iterations=1)
        assert result.database is None and result.profile_bytes > 0

    def test_run_jit_mode(self):
        eager = run_named_workload("unet", mode=MODE_EAGER, iterations=1)
        jitted = run_named_workload("unet", mode=MODE_JIT, iterations=1)
        assert jitted.kernel_launches < eager.kernel_launches

    def test_run_on_amd(self):
        result = run_named_workload("resnet", device="mi250", iterations=1,
                                    profiler=PROFILER_DEEPCONTEXT)
        assert result.database.metadata.vendor == "amd"

    def test_run_persists_profile_through_storage_engine(self, tmp_path):
        from repro.core import LazyProfileView, ProfileDatabase

        path = str(tmp_path / "run.cctb")
        result = run_named_workload("gnn", profiler=PROFILER_DEEPCONTEXT,
                                    iterations=1, profile_path=path,
                                    profile_format="cct-binary-v1")
        assert result.extra["profile_file_bytes"] > 0
        reloaded = ProfileDatabase.load(path)
        assert isinstance(reloaded.tree, LazyProfileView)
        assert reloaded.total_gpu_time() == pytest.approx(
            result.database.total_gpu_time(), rel=1e-9)
        assert reloaded.top_kernels(3) == result.database.top_kernels(3)
        # The run's profiler-config snapshot rode along in the meta block.
        assert reloaded.metadata.config["sharded_cct"] == \
            result.database.metadata.config["sharded_cct"]

    def test_profile_path_without_deepcontext_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="profile_path requires"):
            run_named_workload("gnn", profiler=PROFILER_FRAMEWORK, iterations=1,
                               profile_path=str(tmp_path / "never.prof"))


class TestTables:
    def test_table1(self):
        rows = table1_matrix()
        assert len(rows) == 5
        assert deepcontext_dominates()
        text = format_table1(rows)
        assert "DeepContext" in text and "Nsight Systems" in text

    def test_table2(self):
        rows = table2_rows()
        assert {row["GPU"] for row in rows} == {"A100 SXM", "MI250"}
        assert "A100" in format_table2()


class TestOverheadSweep:
    def test_measure_overhead_single_workload(self):
        row = measure_overhead("gnn", iterations=1)
        assert set(row.time_overhead) == {PROFILER_FRAMEWORK, PROFILER_DEEPCONTEXT,
                                          PROFILER_DEEPCONTEXT_NATIVE}
        assert all(value > 0 for value in row.time_overhead.values())
        assert all(value >= 1.0 for value in row.memory_overhead.values())
        assert row.as_dict()["workload"] == "GNN"
        medians = median_overheads([row])
        assert set(medians) == set(row.time_overhead)

    def test_memory_growth_shapes(self):
        growth = memory_growth_with_iterations("gnn", iteration_counts=(1, 4))
        assert growth[PROFILER_FRAMEWORK][1] > 2 * growth[PROFILER_FRAMEWORK][0]
        assert growth[PROFILER_DEEPCONTEXT][1] < 1.5 * growth[PROFILER_DEEPCONTEXT][0]

    def test_jax_vs_pytorch_rows(self):
        rows = jax_vs_pytorch(("gnn",), iterations=1)
        assert rows[0]["jit_kernels"] < rows[0]["eager_kernels"]
        assert rows[0]["speedup"] >= 1.0


class TestCaseStudies:
    def test_dlrm_case_study_shape(self):
        result = case_study_dlrm_index(iterations=1)
        assert result.speedup is not None and result.speedup > 1.2
        assert result.analysis_client == 3
        assert "index_select" in result.optimization

    def test_transformer_fusion_case_study(self):
        result = case_study_transformer_fusion(iterations=1)
        assert result.speedup is not None and result.speedup > 1.0
        assert result.details["optimized_kernels"] < result.details["baseline_kernels"]

    def test_amd_vs_nvidia_case_study(self):
        result = case_study_unet_amd_vs_nvidia(iterations=1)
        assert result.speedup is None
        assert result.details["amd_instance_norm_fraction"] > \
            result.details["nvidia_instance_norm_fraction"]

    def test_format_table3_renders_all_rows(self):
        results = [case_study_dlrm_index(iterations=1)]
        table = format_table3(results)
        assert "DLRM-small" in table and "Speedup" in table
