"""Tests for the live fleet watcher (``repro.fleet.watcher``).

Pins the watcher's contracts:

* **retention** — :meth:`ProfileStore.prune`: age and per-workload count
  rules, label narrowing, protected labels, quarantine interaction, and the
  no-op report shape;
* **tailing** — discovery of streamed checkpoint files, refresh following new
  seals, attach retry on not-yet-sealed files, degrade-don't-crash on torn
  tails and truncation, vanished-file cleanup, and the liveness gauges;
* **completion** — ingest on completion marker and on settle timeout,
  retention applied through the catalog lock after each ingest, and an
  ingest failure filing a watcher issue instead of crashing;
* **standing jobs** — scheduling by period, scrub filing quarantine issues,
  health snapshots, dashboard re-render;
* the ISSUE's **end-to-end acceptance**: a dashboard that reflects a new
  seal within one poll, a completed run ingested then pruned per retention,
  and the rolling drift job filing an injected slowdown as the top-ranked
  regression issue in the persisted issue log.
"""

import json
import os
import threading
import time

import pytest

from repro.core import ProfileDatabase, ProfileMetadata, StreamingProfileWriter
from repro.core.faultfs import flip_bit
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.core.streaming import completion_marker_path
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import (
    FleetWatcher,
    ProfileStore,
    RetentionPolicy,
    WatchedRun,
)
from repro.fleet.store import PROFILE_SUFFIX
from repro.obs import TELEMETRY, HealthTimeSeries


@pytest.fixture(autouse=True)
def _telemetry():
    """Gauges/counters are part of the watcher's contract: record them."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    TELEMETRY.enable()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def _path(workload: str, op: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame(workload), thread_frame("main", 1),
        python_frame("train.py", 10, "train_step"),
        framework_frame(f"aten::{op}"),
        gpu_kernel_frame(kernel),
    ])


def make_database(workload: str, observations,
                  anonymous: bool = False) -> ProfileDatabase:
    """A single-shard profile from ``(op, kernel, gpu_time)`` observations."""
    tree = ShardedCallingContextTree(workload if not anonymous else "program")
    shard = tree.shard_for_tid(1, thread_name="main")
    for op, kernel, gpu_time in observations:
        node = shard.insert(_path(workload, op, kernel))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                    M.METRIC_KERNEL_COUNT: 1.0})
    if anonymous:
        return ProfileDatabase(tree)
    metadata = ProfileMetadata(program=workload, workload=workload,
                               device="A100")
    return ProfileDatabase(tree, metadata)


FAST = [("conv", "k_conv", 0.010), ("linear", "k_gemm", 0.020),
        ("norm", "k_norm", 0.002)]


def fast_observations(jitter: float = 0.0):
    """The FAST shape with per-run jitter so content addresses differ."""
    return [(op, kernel, gpu + jitter) for op, kernel, gpu in FAST]


def start_stream(directory, name: str, workload: str, observations):
    """Stream a run's first checkpoint into ``directory``.

    Returns ``(database, writer, path)`` with one seal on disk — the moment
    a watcher can first attach it.
    """
    database = make_database(workload, observations)
    os.makedirs(str(directory), exist_ok=True)
    path = os.path.join(str(directory), f"{name}{PROFILE_SUFFIX}")
    writer = StreamingProfileWriter(database, path)
    writer.checkpoint()
    return database, writer, path


def observe(database: ProfileDatabase, workload: str, op: str, kernel: str,
            gpu_time: float) -> None:
    shard = database.tree.shard_for_tid(1)
    node = shard.insert(_path(workload, op, kernel))
    shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                M.METRIC_KERNEL_COUNT: 1.0})


def gauge(name: str) -> float:
    return TELEMETRY.snapshot()["gauges"][name]


# ---------------------------------------------------------------------------
# ProfileStore.prune
# ---------------------------------------------------------------------------

class TestStorePrune:
    def test_noop_without_rules(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        store.ingest(make_database("unet", fast_observations()))
        report = store.prune()
        assert report.examined == 1
        assert report.pruned == []
        assert report.kept == 1
        assert report.as_dict()["pruned"] == []
        assert len(store) == 1

    def test_prune_by_age(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        old = store.ingest(make_database("unet", fast_observations(0.001)))
        store.ingest(make_database("unet", fast_observations(0.002)))
        report = store.prune(max_age_s=60.0, now=time.time() + 120.0)
        assert len(report.pruned) == 2
        assert old.run_id in report.pruned_run_ids
        assert all("age" in reason for _, reason in report.pruned)
        assert len(store) == 0
        # The profiles are really gone, not just un-catalogued.
        assert os.listdir(os.path.join(store.root, "profiles")) == []

    def test_max_runs_keeps_newest_per_workload(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        unet = [store.ingest(make_database("unet", fast_observations(i / 1e3)))
                for i in range(3)]
        gnn = store.ingest(make_database("gnn", fast_observations()))
        report = store.prune(max_runs=2)
        assert report.pruned_run_ids == [unet[0].run_id]
        assert "max_runs=2" in report.pruned[0][1]
        assert [r.run_id for r in store.find(workload="unet")] == [
            unet[1].run_id, unet[2].run_id]
        # The other workload is under its own budget — untouched.
        assert store.find(workload="gnn") == [gnn]

    def test_protect_labels_exempt_runs(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        pinned = store.ingest(make_database("unet", fast_observations(0.001)),
                              labels={"pinned": "true"})
        store.ingest(make_database("unet", fast_observations(0.002)))
        report = store.prune(max_age_s=1.0, now=time.time() + 100.0,
                             protect_labels=("pinned",))
        assert report.protected == [pinned.run_id]
        assert pinned.run_id not in report.pruned_run_ids
        assert store.get(pinned.run_id) is pinned

    def test_labels_narrow_the_sweep(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        nightly = store.ingest(make_database("unet", fast_observations(0.001)),
                               labels={"ci": "nightly"})
        keeper = store.ingest(make_database("unet", fast_observations(0.002)))
        report = store.prune(max_age_s=1.0, now=time.time() + 100.0,
                             labels={"ci": "nightly"})
        assert report.examined == 1
        assert report.pruned_run_ids == [nightly.run_id]
        # The unlabeled run was never examined, let alone pruned.
        assert store.run_ids() == [keeper.run_id]

    def test_quarantined_runs_do_not_consume_count_slots(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        runs = [store.ingest(make_database("unet", fast_observations(i / 1e3)))
                for i in range(3)]
        store.quarantine(runs[2].run_id, "bit rot")
        report = store.prune(max_runs=2)
        # Two healthy runs fit the budget; the quarantined one neither
        # occupies a slot nor is pruned by the count rule.
        assert report.pruned == []
        assert runs[2].run_id in store
        # The age rule, by contrast, does age quarantined runs out.
        aged = store.prune(max_age_s=1.0, now=time.time() + 100.0)
        assert runs[2].run_id in aged.pruned_run_ids


# ---------------------------------------------------------------------------
# Tailing live runs
# ---------------------------------------------------------------------------

class TestWatcherTailing:
    def test_discovers_and_gauges_live_run(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            tick = watcher.poll_once(now=1000.0)
            assert tick.discovered == ["run-a"]
            assert tick.runs_live == 1
            run = watcher.runs[path]
            assert run.nodes == database.tree.stored_node_count()
            assert run.metric_total == pytest.approx(
                database.total_gpu_time())
            assert gauge("watcher.runs_live") == 1.0
            assert gauge("watcher.run.run-a.nodes") == float(run.nodes)
            assert gauge("watcher.last_seal_age_s") == 0.0
            # An idle second poll: no advance, the seal just ages.
            tick = watcher.poll_once(now=1007.0)
            assert tick.advanced == []
            assert gauge("watcher.last_seal_age_s") == pytest.approx(7.0)
        writer.close()

    def test_refresh_follows_new_seals(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            nodes_before = watcher.runs[path].nodes
            observe(database, "unet", "attn", "k_attn", 0.5)
            writer.checkpoint()
            tick = watcher.poll_once(now=1001.0)
            assert tick.advanced == ["run-a"]
            run = watcher.runs[path]
            assert run.nodes > nodes_before
            assert run.metric_total == pytest.approx(
                database.total_gpu_time())
            assert run.last_seal_at == 1001.0
            assert TELEMETRY.counter_value("watcher.seals_observed") == 1.0
        writer.close()

    def test_not_yet_sealed_file_is_retried_not_tracked(self, tmp_path):
        watch = tmp_path / "watch"
        watch.mkdir()
        bad = watch / f"half-born{PROFILE_SUFFIX}"
        bad.write_bytes(b"not a profile header at all")
        store = ProfileStore(tmp_path / "store")
        with FleetWatcher(str(watch), store, scrub_every_s=None,
                          drift_every_s=None, snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            tick = watcher.poll_once(now=1000.0)
            assert tick.discovered == []
            assert watcher.runs == {}
            assert TELEMETRY.counter_value("watcher.attach_retries") == 1.0
            # Still retried (and still failing) on the next poll.
            watcher.poll_once(now=1001.0)
            assert TELEMETRY.counter_value("watcher.attach_retries") == 2.0

    def test_torn_tail_degrades_to_last_sealed_prefix(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            before = watcher.runs[path]
            nodes, total = before.nodes, before.metric_total
            # A producer crash mid-append: garbage past the last seal.
            with open(path, "ab") as handle:
                handle.write(b"\x00\xffgarbage past the seal\x00" * 8)
            tick = watcher.poll_once(now=1001.0)
            run = watcher.runs[path]
            assert tick.advanced == []
            assert not run.stalled  # recovery found the sealed prefix
            assert run.nodes == nodes
            assert run.metric_total == pytest.approx(total)
        writer.close()

    def test_truncated_file_stalls_then_recovers(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        original = open(path, "rb").read()
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            served_nodes = watcher.runs[path].nodes
            # Truncate below the first seal: no intact prefix remains on
            # disk, but the attached view keeps serving from its old mmap.
            with open(path, "r+b") as handle:
                handle.truncate(10)
            tick = watcher.poll_once(now=1001.0)
            run = watcher.runs[path]
            assert run.stalled
            assert run.error
            assert tick.runs_stalled == 1
            assert gauge("watcher.runs_stalled") == 1.0
            assert TELEMETRY.counter_value("watcher.refresh_errors") == 1.0
            assert run.nodes == served_nodes  # degrade, never crash
            # The file comes back (operator restored it): un-stalls.
            with open(path, "wb") as handle:
                handle.write(original)
            watcher.poll_once(now=1002.0)
            assert not watcher.runs[path].stalled
        writer.close()

    def test_vanished_file_is_dropped(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        writer.close()
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            os.unlink(path)
            tick = watcher.poll_once(now=1001.0)
            assert watcher.runs == {}
            assert tick.runs_live == 0
            assert TELEMETRY.counter_value("watcher.runs_vanished") == 1.0

    def test_run_loop_is_bounded(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        watcher = FleetWatcher(str(tmp_path / "watch"), store,
                               poll_interval_s=0.0, scrub_every_s=None,
                               drift_every_s=None, snapshot_every_s=None,
                               dashboard_every_s=None)
        assert watcher.run(max_ticks=3) == 3
        assert watcher.run(deadline_s=0.0) == 0
        stop = threading.Event()
        stop.set()
        assert watcher.run(stop=stop) == 0


# ---------------------------------------------------------------------------
# Completion, ingest and retention
# ---------------------------------------------------------------------------

class TestWatcherCompletion:
    def test_completion_marker_triggers_ingest(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None, dashboard_every_s=None,
                          labels={"source": "watcher"},
                          remove_ingested=True) as watcher:
            watcher.poll_once(now=1000.0)
            writer.close(mark_complete=True)
            assert os.path.exists(completion_marker_path(path))
            tick = watcher.poll_once(now=1001.0)
            assert len(tick.ingested) == 1
            record = store.get(tick.ingested[0])
            assert record.workload == "unet"
            assert record.labels == {"source": "watcher"}
            assert watcher.runs == {}
            # remove_ingested cleaned the stream and its marker.
            assert not os.path.exists(path)
            assert not os.path.exists(completion_marker_path(path))
            # The path never re-enters tracking.
            tick = watcher.poll_once(now=1002.0)
            assert tick.discovered == []

    def test_settle_timeout_triggers_ingest(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store, settle_s=5.0,
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            assert watcher.poll_once(now=1003.0).ingested == []
            tick = watcher.poll_once(now=1006.0)  # quiet for >= settle_s
            assert len(tick.ingested) == 1
            # Ingest recovered the stream at its last seal even though the
            # writer never closed (the crashed-producer case).
            assert store.get(tick.ingested[0]).nodes == \
                database.tree.stored_node_count()
        writer.close()

    def test_retention_applied_after_ingest(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        old = [store.ingest(make_database("unet", fast_observations(i / 1e3)))
               for i in range(2)]
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations(0.009))
        writer.close(mark_complete=True)
        with FleetWatcher(str(tmp_path / "watch"), store,
                          retention=RetentionPolicy(max_runs=2),
                          scrub_every_s=None, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            tick = watcher.poll_once(now=1000.0)
            assert len(tick.ingested) == 1
            assert tick.pruned == [old[0].run_id]
            assert len(store.find(workload="unet")) == 2
            assert old[0].run_id not in store

    def test_ingest_failure_files_issue_and_blacklists(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        # An anonymous profile: no workload identity, so ingest refuses.
        database = make_database("unet", fast_observations(), anonymous=True)
        os.makedirs(tmp_path / "watch")
        path = os.path.join(str(tmp_path / "watch"),
                            f"anon{PROFILE_SUFFIX}")
        writer = StreamingProfileWriter(database, path)
        writer.checkpoint()
        writer.close(mark_complete=True)
        issue_log = str(tmp_path / "issues.jsonl")
        with FleetWatcher(str(tmp_path / "watch"), store,
                          issue_log_path=issue_log, scrub_every_s=None,
                          drift_every_s=None, snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            tick = watcher.poll_once(now=1000.0)
            assert tick.ingested == []
            assert tick.issues_filed == 1
            assert len(store) == 0
            rows = HealthTimeSeries(issue_log).records()
            assert len(rows) == 1
            assert rows[0]["analysis"] == "watcher"
            assert rows[0]["severity"] == "warning"
            assert "could not be ingested" in rows[0]["message"]
            # Blacklisted: the next poll neither retries nor re-files.
            tick = watcher.poll_once(now=1001.0)
            assert tick.issues_filed == 0
            assert len(HealthTimeSeries(issue_log).records()) == 1


# ---------------------------------------------------------------------------
# Standing jobs
# ---------------------------------------------------------------------------

class TestWatcherJobs:
    def test_jobs_fire_by_period(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        with FleetWatcher(str(tmp_path / "watch"), store,
                          scrub_every_s=100.0, drift_every_s=None,
                          snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            # Every enabled job fires on the first poll...
            assert watcher.poll_once(now=1000.0).jobs_ran == ["scrub"]
            # ...then not again until its period elapses.
            assert watcher.poll_once(now=1050.0).jobs_ran == []
            assert watcher.poll_once(now=1100.0).jobs_ran == ["scrub"]

    def test_scrub_job_files_quarantine_issues(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        record = store.ingest(make_database("unet", fast_observations()))
        # Rot a byte in the stored payload; the scrub sweep must catch it.
        flip_bit(store.profile_path(record.run_id), 600)
        issue_log = str(tmp_path / "issues.jsonl")
        with FleetWatcher(str(tmp_path / "watch"), store,
                          issue_log_path=issue_log, scrub_every_s=1.0,
                          drift_every_s=None, snapshot_every_s=None,
                          dashboard_every_s=None) as watcher:
            tick = watcher.poll_once(now=1000.0)
            assert "scrub" in tick.jobs_ran
            assert tick.issues_filed == 1
        assert [r.run_id for r in store.quarantined()] == [record.run_id]
        rows = HealthTimeSeries(issue_log).records()
        assert len(rows) == 1
        assert record.run_id in rows[0]["message"]
        assert "quarantined" in rows[0]["message"]

    def test_snapshot_job_appends_health_series(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        health = HealthTimeSeries(str(tmp_path / "health.jsonl"), fsync=False)
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store, health=health,
                          snapshot_every_s=0.0, scrub_every_s=None,
                          drift_every_s=None,
                          dashboard_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            watcher.poll_once(now=1001.0)
        rows = health.records()
        assert len(rows) == 2
        assert rows[0]["ts"] == 1000.0
        assert rows[1]["watcher"]["runs_live"] == 1
        assert rows[1]["watcher"]["ticks"] == 1
        # The gauges published by the first poll are in the second snapshot
        # (jobs run before gauges within a tick), chartable as a series.
        assert health.series("gauges", "watcher.runs_live")[-1][1] == 1.0
        writer.close()

    def test_dashboard_job_rerenders_page(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        dashboard = str(tmp_path / "dash.html")
        database, writer, path = start_stream(tmp_path / "watch", "run-a",
                                              "unet", fast_observations())
        with FleetWatcher(str(tmp_path / "watch"), store,
                          dashboard_path=dashboard, dashboard_every_s=0.0,
                          poll_interval_s=2.0, scrub_every_s=None,
                          drift_every_s=None,
                          snapshot_every_s=None) as watcher:
            watcher.poll_once(now=1000.0)
            page = open(dashboard, encoding="utf-8").read()
            assert '<meta http-equiv="refresh" content="2"/>' in page
            assert "run-a" in page
            nodes = watcher.runs[path].nodes
            assert f"{nodes} node(s)" in page
        writer.close()


# ---------------------------------------------------------------------------
# End-to-end acceptance (ISSUE 10)
# ---------------------------------------------------------------------------

class TestWatcherEndToEnd:
    def test_watch_ingest_prune_and_drift(self, tmp_path):
        """The full lifecycle: live → sealed → ingested → retained/pruned,
        with the dashboard tracking each poll and the drift job filing the
        injected slowdown as the top-ranked regression issue."""
        store = ProfileStore(tmp_path / "store")
        baselines = [
            store.ingest(make_database("convnet", fast_observations(i / 1e3)))
            for i in range(3)]
        watch = tmp_path / "watch"
        dashboard = str(tmp_path / "dash.html")
        health = HealthTimeSeries(str(tmp_path / "health.jsonl"), fsync=False)
        issue_log = str(tmp_path / "issues.jsonl")
        t0 = time.time()

        watcher = FleetWatcher(
            str(watch), store,
            retention=RetentionPolicy(max_runs=4),
            drift_every_s=0.0, drift_window=8, drift_min_runs=4,
            scrub_every_s=None, snapshot_every_s=0.0,
            dashboard_path=dashboard, dashboard_every_s=0.0,
            issue_log_path=issue_log, health=health)
        with watcher:
            # -- live: first seal appears within one poll -------------------
            database, writer, path = start_stream(
                watch, "run-live", "convnet", fast_observations(0.004))
            tick = watcher.poll_once(now=t0)
            assert tick.discovered == ["run-live"]
            page = open(dashboard, encoding="utf-8").read()
            nodes_first = watcher.runs[path].nodes
            assert "run-live" in page
            assert f"{nodes_first} node(s)" in page

            # -- a new seal lands: the next poll's dashboard shows it ------
            # (acceptance (a): reflected within one poll interval).
            observe(database, "convnet", "attn", "k_hot", 50.0)
            writer.checkpoint()
            tick = watcher.poll_once(now=t0 + 1.0)
            assert tick.advanced == ["run-live"]
            nodes_after = watcher.runs[path].nodes
            assert nodes_after > nodes_first
            page = open(dashboard, encoding="utf-8").read()
            assert f"{nodes_after} node(s)" in page

            # -- completion: final seal ingested, drift judged -------------
            writer.close(mark_complete=True)
            tick = watcher.poll_once(now=t0 + 2.0)
            assert len(tick.ingested) == 1
            slow_id = tick.ingested[0]
            assert store.get(slow_id).workload == "convnet"
            assert "drift" in tick.jobs_ran
            assert tick.issues_filed > 0

            # Acceptance (c): the slowdown is the top-ranked regression in
            # the persisted issue log.
            rows = [row for row in HealthTimeSeries(issue_log).records()
                    if row["analysis"] == "regression"]
            assert rows
            top = min(rows, key=lambda row: row["metrics"].get("rank", 1e9))
            assert top["metrics"]["rank"] == 1.0
            assert "k_hot" in top["node"]
            assert top["workload"] == "convnet"
            assert top["severity"] in ("warning", "critical")

            # -- retention: the next completed run evicts the oldest -------
            # (acceptance (b): ingested then pruned per policy).
            database2, writer2, path2 = start_stream(
                watch, "run-next", "convnet", fast_observations(0.006))
            writer2.close(mark_complete=True)
            tick = watcher.poll_once(now=t0 + 3.0)
            assert len(tick.ingested) == 1
            assert tick.pruned == [baselines[0].run_id]
            assert baselines[0].run_id not in store
            assert len(store.find(workload="convnet")) == 4

        # The health series recorded every poll and is chartable.
        assert len(health) == 4
        assert health.series("gauges", "watcher.runs_live")
        # The final dashboard carries the filed regression.
        page = open(dashboard, encoding="utf-8").read()
        assert "regression" in page


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------

class TestWatchCli:
    def test_cli_bounded_run(self, tmp_path, capsys):
        from repro.fleet.watch import main

        database, writer, path = start_stream(
            tmp_path / "watch", "run-a", "unet", fast_observations())
        writer.close(mark_complete=True)
        code = main([str(tmp_path / "watch"),
                     "--store", str(tmp_path / "store"),
                     "--max-ticks", "2", "--poll-interval-s", "0",
                     "--dashboard", str(tmp_path / "dash.html")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 tick(s)" in out
        assert "1 run(s) in store" in out
        assert os.path.exists(tmp_path / "dash.html")
        assert len(ProfileStore(tmp_path / "store")) == 1
