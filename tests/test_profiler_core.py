"""Tests for the profiler core: collectors, orchestration, database persistence."""

import pytest

from repro.core import (
    CorrelationRegistry,
    DeepContextProfiler,
    ProfileDatabase,
    ProfilerConfig,
)
from repro.core import metrics as M
from repro.core.cct import CallingContextTree
from repro.dlmonitor.callpath import FrameKind
from repro.framework import EagerEngine, modules, tensor
from repro.framework import functional as F
from repro.framework.jit import JitCompiler, jit
from repro.workloads import create_workload


def run_small_training(engine, profiler, iterations=2):
    with engine, profiler.profile():
        model = modules.Sequential(modules.Conv2d(3, 8), modules.ReLU(), name="net")
        head = modules.Linear(8, 4, name="head")
        loss_fn = modules.CrossEntropyLoss()
        optimizer = modules.SGD(model.parameters() + head.parameters())
        for _ in range(iterations):
            x = tensor((4, 3, 32, 32))
            y = tensor((4,), dtype="int64")
            features = model(x)
            pooled = F.avg_pool2d(features, kernel_size=features.shape[-1])
            flat = F.reshape(pooled, (pooled.shape[0], pooled.shape[1]))
            loss = loss_fn(head(flat), y)
            engine.backward(loss)
            optimizer.step()
            profiler.mark_iteration()
        engine.synchronize()
    return profiler.database


class TestCorrelationRegistry:
    def test_register_resolve_release(self):
        tree = CallingContextTree()
        registry = CorrelationRegistry()
        node = tree.root
        registry.register(7, node, kernel_name="k")
        assert registry.resolve(7).node is node
        registry.release(7)
        assert registry.pending_count == 0
        assert registry.resolve(7) is None
        assert registry.resolved == 1 and registry.unresolved == 1


class TestDeepContextProfiler:
    def test_end_to_end_profile(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="unit"))
        database = run_small_training(engine, profiler)
        assert database.total_gpu_time() > 0
        assert database.total_kernel_launches() == engine.kernel_launches
        assert database.node_count() > 20
        assert database.metadata.iterations == 2
        assert database.metadata.device == "A100 SXM"
        summary = database.summary()
        assert set(summary) >= {"gpu_time_seconds", "kernel_launches", "cct_nodes"}

    def test_database_unavailable_before_stop(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine)
        with pytest.raises(RuntimeError):
            _ = profiler.database
        with pytest.raises(RuntimeError):
            profiler.stop()

    def test_without_native_config_has_no_native_frames(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine, ProfilerConfig.without_native())
        database = run_small_training(engine, profiler, iterations=1)
        assert not database.tree.nodes_of_kind(FrameKind.NATIVE)
        assert database.tree.nodes_of_kind(FrameKind.FRAMEWORK)

    def test_full_config_collects_native_and_samples(self):
        engine = EagerEngine("a100")
        config = ProfilerConfig.full()
        config.pc_sampling = True
        profiler = DeepContextProfiler(engine, config)
        database = run_small_training(engine, profiler, iterations=1)
        assert database.tree.nodes_of_kind(FrameKind.NATIVE)
        instruction_nodes = database.tree.nodes_of_kind(FrameKind.GPU_INSTRUCTION)
        assert instruction_nodes
        assert any(node.inclusive.sum(M.METRIC_STALL_SAMPLES) > 0 for node in instruction_nodes)

    def test_kernel_launch_metrics_attributed(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="metrics"))
        database = run_small_training(engine, profiler, iterations=1)
        root = database.tree.root.inclusive
        assert root.sum(M.METRIC_BLOCKS) > 0
        assert root.sum(M.METRIC_REGISTERS) > 0
        assert root.sum(M.METRIC_KERNEL_COUNT) == database.total_kernel_launches()

    def test_cpu_sampling_attributes_cpu_time(self):
        engine = EagerEngine("a100")
        config = ProfilerConfig(cpu_sample_period=1e-5, program_name="cpu")
        profiler = DeepContextProfiler(engine, config)
        database = run_small_training(engine, profiler, iterations=2)
        assert database.total_cpu_time() > 0

    def test_perf_events_collected_when_requested(self):
        engine = EagerEngine("a100")
        config = ProfilerConfig(cpu_sample_period=1e-5, perf_events=["instructions"])
        profiler = DeepContextProfiler(engine, config)
        database = run_small_training(engine, profiler, iterations=1)
        assert database.tree.root.inclusive.sum("perf::instructions") > 0

    def test_overhead_statistics(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine)
        run_small_training(engine, profiler, iterations=1)
        stats = profiler.overhead_statistics()
        assert stats["cct_nodes"] > 0
        assert stats["profiler_wall_seconds"] > 0
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0

    def test_jit_mode_profiling(self):
        engine = EagerEngine("a100")
        compiler = JitCompiler(engine)
        profiler = DeepContextProfiler(engine, ProfilerConfig.without_native(),
                                       jit_compiler=compiler)
        workload = create_workload("gnn", small=True)
        with engine, profiler.profile():
            workload.build(engine)
            compiled = jit(workload.step_fn(engine), engine=engine, with_grad=True,
                           compiler=compiler)
            compiled(*workload.make_batch(engine, 0))
            engine.synchronize()
        database = profiler.database
        assert database.total_gpu_time() > 0
        assert len(profiler.monitor.fusion_map) >= 1


class TestProfileDatabase:
    def _database(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="persist"))
        return run_small_training(engine, profiler, iterations=1)

    def test_top_kernels_ordered(self):
        database = self._database()
        top = database.top_kernels(5)
        values = [row["gpu_time"] for row in top]
        assert values == sorted(values, reverse=True)
        assert all(0 <= row["fraction"] <= 1 for row in top)

    def test_json_roundtrip(self, tmp_path):
        database = self._database()
        path = database.save(str(tmp_path / "profile.json"))
        restored = ProfileDatabase.load(path)
        assert restored.node_count() == database.node_count()
        assert restored.total_gpu_time() == pytest.approx(database.total_gpu_time())
        assert restored.metadata.program == "persist"
        assert restored.total_kernel_launches() == database.total_kernel_launches()

    def test_size_bytes_positive_and_bounded_by_nodes(self):
        database = self._database()
        assert database.size_bytes() > 2048
        assert database.size_bytes() < database.node_count() * 4096
