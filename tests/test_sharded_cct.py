"""Tests for per-thread CCT shards merged at query time.

The sharded tree's contract is equivalence: for *any* interleaving of
per-thread observations, the merged view's structure, exclusive aggregates and
lazily materialized inclusive view must match a single shared tree fed the
same observations, to floating-point accuracy.  These tests pin that property
(with hypothesis), the shard lifecycle (handles, caching behind generation
counters), the multi-shard columnar persistence with provenance, and the
zero-row regressions fixed alongside (``aggregate_by_name`` count gating,
``MetricSet.as_dict`` zombie zero entries).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CallingContextTree,
    DeepContextProfiler,
    ProfileDatabase,
    ProfilerConfig,
    ShardedCallingContextTree,
)
from repro.core import metrics as M
from repro.core.metrics import MetricSet
from repro.cpu.clock import MachineClock
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.framework import EagerEngine, modules, tensor
from repro.framework import functional as F
from repro.framework.threads import THREAD_BACKWARD, ThreadRegistry

THREAD_NAMES = {1: "main", 2: "backward-0", 3: "worker-0"}


def _path(tid: int, module: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame("sharded"), thread_frame(THREAD_NAMES[tid], tid),
        python_frame("train.py", 10 + tid, "train_step"),
        framework_frame(f"aten::{module}"),
        gpu_kernel_frame(kernel),
    ])


# One observation: which thread saw it, where, and how much GPU time.
observations_strategy = st.lists(
    st.tuples(
        st.sampled_from([1, 2, 3]),
        st.sampled_from(["conv", "linear", "norm"]),
        st.sampled_from(["k0", "k1"]),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1, max_size=80,
)


def _build_single(observations) -> CallingContextTree:
    tree = CallingContextTree("sharded")
    for tid, module, kernel, gpu_time in observations:
        node = tree.insert(_path(tid, module, kernel))
        tree.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                   M.METRIC_KERNEL_COUNT: 1.0})
    return tree


def _build_sharded(observations) -> ShardedCallingContextTree:
    tree = ShardedCallingContextTree("sharded")
    for tid, module, kernel, gpu_time in observations:
        shard = tree.shard_for_tid(tid, thread_name=THREAD_NAMES[tid])
        node = shard.insert(_path(tid, module, kernel))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                    M.METRIC_KERNEL_COUNT: 1.0})
    return tree


def _snapshot(tree: CallingContextTree):
    """Per-node exclusive states and inclusive (count, sum) pairs, keyed by path."""
    tree.ensure_inclusive()
    snapshot = {}
    for node in tree.all_nodes():
        key = tuple(frame.identity() for frame in
                    (n.frame for n in node.path_from_root()))
        exclusive = {name: aggregate.state()
                     for name, aggregate in node.exclusive.items() if aggregate.count}
        inclusive = {name: (aggregate.count, aggregate.total)
                     for name, aggregate in node.inclusive.items() if aggregate.count}
        snapshot[key] = (exclusive, inclusive)
    return snapshot


class TestShardMergeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(observations_strategy)
    def test_merged_sharded_tree_matches_single_tree(self, observations):
        single = _build_single(observations)
        sharded = _build_sharded(observations)
        merged = sharded.merged()

        assert merged.node_count() == single.node_count()
        assert sharded.insertions == single.insertions

        expected = _snapshot(single)
        actual = _snapshot(merged)
        assert set(actual) == set(expected)
        for key, (exclusive, inclusive) in expected.items():
            actual_exclusive, actual_inclusive = actual[key]
            assert set(actual_exclusive) == set(exclusive)
            for name, state in exclusive.items():
                count, total, minimum, maximum, mean, m2 = state
                a_count, a_total, a_min, a_max, a_mean, a_m2 = actual_exclusive[name]
                assert a_count == count
                assert a_total == pytest.approx(total, rel=1e-9, abs=1e-12)
                assert a_min == pytest.approx(minimum, rel=1e-9, abs=1e-12)
                assert a_max == pytest.approx(maximum, rel=1e-9, abs=1e-12)
                assert a_mean == pytest.approx(mean, rel=1e-9, abs=1e-12)
                assert a_m2 == pytest.approx(m2, rel=1e-7, abs=1e-9)
            assert set(actual_inclusive) == set(inclusive)
            for name, (count, total) in inclusive.items():
                assert actual_inclusive[name][0] == count
                assert actual_inclusive[name][1] == pytest.approx(total, rel=1e-9,
                                                                  abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(observations_strategy)
    def test_merge_order_is_irrelevant(self, observations):
        forward = _build_sharded(observations)
        backward = ShardedCallingContextTree("sharded")
        for tid, module, kernel, gpu_time in reversed(observations):
            shard = backward.shard_for_tid(tid)
            node = shard.insert(_path(tid, module, kernel))
            shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                        M.METRIC_KERNEL_COUNT: 1.0})
        assert forward.node_count() == backward.node_count()
        assert forward.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(
            backward.root.inclusive.sum(M.METRIC_GPU_TIME), rel=1e-9, abs=1e-12)


class TestMergeFrom:
    def test_union_creates_missing_and_merges_existing(self):
        left = _build_single([(1, "conv", "k0", 1.0)])
        right = _build_single([(1, "conv", "k0", 3.0), (2, "norm", "k1", 5.0)])
        mapping = left.merge_from(right)
        assert len(mapping) == right.node_count()
        # The returned mapping covers every donor node, root included.
        assert all(id(node) in mapping for node in right.all_nodes())
        by_name = left.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                         metric=M.METRIC_GPU_TIME)
        assert by_name["k0"] == pytest.approx(4.0)
        assert by_name["k1"] == pytest.approx(5.0)
        assert left.insertions == 3
        # The donor tree is untouched.
        assert right.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(8.0)

    def test_merge_invalidates_inclusive_view(self):
        left = _build_single([(1, "conv", "k0", 1.0)])
        assert left.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(1.0)
        left.merge_from(_build_single([(1, "conv", "k0", 2.0)]))
        assert left.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(3.0)


class TestShardLifecycle:
    def test_shard_handle_memoized_on_thread(self):
        registry = ThreadRegistry(MachineClock())
        tree = ShardedCallingContextTree("handles")
        shard = tree.shard_for(registry.main)
        assert tree.shard_for(registry.main) is shard
        assert registry.main.cct_shard == (tree, shard)
        # A different owner tree must not reuse the stale handle.
        other = ShardedCallingContextTree("handles")
        assert other.shard_for(registry.main) is not shard
        assert registry.main.cct_shard[0] is other

    def test_merged_view_cached_behind_generation(self):
        tree = _build_sharded([(1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0)])
        merged = tree.merged()
        assert tree.merged() is merged
        assert tree.merges == 1
        # Pure reads do not invalidate the cache...
        tree.node_count(), tree.kernels, tree.aggregate_by_name()
        assert tree.merges == 1
        # ...but mutating any shard does.
        shard = tree.shard_for_tid(1)
        shard.attribute(shard.kernels[0], M.METRIC_GPU_TIME, 4.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(7.0)
        assert tree.merges == 2

    def test_mutating_a_merged_view_node_is_rejected(self):
        # Nodes from the read API live in the merged cache, which is thrown
        # away on the next shard mutation — attributing into them would
        # silently lose the observation.
        tree = _build_sharded([(1, "conv", "k0", 1.0)])
        merged_kernel = tree.kernels[0]
        with pytest.raises(ValueError, match="merged query view"):
            tree.attribute(merged_kernel, M.METRIC_GPU_TIME, 5.0)
        with pytest.raises(ValueError, match="merged query view"):
            tree.attribute_many(merged_kernel, {M.METRIC_GPU_TIME: 5.0})
        # Shard-owned nodes (including the degenerate default shard's) work.
        shard_node = tree.shard_for_tid(1).kernels[0]
        tree.attribute(shard_node, M.METRIC_GPU_TIME, 5.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(6.0)

    def test_mutating_a_stale_merged_view_node_is_rejected(self):
        # Nodes from a materialization discarded by a *structural* rebuild
        # are dead: writing into their tree would lose the observation
        # silently.  (Metric-only changes refresh the view in place and keep
        # node identities — see test_metric_only_changes_refresh_in_place.)
        tree = _build_sharded([(1, "conv", "k0", 1.0)])
        stale_node = tree.kernels[0]
        shard = tree.shard_for_tid(1)
        shard.insert(_path(1, "conv", "k9"))  # structural change → rebuild
        assert tree.kernels[0] is not stale_node  # view was rebuilt
        with pytest.raises(ValueError, match="merged query view"):
            tree.attribute(stale_node, M.METRIC_GPU_TIME, 5.0)

    def test_metric_only_changes_refresh_in_place(self):
        # Attribution into already-merged contexts refreshes the cached
        # merged view in place: node identities survive, only the affected
        # nodes are recombined, and values stay equivalent to a rebuild.
        tree = _build_sharded([(1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0)])
        merged = tree.merged()
        kernel = tree.kernels[0]
        shard = tree.shard_for_tid(1)
        shard.attribute(shard.kernels[0], M.METRIC_GPU_TIME, 4.0)
        shard.attribute_many(shard.kernels[0], {M.METRIC_KERNEL_COUNT: 1.0})
        assert tree.merged() is merged
        assert tree.refreshes == 1 and tree.merges == 2
        assert tree.kernels[0] is kernel  # identity preserved
        assert kernel.exclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(5.0)
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(7.0)
        # A structural change still rebuilds from scratch.
        shard.insert(_path(1, "conv", "k9"))
        assert tree.merged() is not merged
        assert tree.refreshes == 1 and tree.merges == 3

    def test_refresh_matches_rebuild_under_interleaving(self):
        observations = [(1, "conv", "k0", 0.5), (2, "norm", "k1", 1.5),
                        (3, "linear", "k0", 2.5)]
        tree = _build_sharded(observations)
        reference = _build_sharded(observations)
        tree.merged()  # prime the cache so later changes refresh in place
        extra = [(1, "conv", "k0", 0.25), (2, "norm", "k1", 0.75),
                 (1, "conv", "k0", 1.25)]
        for tid, module, kernel, gpu_time in extra:
            for target in (tree, reference):
                shard = target.shard_for_tid(tid)
                node = shard.insert(_path(tid, module, kernel))
                shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                            M.METRIC_KERNEL_COUNT: 1.0})
            _ = tree.root.inclusive  # query between mutations
        assert tree.refreshes >= 1
        expected = _snapshot(reference.merged())
        actual = _snapshot(tree.merged())
        assert set(actual) == set(expected)
        for key, (exclusive, inclusive) in expected.items():
            actual_exclusive, actual_inclusive = actual[key]
            assert set(actual_exclusive) == set(exclusive)
            for name, state in exclusive.items():
                assert actual_exclusive[name][0] == state[0]
                assert actual_exclusive[name][1] == pytest.approx(state[1], rel=1e-9)
            for name, (count, total) in inclusive.items():
                assert actual_inclusive[name][0] == count
                assert actual_inclusive[name][1] == pytest.approx(total, rel=1e-9)

    def test_propagations_monotonic_across_rebuilds(self):
        tree = _build_sharded([(1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0)])
        tree.root.inclusive.sum(M.METRIC_GPU_TIME)  # materialize view 1
        first = tree.propagations
        assert first > 0
        shard = tree.shard_for_tid(1)
        shard.attribute(shard.kernels[0], M.METRIC_GPU_TIME, 1.0)
        tree.root.inclusive.sum(M.METRIC_GPU_TIME)  # view 2 (view 1 retired)
        assert tree.propagations >= first * 2

    def test_overhead_probes_do_not_materialize_the_merged_view(self):
        tree = _build_sharded([(1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0)])
        assert tree.stored_node_count() > 0
        assert tree.stored_size_bytes() > 0
        assert tree.merges == 0
        # The shard-summed count exceeds the merged count only by the
        # per-shard roots that union into one.
        assert tree.stored_node_count() == tree.node_count() + tree.shard_count() - 1

    def test_degenerate_single_shard_api(self):
        tree = ShardedCallingContextTree("degenerate")
        node = tree.insert(_path(1, "conv", "k0"))
        tree.attribute(node, M.METRIC_GPU_TIME, 0.5)
        tree.attribute_many(node, {M.METRIC_KERNEL_COUNT: 1.0})
        assert tree.shard_count() == 1
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(0.5)
        assert tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT) == 1.0
        single = _build_single([(1, "conv", "k0", 0.5)])
        assert tree.node_count() == single.node_count()


class TestShardedPersistence:
    def _sharded(self):
        return _build_sharded([
            (1, "conv", "k0", 1.5), (2, "norm", "k1", 0.5), (3, "linear", "k0", 2.0),
        ])

    def test_columnar_roundtrip_preserves_shards_and_provenance(self, tmp_path):
        tree = self._sharded()
        database = ProfileDatabase(tree)
        path = database.save(str(tmp_path / "sharded.json"),
                             format=ProfileDatabase.FORMAT_COLUMNAR)
        restored = ProfileDatabase.load(path)
        assert isinstance(restored.tree, ShardedCallingContextTree)
        assert restored.tree.shard_count() == 3
        names = {entry["thread_name"] for entry in restored.tree.shard_provenance()}
        assert names == {"main", "backward-0", "worker-0"}
        assert restored.total_gpu_time() == pytest.approx(database.total_gpu_time(),
                                                          rel=1e-9)
        assert restored.top_kernels(3) == database.top_kernels(3)
        assert restored.node_count() == database.node_count()

    def test_json_format_flattens_to_merged_view(self, tmp_path):
        tree = self._sharded()
        database = ProfileDatabase(tree)
        path = database.save(str(tmp_path / "flat.json"))
        restored = ProfileDatabase.load(path)
        assert isinstance(restored.tree, CallingContextTree)
        assert restored.node_count() == database.node_count()
        assert restored.total_gpu_time() == pytest.approx(database.total_gpu_time(),
                                                          rel=1e-9)


def _run_training(engine, profiler, iterations=2):
    with engine, profiler.profile():
        model = modules.Sequential(modules.Conv2d(3, 8), modules.ReLU(), name="net")
        head = modules.Linear(8, 4, name="head")
        loss_fn = modules.CrossEntropyLoss()
        optimizer = modules.SGD(model.parameters() + head.parameters())
        for _ in range(iterations):
            x = tensor((4, 3, 32, 32))
            y = tensor((4,), dtype="int64")
            features = model(x)
            pooled = F.avg_pool2d(features, kernel_size=features.shape[-1])
            flat = F.reshape(pooled, (pooled.shape[0], pooled.shape[1]))
            loss = loss_fn(head(flat), y)
            engine.backward(loss)
            optimizer.step()
            profiler.mark_iteration()
        engine.synchronize()
    return profiler.database


class TestShardedProfiling:
    def test_profiler_shards_per_thread(self):
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="sharded"))
        database = _run_training(engine, profiler)
        tree = database.tree
        assert isinstance(tree, ShardedCallingContextTree)
        # Main thread plus the dedicated backward thread, at minimum.
        assert tree.shard_count() >= 2
        kinds = {entry["thread_kind"] for entry in tree.shard_provenance()}
        assert THREAD_BACKWARD in kinds
        assert database.total_kernel_launches() == engine.kernel_launches
        assert database.total_gpu_time() > 0

    def test_sharded_equals_unsharded_end_to_end(self):
        sharded_engine = EagerEngine("a100")
        sharded = DeepContextProfiler(
            sharded_engine, ProfilerConfig(program_name="eq", sharded_cct=True))
        sharded_db = _run_training(sharded_engine, sharded)

        plain_engine = EagerEngine("a100")
        plain = DeepContextProfiler(
            plain_engine, ProfilerConfig(program_name="eq", sharded_cct=False))
        plain_db = _run_training(plain_engine, plain)

        assert isinstance(plain_db.tree, CallingContextTree)
        assert sharded_db.node_count() == plain_db.node_count()
        assert sharded_db.total_gpu_time() == pytest.approx(plain_db.total_gpu_time(),
                                                            rel=1e-9)
        assert sharded_db.total_cpu_time() == pytest.approx(plain_db.total_cpu_time(),
                                                            rel=1e-9)
        assert sharded_db.total_kernel_launches() == plain_db.total_kernel_launches()
        sharded_top = sharded_db.top_kernels(5)
        plain_top = plain_db.top_kernels(5)
        assert [row["kernel"] for row in sharded_top] == \
            [row["kernel"] for row in plain_top]
        for sharded_row, plain_row in zip(sharded_top, plain_top):
            assert sharded_row["gpu_time"] == pytest.approx(plain_row["gpu_time"],
                                                            rel=1e-9)


class TestZeroRowRegressions:
    def test_aggregate_by_name_keeps_zero_duration_kernels(self):
        tree = CallingContextTree("zero")
        node = tree.insert(_path(1, "conv", "instant_kernel"))
        tree.attribute_many(node, {M.METRIC_GPU_TIME: 0.0, M.METRIC_KERNEL_COUNT: 1.0})
        by_name = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                         metric=M.METRIC_GPU_TIME)
        assert "instant_kernel" in by_name
        assert by_name["instant_kernel"] == 0.0
        # Metrics that were never observed still produce no row.
        assert tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                      metric=M.METRIC_MEMCPY_BYTES) == {}

    def test_metric_set_as_dict_skips_zombie_zero_aggregates(self):
        stale = MetricSet()
        stale.add(M.METRIC_GPU_TIME, 1.0)
        stale.add(M.METRIC_CPU_TIME, 2.0)
        fresh = MetricSet()
        fresh.add(M.METRIC_CPU_TIME, 3.0)
        # reset_to keeps the gpu_time aggregate object alive but zeroed...
        stale.reset_to(fresh)
        assert stale.get(M.METRIC_GPU_TIME).count == 0
        # ...and serialization must not leak the zombie.
        encoded = stale.as_dict()
        assert M.METRIC_GPU_TIME not in encoded
        assert encoded[M.METRIC_CPU_TIME]["sum"] == pytest.approx(3.0)

    def test_tree_roundtrip_drops_count_zero_inclusive_entries(self):
        tree = CallingContextTree("legacy")
        node = tree.insert(_path(1, "conv", "k0"))
        tree.attribute(node, M.METRIC_GPU_TIME, 1.0)
        payload = tree.to_dict()
        # A legacy file with a zombie count-0 aggregate in the root's
        # inclusive payload (written before as_dict skipped them).
        payload["root"]["inclusive"]["stale_metric"] = {
            "count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0,
        }
        restored = CallingContextTree.from_dict(payload)
        reencoded = restored.to_dict()
        assert "stale_metric" not in reencoded["root"]["inclusive"]
        assert reencoded["root"]["inclusive"][M.METRIC_GPU_TIME]["sum"] == \
            pytest.approx(1.0)


class TestThreadRegistryIndex:
    def test_find_is_dict_backed_and_correct(self):
        registry = ThreadRegistry(MachineClock())
        created = [registry.create(f"worker-{i}") for i in range(5)]
        assert registry.find(registry.main.tid) is registry.main
        for thread in created:
            assert registry.find(thread.tid) is thread
        assert registry.find(10_000) is None
