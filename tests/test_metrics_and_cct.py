"""Tests for metric aggregation and the calling context tree."""

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.core import CallingContextTree, MetricAggregate, MetricSet
from repro.core import metrics as M
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    native_frame,
    python_frame,
    root_frame,
    thread_frame,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestMetricAggregate:
    def test_empty_aggregate(self):
        aggregate = MetricAggregate()
        assert aggregate.count == 0 and aggregate.sum == 0.0
        assert aggregate.mean == 0.0 and aggregate.std == 0.0
        assert aggregate.min == 0.0 and aggregate.max == 0.0

    def test_single_value(self):
        aggregate = MetricAggregate()
        aggregate.add(3.5)
        assert aggregate.count == 1 and aggregate.sum == 3.5
        assert aggregate.min == aggregate.max == aggregate.mean == 3.5
        assert aggregate.std == 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_statistics_module(self, values):
        aggregate = MetricAggregate()
        for value in values:
            aggregate.add(value)
        assert aggregate.count == len(values)
        assert aggregate.sum == pytest.approx(sum(values), rel=1e-9, abs=1e-6)
        assert aggregate.mean == pytest.approx(statistics.fmean(values), rel=1e-9, abs=1e-6)
        assert aggregate.min == min(values) and aggregate.max == max(values)
        expected_std = statistics.pstdev(values)
        assert aggregate.std == pytest.approx(expected_std, rel=1e-6, abs=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.lists(finite_floats, min_size=1, max_size=50))
    def test_merge_equals_sequential(self, first, second):
        merged = MetricAggregate()
        for value in first:
            merged.add(value)
        other = MetricAggregate()
        for value in second:
            other.add(value)
        merged.merge(other)

        sequential = MetricAggregate()
        for value in first + second:
            sequential.add(value)
        assert merged.count == sequential.count
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-6)
        assert merged.std == pytest.approx(sequential.std, rel=1e-6, abs=1e-6)

    def test_merge_into_empty(self):
        empty, filled = MetricAggregate(), MetricAggregate()
        filled.add(2.0)
        filled.add(4.0)
        empty.merge(filled)
        assert empty.count == 2 and empty.mean == 3.0

    def test_dict_roundtrip(self):
        aggregate = MetricAggregate()
        for value in (1.0, 2.0, 6.0):
            aggregate.add(value)
        restored = MetricAggregate.from_dict(aggregate.as_dict())
        assert restored.count == 3
        assert restored.mean == pytest.approx(aggregate.mean)
        assert restored.std == pytest.approx(aggregate.std)


class TestMetricSet:
    def test_add_and_query(self):
        metric_set = MetricSet()
        metric_set.add("gpu_time", 0.5)
        metric_set.add("gpu_time", 1.5)
        assert metric_set.sum("gpu_time") == 2.0
        assert metric_set.count("gpu_time") == 2
        assert "gpu_time" in metric_set and "cpu_time" not in metric_set
        assert metric_set.sum("missing") == 0.0

    def test_merge(self):
        a, b = MetricSet(), MetricSet()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 5.0)
        a.merge(b)
        assert a.sum("x") == 3.0 and a.sum("y") == 5.0

    def test_size_estimate_grows_with_metrics(self):
        metric_set = MetricSet()
        empty = metric_set.approximate_size_bytes()
        metric_set.add("a", 1.0)
        metric_set.add("b", 1.0)
        assert metric_set.approximate_size_bytes() > empty


def _make_path(module: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame(), thread_frame("main", 1),
        python_frame("train.py", 12, "train_step"),
        framework_frame(module),
        native_frame(f"at::native::{module}", "libtorch_cuda.so", hash(module) % 4096),
        gpu_kernel_frame(kernel),
    ])


class TestCallingContextTree:
    def test_insert_collapses_identical_paths(self):
        tree = CallingContextTree()
        first = tree.insert(_make_path("aten::conv2d", "conv_kernel"))
        second = tree.insert(_make_path("aten::conv2d", "conv_kernel"))
        assert first is second
        assert tree.insertions == 2

    def test_different_leaves_share_prefix(self):
        tree = CallingContextTree()
        a = tree.insert(_make_path("aten::conv2d", "conv_kernel"))
        b = tree.insert(_make_path("aten::conv2d", "bias_kernel"))
        assert a is not b
        assert a.parent is b.parent

    def test_attribute_propagates_to_root(self):
        tree = CallingContextTree()
        node = tree.insert(_make_path("aten::relu", "relu_kernel"))
        tree.attribute(node, M.METRIC_GPU_TIME, 0.25)
        for ancestor in node.path_from_root():
            assert ancestor.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(0.25)
        assert node.exclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(0.25)
        assert tree.root.exclusive.sum(M.METRIC_GPU_TIME) == 0.0

    def test_traversals_and_selectors(self):
        tree = CallingContextTree()
        tree.insert_and_attribute(_make_path("aten::conv2d", "conv_kernel"), {"gpu_time": 1.0})
        tree.insert_and_attribute(_make_path("aten::relu", "relu_kernel"), {"gpu_time": 0.5})
        assert tree.node_count() == len(list(tree.nodes()))
        assert len(list(tree.bfs())) == tree.node_count()
        assert {node.name for node in tree.kernels} == {"conv_kernel", "relu_kernel"}
        assert {node.name for node in tree.operators} == {"aten::conv2d", "aten::relu"}
        assert len(list(tree.leaves())) == 2
        assert tree.max_depth() >= 5

    def test_aggregate_by_name_merges_contexts(self):
        tree = CallingContextTree()
        for module in ("aten::conv2d", "aten::linear"):
            node = tree.insert(_make_path(module, "shared_kernel"))
            tree.attribute(node, M.METRIC_GPU_TIME, 1.0)
        totals = tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
        assert totals == {"shared_kernel": pytest.approx(2.0)}

    def test_callpath_roundtrip_from_node(self):
        tree = CallingContextTree()
        node = tree.insert(_make_path("aten::relu", "relu_kernel"))
        path = node.callpath()
        assert path.leaf.name == "relu_kernel"
        assert path.depth == node.depth + 1

    def test_serialization_roundtrip(self):
        tree = CallingContextTree()
        node = tree.insert(_make_path("aten::conv2d", "conv_kernel"))
        tree.attribute(node, M.METRIC_GPU_TIME, 0.125)
        tree.attribute(node, M.METRIC_KERNEL_COUNT, 1.0)
        restored = CallingContextTree.from_dict(tree.to_dict())
        assert restored.node_count() == tree.node_count()
        assert restored.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(0.125)
        restored_kernels = restored.kernels
        assert restored_kernels[0].frame.name == "conv_kernel"

    def test_size_estimate_scales_with_nodes(self):
        small, large = CallingContextTree(), CallingContextTree()
        small.insert(_make_path("aten::relu", "k"))
        for index in range(50):
            large.insert(_make_path(f"aten::op{index}", f"k{index}"))
        assert large.approximate_size_bytes() > small.approximate_size_bytes()

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
                    min_size=1, max_size=100))
    def test_invariant_root_inclusive_equals_sum_of_exclusive(self, observations):
        tree = CallingContextTree()
        for module, value in observations:
            node = tree.insert(_make_path(f"aten::{module}", f"{module}_kernel"))
            tree.attribute(node, M.METRIC_GPU_TIME, value)
        total_exclusive = sum(node.exclusive.sum(M.METRIC_GPU_TIME) for node in tree.nodes())
        assert tree.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(total_exclusive)
        # Parent inclusive >= child inclusive for every edge (monotonicity).
        for node in tree.nodes():
            for child in node.children.values():
                assert node.inclusive.sum(M.METRIC_GPU_TIME) >= \
                    child.inclusive.sum(M.METRIC_GPU_TIME) - 1e-9
        # Insertions never shrink under collapsing.
        assert tree.node_count() <= 2 + 4 * 4 + len(observations) * 0 + 4 * 4
