"""Fault-injection suite: scripted failures against the durability promises.

The property under test, from the durability hardening work: for any
scripted crash, torn write, ENOSPC or bit flip during a streamed run,
recovery yields exactly the last intact sealed checkpoint — bit-for-bit
equal Welford states — or a *named* error (``ProfileCorruptionError`` /
``ProfileFormatError``), never a silently wrong profile.  The
:mod:`repro.core.faultfs` harness makes the failure points deterministic,
so the crash sweep here literally visits every write the workload performs.
"""

import errno
import os
import struct

import pytest

from repro.core import (
    FORMAT_BINARY_V1,
    ProfileCorruptionError,
    ProfileDatabase,
    ProfileFormatError,
    StreamingProfileWriter,
    backend_for,
    recover_profile,
)
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.core.faultfs import (
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    crash_at_write,
    enospc_at_write,
    flip_bit,
    short_read,
    torn_write,
    truncate_file,
)
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import ProfileStore

THREAD_NAMES = {1: "main", 2: "backward-0", 3: "worker-0"}

#: The deterministic streamed workload: observation rounds, one checkpoint
#: after each.  Three shards, repeated paths, metric-only updates — enough
#: to exercise fresh frame tables, carried-forward blocks and compaction.
ROUNDS = [
    [(1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0)],
    [(1, "linear", "k0", 0.5), (3, "conv", "k1", 4.0)],
    [(2, "conv", "k0", 3.5), (1, "conv", "k0", 2.25)],
]


def _path(tid: int, module: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame("fault"), thread_frame(THREAD_NAMES[tid], tid),
        python_frame("train.py", 10 + tid, "train_step"),
        framework_frame(f"aten::{module}"),
        gpu_kernel_frame(kernel),
    ])


def _observe(tree: ShardedCallingContextTree, tid: int, module: str,
             kernel: str, gpu_time: float) -> None:
    shard = tree.shard_for_tid(tid, thread_name=THREAD_NAMES[tid])
    node = shard.insert(_path(tid, module, kernel))
    shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                M.METRIC_KERNEL_COUNT: 1.0})


def _state_snapshot(tree):
    """Per-shard, path-keyed exclusive aggregate states (exact tuples)."""
    shards = tree.shards() if hasattr(tree, "shards") else {0: tree}
    snapshot = {}
    for tid, shard in shards.items():
        for node in shard.all_nodes():
            key = (tid,) + tuple(n.frame.identity()
                                 for n in node.path_from_root())
            states = {name: aggregate.state()
                      for name, aggregate in node.exclusive.items()
                      if aggregate.count}
            if states:
                snapshot[key] = states
    return snapshot


def _recovered_snapshot(database):
    tree = database.tree
    hydrated = tree.hydrate() if hasattr(tree, "hydrate") else tree
    return _state_snapshot(hydrated)


def _run_workload(directory, plan, compact=True):
    """Drive the workload under ``plan``; ``(path, sealed, crashed)``.

    ``sealed[i]`` is the live tree's exact state snapshot at the i-th
    completed seal; ``crashed`` says an injected fault killed the run.
    The writer is constructed *inside* the injector so its append handle
    is the faulted one.
    """
    path = os.path.join(str(directory), "stream.cctb")
    tree = ShardedCallingContextTree("fault")
    sealed = []
    crashed = False
    with FaultInjector(directory, plan):
        try:
            writer = StreamingProfileWriter(ProfileDatabase(tree), path)
            for round_ in ROUNDS:
                for observation in round_:
                    _observe(tree, *observation)
                writer.checkpoint()
                sealed.append(_state_snapshot(tree))
            writer.close(compact=compact)
        except InjectedCrash:
            crashed = True
    return path, sealed, crashed


def _assert_recovers_last_seal(path, sealed):
    """The core durability property at one crash point."""
    if sealed:
        assert os.path.exists(path), \
            "a completed seal promoted the stream, the file must exist"
        restored = recover_profile(path)
        assert _recovered_snapshot(restored) == sealed[-1]
    else:
        # Crash before the first seal completed: the target path was never
        # promoted — recovery is a named error, not a wrong profile.
        with pytest.raises((ProfileFormatError, OSError)):
            recover_profile(path)


class TestCrashSweep:
    def test_crash_at_every_write_recovers_the_last_seal(self, tmp_path):
        dry_dir = tmp_path / "dry"
        dry_dir.mkdir()
        dry = FaultPlan()
        path, sealed, crashed = _run_workload(dry_dir, dry)
        assert not crashed and len(sealed) == len(ROUNDS)
        assert _recovered_snapshot(recover_profile(path)) == sealed[-1]
        total_writes = dry.counts["write"]
        assert 10 < total_writes < 200  # sweep domain stays tractable

        for k in range(1, total_writes + 1):
            workdir = tmp_path / f"crash{k}"
            workdir.mkdir()
            plan = FaultPlan([crash_at_write(k)])
            path, sealed, crashed = _run_workload(workdir, plan)
            assert crashed and plan.tripped, f"write #{k} never happened"
            assert plan.dead
            _assert_recovers_last_seal(path, sealed)

    def test_torn_writes_recover_the_last_seal(self, tmp_path):
        dry_dir = tmp_path / "dry"
        dry_dir.mkdir()
        dry = FaultPlan()
        _run_workload(dry_dir, dry)
        total_writes = dry.counts["write"]

        points = sorted({2, total_writes // 3, total_writes // 2,
                         total_writes - 1, total_writes})
        for k in points:
            workdir = tmp_path / f"torn{k}"
            workdir.mkdir()
            plan = FaultPlan([torn_write(k, keep=1 + k % 7)])
            path, sealed, crashed = _run_workload(workdir, plan)
            assert crashed and plan.tripped
            _assert_recovers_last_seal(path, sealed)

    def test_dead_writer_stays_dead(self, tmp_path):
        """After a crash every further I/O on injected files fails too."""
        workdir = tmp_path / "dead"
        workdir.mkdir()
        plan = FaultPlan([crash_at_write(1)])
        with FaultInjector(workdir, plan):
            with pytest.raises(InjectedCrash):
                StreamingProfileWriter(
                    ProfileDatabase(ShardedCallingContextTree("fault")),
                    os.path.join(str(workdir), "s.cctb"))
            with pytest.raises(InjectedCrash):
                with open(os.path.join(str(workdir), "other.bin"),
                          "wb") as handle:
                    handle.write(b"x")


class TestEnospc:
    def test_enospc_checkpoint_is_retryable(self, tmp_path):
        # Measure how many writes the first two checkpoints take, then
        # script ENOSPC two writes into the third.
        dry_dir = tmp_path / "dry"
        dry_dir.mkdir()
        dry = FaultPlan()
        per_checkpoint = []
        with FaultInjector(dry_dir, dry):
            tree = ShardedCallingContextTree("fault")
            writer = StreamingProfileWriter(
                ProfileDatabase(tree), os.path.join(str(dry_dir), "s.cctb"))
            for round_ in ROUNDS:
                for observation in round_:
                    _observe(tree, *observation)
                writer.checkpoint()
                per_checkpoint.append(dry.counts["write"])
            writer.close(compact=False)

        workdir = tmp_path / "enospc"
        workdir.mkdir()
        path = os.path.join(str(workdir), "stream.cctb")
        plan = FaultPlan([enospc_at_write(per_checkpoint[1] + 2, keep=3)])
        tree = ShardedCallingContextTree("fault")
        sealed = []
        with FaultInjector(workdir, plan):
            writer = StreamingProfileWriter(ProfileDatabase(tree), path)
            for round_ in ROUNDS[:2]:
                for observation in round_:
                    _observe(tree, *observation)
                writer.checkpoint()
                sealed.append(_state_snapshot(tree))
            for observation in ROUNDS[2]:
                _observe(tree, *observation)
            with pytest.raises(OSError) as excinfo:
                writer.checkpoint()
            assert excinfo.value.errno == errno.ENOSPC
            assert not isinstance(excinfo.value, InjectedCrash)
            assert plan.tripped and not plan.dead

            # Mid-failure the file still recovers at the second seal …
            assert _recovered_snapshot(recover_profile(path)) == sealed[-1]

            # … and once space frees up the same writer seals cleanly.
            stats = writer.checkpoint()
            assert stats.seal == 2
            final = _state_snapshot(tree)
            writer.close(compact=True)
        assert _recovered_snapshot(ProfileDatabase.load(path)) == final


class TestShortReads:
    def _small_database(self):
        tree = ShardedCallingContextTree("fault")
        for observation in ROUNDS[0]:
            _observe(tree, *observation)
        return ProfileDatabase(tree)

    def test_short_read_during_detection_is_a_named_error(self, tmp_path):
        path = str(tmp_path / "p.cctb")
        backend_for(FORMAT_BINARY_V1).save(self._small_database(), path)
        plan = FaultPlan([short_read(1, keep=4)])
        with FaultInjector(tmp_path, plan):
            with pytest.raises(ProfileFormatError):
                ProfileDatabase.load(path)
        assert plan.tripped
        ProfileDatabase.load(path)  # the file itself was never harmed

    def test_short_read_during_ingest_is_caught_by_scrub(self, tmp_path):
        """A truncated digest read mislabels the content address; the store
        detects the mismatch post hoc and quarantines the run."""
        root = tmp_path / "store"
        store = ProfileStore(str(root))
        plan = FaultPlan([short_read(1, keep=0, match=".ingest-")])
        with FaultInjector(root, plan):
            record = store.ingest(self._small_database(), workload="resnet")
        assert plan.tripped

        message = store.verify_run(record.run_id)
        assert message is not None and "content address" in message
        report = store.scrub()
        assert [run_id for run_id, _ in report.quarantined] == [record.run_id]
        assert not store.get(record.run_id).healthy


class TestIngestCrash:
    def _database(self, value):
        tree = ShardedCallingContextTree("fault")
        _observe(tree, 1, "conv", "k0", value)
        return ProfileDatabase(tree)

    def test_crash_during_ingest_leaves_catalog_unchanged(self, tmp_path):
        root = tmp_path / "store"
        store = ProfileStore(str(root))
        first = store.ingest(self._database(1.0), workload="resnet")

        plan = FaultPlan([crash_at_write(1, match=".ingest-")])
        with FaultInjector(root, plan):
            with pytest.raises(InjectedCrash):
                store.ingest(self._database(2.0), workload="bert")
        assert plan.tripped

        reloaded = ProfileStore(str(root))
        assert [record.run_id for record in reloaded.runs()] == [first.run_id]
        leftovers = [name for name in os.listdir(root / "profiles")
                     if name.startswith(".ingest")]
        assert leftovers == []

    def test_enospc_during_catalog_write_is_retryable(self, tmp_path):
        """The profile file lands before the catalog write; a failed catalog
        write loses the record but re-ingest restores it (same digest)."""
        root = tmp_path / "store"
        store = ProfileStore(str(root))
        plan = FaultPlan([enospc_at_write(1, match="catalog.json")])
        with FaultInjector(root, plan):
            with pytest.raises(OSError) as excinfo:
                store.ingest(self._database(1.0), workload="resnet")
        assert excinfo.value.errno == errno.ENOSPC
        assert plan.tripped

        reloaded = ProfileStore(str(root))
        assert len(reloaded) == 0  # record lost with the failed write …
        record = reloaded.ingest(self._database(1.0), workload="resnet")
        assert len(reloaded) == 1  # … and re-ingest lands it again
        assert reloaded.verify_run(record.run_id) is None


class TestBitRot:
    def _sealed_profile(self, directory):
        """Run the workload cleanly and compact; expected final snapshot."""
        path, sealed, crashed = _run_workload(directory, FaultPlan())
        assert not crashed
        return path, sealed[-1]

    def test_every_flipped_bit_in_the_block_region_is_detected(
            self, tmp_path):
        workdir = tmp_path / "rot"
        workdir.mkdir()
        path, _expected = self._sealed_profile(workdir)
        with open(path, "rb") as handle:
            pristine = handle.read()
        toc_offset, _toc_length, _magic = struct.unpack("<QQ8s",
                                                        pristine[-24:])
        target = str(tmp_path / "flipped.cctb")
        # After compaction every byte in [8, toc_offset) belongs to a
        # checksummed block; a flip anywhere in there must be *detected* by
        # a full read, never silently aggregated.
        for offset in range(8, toc_offset, 7):
            with open(target, "wb") as handle:
                handle.write(pristine)
            flip_bit(target, offset, bit=offset % 8)
            with pytest.raises(ProfileCorruptionError):
                database = ProfileDatabase.load(target)
                view = database.tree
                for metric in view.metric_names():
                    view.total_metric(metric)
                view.hydrate()

    def test_corruption_error_names_file_block_and_offset(self, tmp_path):
        workdir = tmp_path / "rot"
        workdir.mkdir()
        path, _expected = self._sealed_profile(workdir)
        with open(path, "rb") as handle:
            pristine = handle.read()
        toc_offset, _toc_length, _magic = struct.unpack("<QQ8s",
                                                        pristine[-24:])
        flip_bit(path, toc_offset - 1)  # last byte of the last block
        with pytest.raises(ProfileCorruptionError) as excinfo:
            database = ProfileDatabase.load(path)
            view = database.tree
            for metric in view.metric_names():
                view.total_metric(metric)
            view.hydrate()
        message = str(excinfo.value)
        assert os.path.basename(path) in message or path in message
        assert "offset" in message and "CRC-32" in message

    def test_flip_in_the_tail_magic_is_a_named_error(self, tmp_path):
        workdir = tmp_path / "rot"
        workdir.mkdir()
        path, _expected = self._sealed_profile(workdir)
        flip_bit(path, os.path.getsize(path) - 3)  # inside the tail magic
        with pytest.raises(ProfileFormatError):
            ProfileDatabase.load(path)
        with pytest.raises(ProfileFormatError):
            recover_profile(path)  # single seal, nothing older to fall to

    def test_rotted_final_toc_recovers_the_previous_seal(self, tmp_path):
        workdir = tmp_path / "rot"
        workdir.mkdir()
        # Keep every seal (no compaction) so there is something to fall to.
        path, sealed, crashed = _run_workload(workdir, FaultPlan(),
                                              compact=False)
        assert not crashed
        with open(path, "rb") as handle:
            handle.seek(-24, os.SEEK_END)
            toc_offset, _toc_length, _magic = struct.unpack(
                "<QQ8s", handle.read(24))
        flip_bit(path, toc_offset)  # breaks the final (closing) seal's TOC
        with pytest.raises(ProfileFormatError):
            ProfileDatabase.load(path)
        restored = recover_profile(path)
        # The closing seal (number len(ROUNDS)) is rotten; recovery lands on
        # the last round's seal, whose state equals the final live state.
        assert restored.tree._toc["seal"] == len(ROUNDS) - 1
        assert _recovered_snapshot(restored) == sealed[-1]

    def test_truncation_mid_tail_recovers_the_previous_seal(self, tmp_path):
        workdir = tmp_path / "rot"
        workdir.mkdir()
        path, sealed, crashed = _run_workload(workdir, FaultPlan(),
                                              compact=False)
        assert not crashed
        truncate_file(path, os.path.getsize(path) - 10)  # tear the tail
        restored = recover_profile(path)
        assert restored.tree._toc["seal"] == len(ROUNDS) - 1
        assert _recovered_snapshot(restored) == sealed[-1]


class TestInjectorHygiene:
    def test_files_outside_the_root_are_untouched(self, tmp_path):
        inside = tmp_path / "inside"
        inside.mkdir()
        outside = tmp_path / "outside.txt"
        plan = FaultPlan([crash_at_write(1)])
        with FaultInjector(inside, plan):
            with open(outside, "w") as handle:
                handle.write("fine")
        assert outside.read_text() == "fine"
        assert not plan.tripped and not plan.counts

    def test_injector_is_not_reentrant(self, tmp_path):
        injector = FaultInjector(tmp_path, FaultPlan())
        with injector:
            with pytest.raises(RuntimeError):
                injector.__enter__()

    def test_open_is_restored_after_exit(self, tmp_path):
        import builtins
        original = builtins.open
        with FaultInjector(tmp_path, FaultPlan()):
            assert builtins.open is not original
        assert builtins.open is original

    def test_unfired_faults_are_visible(self, tmp_path):
        plan = FaultPlan([crash_at_write(10_000)])
        with FaultInjector(tmp_path, plan):
            with open(tmp_path / "f.bin", "wb") as handle:
                handle.write(b"data")
        assert plan.counts["write"] == 1
        assert not plan.tripped and not plan.dead
