"""Tests for tensors, the operator registry and the kernel plans of key operators."""

import pytest
from hypothesis import given, strategies as st

from repro.framework import registry
from repro.framework.ops import OpCall
from repro.framework.tensor import (
    CHANNELS_FIRST,
    CHANNELS_LAST,
    conv_output_shape,
    dtype_size,
    matmul_output_shape,
    parameter,
    tensor,
)
from repro.gpu import A100, MI250
from repro.gpu import kernels as K


class TestTensor:
    def test_numel_and_nbytes(self):
        t = tensor((4, 8, 16), dtype="float16")
        assert t.numel == 512
        assert t.nbytes == 1024

    def test_scalar_numel(self):
        assert tensor(()).numel == 1

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            tensor((2,), dtype="float128")

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            tensor((2, -1))

    def test_like_inherits_and_overrides(self):
        t = tensor((2, 3), dtype="float16", memory_format=CHANNELS_LAST, requires_grad=True)
        clone = t.like(shape=(4, 4))
        assert clone.shape == (4, 4)
        assert clone.dtype == "float16" and clone.memory_format == CHANNELS_LAST
        assert clone.requires_grad

    def test_detach_clears_grad(self):
        t = parameter((2, 2))
        assert t.requires_grad and not t.detach().requires_grad

    def test_unique_ids(self):
        assert tensor((1,)).id != tensor((1,)).id

    @given(st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=4),
           st.sampled_from(["float32", "float16", "int64"]))
    def test_nbytes_matches_dtype_size(self, shape, dtype):
        t = tensor(shape, dtype=dtype)
        expected = dtype_size(dtype)
        for dim in shape:
            expected *= dim
        assert t.nbytes == expected

    def test_shape_helpers(self):
        assert matmul_output_shape((8, 16), (16, 4)) == (8, 4)
        assert matmul_output_shape((2, 8, 16), (16, 4)) == (2, 8, 4)
        with pytest.raises(ValueError):
            matmul_output_shape((8, 16), (8, 4))
        assert conv_output_shape((1, 3, 32, 32), 8, 3, stride=1, padding=1) == (1, 8, 32, 32)


def _call(op_name, inputs, attrs=None, device=A100, is_backward=False):
    op = registry.get(op_name)
    output = op.infer(list(inputs), dict(attrs or {}))
    return OpCall(op=op, inputs=list(inputs), attrs=dict(attrs or {}), output=output,
                  device=device, is_backward=is_backward)


class TestOperatorRegistry:
    def test_expected_operators_registered(self):
        names = registry.names()
        for expected in ("aten::conv2d", "aten::linear", "aten::index", "aten::index_select",
                         "aten::instance_norm", "aten::_to_copy", "aten::softmax",
                         "aten::nll_loss", "fused::cross_entropy", "optim::sgd_step",
                         "aten::scaled_dot_product_attention"):
            assert expected in names
        assert len(registry) > 40

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            registry.get("aten::not_an_op")

    def test_duplicate_registration_rejected(self):
        from repro.framework.ops import OpDef
        with pytest.raises(ValueError):
            registry.register(OpDef(name="aten::add", kind="elementwise",
                                    infer=lambda i, a: i[0].like(),
                                    forward_kernels=lambda call: []))


class TestKernelPlans:
    def test_conv2d_channels_first_adds_conversion_kernels(self):
        x = tensor((2, 8, 32, 32), memory_format=CHANNELS_FIRST)
        w = parameter((16, 8, 3, 3))
        call = _call("aten::conv2d", [x, w])
        names = [kernel.name for kernel in call.op.forward_kernels(call)]
        assert any("nchwToNhwc" in name for name in names)
        assert any("nhwcToNchw" in name for name in names)
        assert any("convolve" in name for name in names)

    def test_conv2d_channels_last_has_no_conversion(self):
        x = tensor((2, 8, 32, 32), memory_format=CHANNELS_LAST)
        w = parameter((16, 8, 3, 3))
        call = _call("aten::conv2d", [x, w])
        names = [kernel.name for kernel in call.op.forward_kernels(call)]
        assert not any("Nhwc" in name or "Nchw" in name for name in names)

    def test_conv2d_amd_uses_miopen_prefix(self):
        x = tensor((2, 8, 32, 32))
        w = parameter((16, 8, 3, 3))
        call = _call("aten::conv2d", [x, w], device=MI250)
        assert all(k.name.startswith("miopen::") or "bias" in k.name or "Nchw" not in k.name
                   for k in call.op.forward_kernels(call))

    def test_index_backward_is_deterministic_scatter(self):
        table = parameter((100_000, 64))
        indices = tensor((2048,), dtype="int64", duplicate_fraction=0.9)
        call = _call("aten::index", [table, indices], is_backward=True)
        kernels = call.op.backward_kernels(call)
        assert kernels[0].name == "indexing_backward_kernel"
        assert K.FLAG_DETERMINISTIC_SCATTER in kernels[0].flags
        assert kernels[0].serialization_factor > 30

    def test_index_select_backward_uses_atomics(self):
        table = parameter((100_000, 64))
        indices = tensor((2048,), dtype="int64", duplicate_fraction=0.9)
        call = _call("aten::index_select", [table, indices], is_backward=True)
        kernels = call.op.backward_kernels(call)
        assert K.FLAG_ATOMIC_SCATTER in kernels[0].flags
        assert kernels[0].serialization_factor < 4

    def test_to_copy_marks_dtype_conversion(self):
        x = tensor((4, 1024), dtype="float16")
        call = _call("aten::_to_copy", [x], {"dtype": "float32"})
        assert call.output.dtype == "float32"
        kernels = call.op.forward_kernels(call)
        assert K.FLAG_DTYPE_CONVERSION in kernels[0].flags

    def test_instance_norm_is_warp32_tuned(self):
        x = tensor((2, 32, 64, 64))
        call = _call("aten::instance_norm", [x])
        kernels = call.op.forward_kernels(call)
        assert all(K.FLAG_WARP32_TUNED in kernel.flags for kernel in kernels)
        assert all(kernel.threads_per_block == 512 for kernel in kernels)

    def test_linear_infers_output_and_launches_gemm(self):
        x = tensor((8, 128))
        w = parameter((256, 128))
        b = parameter((256,))
        call = _call("aten::linear", [x, w, b])
        assert call.output.shape == (8, 256)
        kernels = call.op.forward_kernels(call)
        assert any(K.FLAG_MATMUL in kernel.flags for kernel in kernels)
        assert len(kernels) == 2  # gemm + bias add

    def test_matmul_backward_launches_two_gemms(self):
        a, b = tensor((16, 32)), tensor((32, 64))
        call = _call("aten::matmul", [a, b], is_backward=True)
        assert len(call.op.backward_kernels(call)) == 2

    def test_view_ops_launch_no_kernels(self):
        x = tensor((4, 4))
        call = _call("aten::reshape", [x], {"shape": (16,)})
        assert call.output.shape == (16,)
        assert call.op.forward_kernels(call) == []

    def test_unfused_vs_fused_cross_entropy(self):
        logits = tensor((64, 32000))
        targets = tensor((64,), dtype="int64")
        fused = _call("fused::cross_entropy", [logits, targets])
        assert len(fused.op.forward_kernels(fused)) == 1
        assert fused.output.shape == (1,)

    def test_optimizer_step_one_kernel_per_parameter(self):
        params = [parameter((10, 10)) for _ in range(5)]
        call = _call("optim::sgd_step", params)
        assert len(call.op.forward_kernels(call)) == 5
        assert not call.op.differentiable

    def test_sdpa_kernel_plan(self):
        q = tensor((2, 8, 128, 64))
        call = _call("aten::scaled_dot_product_attention", [q, q.like(), q.like()])
        names = [kernel.name for kernel in call.op.forward_kernels(call)]
        assert names == ["attention_qk_gemm", "softmax_warp_forward", "attention_av_gemm"]
        assert len(call.op.backward_kernels(call)) == 3

    def test_every_operator_has_native_symbols(self):
        for name in registry.names():
            assert registry.get(name).native_symbols, name
