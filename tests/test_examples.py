"""Smoke tests: every bundled example script runs end to end."""

import os
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = [
    "quickstart.py",
    "dlrm_index_case_study.py",
    "cross_platform_unet.py",
    "jax_vs_pytorch.py",
    "custom_analysis.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    """Run each example in-process (fast) and check it prints something useful."""
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), f"missing example: {script}"
    monkeypatch.chdir(tmp_path)  # any artifacts land in a temp directory
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert len(output.splitlines()) > 3


def test_quickstart_writes_flamegraph_html(tmp_path):
    """The quickstart writes its HTML report next to the script; verify and clean up."""
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    # The subprocess doesn't inherit pytest.ini's `pythonpath = src`; export
    # it so the bare `pytest` invocation works without PYTHONPATH in the env.
    src_dir = os.path.abspath(os.path.join(EXAMPLES_DIR, os.pardir, "src"))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + os.pathsep + existing if existing else src_dir
    result = subprocess.run([sys.executable, path], capture_output=True, text=True,
                            timeout=120, env=env)
    assert result.returncode == 0, result.stderr
    html_path = os.path.join(EXAMPLES_DIR, "quickstart_profile.html")
    assert os.path.exists(html_path)
    with open(html_path, encoding="utf-8") as handle:
        assert "deepcontext-flamegraph" in handle.read()
    os.remove(html_path)
