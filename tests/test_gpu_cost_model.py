"""Tests for GPU device models and the analytic kernel cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu import A100, MI250, KernelCostModel, KernelSpec, available_devices, get_device
from repro.gpu import kernels as K


class TestDeviceModels:
    def test_lookup_by_name_and_vendor(self):
        assert get_device("a100") is A100
        assert get_device("NVIDIA") is A100
        assert get_device("mi250") is MI250
        assert get_device("amd") is MI250

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            get_device("h100")

    def test_table2_parameters(self):
        assert A100.compute_units == 108 and A100.warp_size == 32
        assert MI250.compute_units == 208 and MI250.warp_size == 64
        assert A100.memory_gb == 80 and MI250.memory_gb == 64
        assert MI250.memory_bandwidth > A100.memory_bandwidth

    def test_dtype_peaks(self):
        assert A100.peak_flops_for_dtype("float16") > A100.peak_flops_for_dtype("float32")

    def test_summary_rows(self):
        rows = [spec.summary_row() for spec in available_devices().values()]
        assert any("108 SMs" in row["GPU Specifications"] for row in rows)
        assert any("208 Compute Units" in row["GPU Specifications"] for row in rows)


def _kernel(**overrides) -> KernelSpec:
    defaults = dict(name="k", flops=1e9, bytes_accessed=1e8,
                    threads_per_block=256, num_blocks=1024)
    defaults.update(overrides)
    return KernelSpec(**defaults)


class TestKernelCostModel:
    def test_duration_is_positive_and_has_fixed_floor(self):
        model = KernelCostModel(A100)
        empty = KernelSpec(name="noop")
        assert model.duration(empty) >= A100.kernel_fixed_overhead_us * 1e-6

    def test_memory_bound_vs_compute_bound(self):
        model = KernelCostModel(A100)
        memory_bound = model.explain(_kernel(flops=1e6, bytes_accessed=1e9))
        compute_bound = model.explain(_kernel(flops=1e13, bytes_accessed=1e6))
        assert memory_bound.bound == "memory"
        assert compute_bound.bound == "compute"

    def test_small_grids_underutilise_the_device(self):
        model = KernelCostModel(A100)
        small = model.duration(_kernel(num_blocks=1))
        large = model.duration(_kernel(num_blocks=4096))
        assert small > large

    def test_warp_padding_penalises_odd_block_sizes(self):
        model = KernelCostModel(A100)
        aligned = model.explain(_kernel(threads_per_block=256))
        ragged = model.explain(_kernel(threads_per_block=257))
        assert ragged.warp_efficiency < aligned.warp_efficiency

    def test_deterministic_scatter_serializes(self):
        model = KernelCostModel(A100)
        base = _kernel()
        serialized = _kernel(serialization_factor=50.0)
        assert model.duration(serialized) > 20 * model.duration(base)

    def test_dtype_conversion_kernels_pay_constant_memory_cost(self):
        model = KernelCostModel(A100)
        plain = _kernel(flops=1e6)
        conversion = plain.with_flags(K.FLAG_DTYPE_CONVERSION)
        assert model.duration(conversion) > model.duration(plain)

    def test_warp32_tuned_kernel_slower_on_amd_not_on_nvidia(self):
        kernel = _kernel(threads_per_block=512, num_blocks=256,
                         flags=frozenset({K.FLAG_WARP32_TUNED, K.FLAG_NORMALIZATION}))
        untuned = _kernel(threads_per_block=512, num_blocks=256,
                          flags=frozenset({K.FLAG_NORMALIZATION}))
        nvidia = KernelCostModel(A100)
        amd = KernelCostModel(MI250)
        # No penalty on the warp-32 device.
        assert nvidia.duration(kernel) == pytest.approx(nvidia.duration(untuned))
        # Substantial penalty on the warp-64 device (case study 6.5).
        assert amd.duration(kernel) > 3 * amd.duration(untuned)

    def test_amd_has_more_bandwidth_for_streaming_kernels(self):
        streaming = _kernel(flops=0.0, bytes_accessed=4e9, num_blocks=1_000_000)
        assert KernelCostModel(MI250).duration(streaming) < KernelCostModel(A100).duration(streaming)

    def test_theoretical_occupancy_ctas(self):
        model = KernelCostModel(A100)
        assert model.theoretical_occupancy_ctas(_kernel(threads_per_block=1024)) == 2 * 108

    def test_with_flags_preserves_other_fields(self):
        kernel = _kernel(registers_per_thread=99)
        flagged = kernel.with_flags(K.FLAG_FUSED)
        assert flagged.registers_per_thread == 99
        assert K.FLAG_FUSED in flagged.flags and kernel.flags == frozenset()

    @given(st.floats(min_value=1e3, max_value=1e12),
           st.floats(min_value=1e3, max_value=1e12))
    def test_duration_monotonic_in_work(self, flops, bytes_accessed):
        model = KernelCostModel(A100)
        base = _kernel(flops=flops, bytes_accessed=bytes_accessed)
        bigger = _kernel(flops=flops * 2, bytes_accessed=bytes_accessed * 2)
        assert model.duration(bigger) >= model.duration(base)

    @given(st.integers(min_value=1, max_value=65535),
           st.integers(min_value=1, max_value=1024))
    def test_occupancy_and_efficiency_bounded(self, num_blocks, threads_per_block):
        model = KernelCostModel(MI250)
        kernel = _kernel(num_blocks=num_blocks, threads_per_block=threads_per_block)
        breakdown = model.explain(kernel)
        assert 0.0 < breakdown.occupancy <= 1.0
        assert 0.0 < breakdown.warp_efficiency <= 1.0
        assert breakdown.duration_seconds > 0.0
