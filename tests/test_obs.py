"""Tests for repro.obs: the self-telemetry layer (PR 9).

Covers the registry primitives (counters exact under threads, log2
histogram buckets, the Welford state matching the storage recurrence),
span nesting across threads and its Chrome ``trace_event`` round-trip,
the always-on catalog-lock statistics, the degradation-report schema,
the CLI renderer — and the acceptance path: one instrumented runner
invocation producing a Perfetto-loadable trace whose spans cover the
runner, streaming, storage and fleet layers with counters that match
independently derived values.
"""

import json
import os
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ProfilerConfig
from repro.core.storage import accumulate_name_state
from repro.experiments.runner import PROFILER_DEEPCONTEXT, run_named_workload
from repro.fleet import catalog_lock_stats, reset_catalog_lock_stats
from repro.fleet.store import CatalogLockTimeout, _CatalogLock
from repro.obs import (BUCKET_BASE, BUCKET_COUNT, SNAPSHOT_VERSION, TELEMETRY,
                       HealthTimeSeries, Histogram, Telemetry, bucket_index,
                       bucket_upper_bound, diff_snapshots, iter_span_children)
from repro.obs.cli import main as obs_main


@pytest.fixture(autouse=True)
def _quiesce_global_telemetry():
    """Every test leaves the process-wide registry disabled and empty."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


# ---------------------------------------------------------------------------
# Buckets and histograms
# ---------------------------------------------------------------------------

class TestBuckets:
    def test_at_or_below_base_lands_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(BUCKET_BASE) == 0

    def test_upper_bounds_are_inclusive(self):
        for index in (1, 2, 7, 30, BUCKET_COUNT - 1):
            assert bucket_index(bucket_upper_bound(index)) == index

    def test_value_just_above_bound_moves_up(self):
        assert bucket_index(bucket_upper_bound(7) * 1.001) == 8

    def test_huge_values_clamp_into_top_bucket(self):
        assert bucket_index(1e30) == BUCKET_COUNT - 1

    @given(st.floats(min_value=1e-12, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_bucket_invariant(self, value):
        index = bucket_index(value)
        assert 0 <= index < BUCKET_COUNT
        if index < BUCKET_COUNT - 1:  # the top bucket is a clamp
            assert value <= bucket_upper_bound(index)
        if 0 < index:
            assert value > bucket_upper_bound(index - 1)


class TestHistogram:
    def test_summary_fields(self):
        histogram = Histogram()
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        payload = histogram.to_dict()
        assert payload["count"] == 3
        assert payload["sum"] == pytest.approx(6.0)
        assert payload["min"] == 1.0
        assert payload["max"] == 3.0
        assert payload["mean"] == pytest.approx(2.0)
        assert payload["m2"] == pytest.approx(2.0)

    def test_buckets_report_only_nonzero_rows(self):
        histogram = Histogram()
        histogram.observe(1e-9)
        histogram.observe(1.0)
        rows = histogram.to_dict()["buckets"]
        assert len(rows) == 2
        for index, upper, count in rows:
            assert upper == bucket_upper_bound(index)
            assert count == 1

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e3,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_welford_state_matches_storage_recurrence(self, values):
        histogram = Histogram()
        totals = {}
        for value in values:
            histogram.observe(value)
            accumulate_name_state(totals, "k", 1, value, value, value,
                                  value, 0.0)
        count, total, minimum, maximum, mean, m2 = totals["k"]
        assert histogram.count == count
        assert histogram.total == total
        assert histogram.minimum == minimum
        assert histogram.maximum == maximum
        assert histogram.mean == mean
        assert histogram.m2 == m2


# ---------------------------------------------------------------------------
# Counters, gauges, enable/disable
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_disabled_registry_records_nothing(self):
        telemetry = Telemetry()
        telemetry.count("a")
        telemetry.gauge_set("b", 2.0)
        telemetry.observe("c", 0.5)
        with telemetry.span("d"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"]["recorded"] == 0

    def test_disabled_span_is_the_shared_noop(self):
        telemetry = Telemetry()
        assert telemetry.span("a") is telemetry.span("b")

    def test_gauges_last_write_and_additive(self):
        telemetry = Telemetry()
        telemetry.enable()
        telemetry.gauge_set("level", 3.0)
        telemetry.gauge_set("level", 1.0)
        telemetry.gauge_add("level", 0.5)
        assert telemetry.snapshot()["gauges"]["level"] == pytest.approx(1.5)

    def test_reset_clears_everything(self):
        telemetry = Telemetry()
        telemetry.enable()
        telemetry.count("a")
        with telemetry.span("s"):
            pass
        telemetry.reset()
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"]["recorded"] == 0
        assert telemetry.enabled  # reset does not flip the switch

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=20),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_counters_exact_under_threaded_increments(self, amounts,
                                                      thread_count):
        telemetry = Telemetry()
        telemetry.enable()

        def work():
            for amount in amounts:
                telemetry.count("shared", amount)

        threads = [threading.Thread(target=work)
                   for _ in range(thread_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 0.0
        for _ in range(thread_count):
            for amount in amounts:
                expected += amount
        # Bit-exact: every bump happens under the registry lock, so the
        # additions apply in *some* serial order; summing the same
        # amounts serially is one such order.  Tolerance covers the
        # reordering only.
        assert telemetry.counter_value("shared") == pytest.approx(
            expected, rel=1e-12)


# ---------------------------------------------------------------------------
# Spans and the Chrome trace round-trip
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nesting_and_parent_ids(self):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner.first"):
                pass
            with telemetry.span("inner.second"):
                pass
        spans = telemetry.spans()
        by_name = {span[0]: span for span in spans}
        outer_id = by_name["outer"][4]
        assert by_name["outer"][5] is None
        assert by_name["inner.first"][5] == outer_id
        assert by_name["inner.second"][5] == outer_id
        # Children exit before their parent, so the parent records last.
        assert spans[-1][0] == "outer"
        children = list(iter_span_children(spans, outer_id))
        assert {child[0] for child in children} == {"inner.first",
                                                    "inner.second"}

    def test_ring_buffer_drops_oldest_and_counts(self):
        telemetry = Telemetry(span_capacity=4)
        telemetry.enable()
        for index in range(10):
            with telemetry.span(f"s{index}"):
                pass
        spans = telemetry.spans()
        assert [span[0] for span in spans] == ["s6", "s7", "s8", "s9"]
        assert telemetry.snapshot()["spans"] == {
            "recorded": 4, "dropped": 6, "capacity": 4}

    def test_chrome_trace_round_trip_multithreaded(self, tmp_path):
        telemetry = Telemetry()
        telemetry.enable()
        # All workers meet at the barrier, so their threads coexist and
        # the OS cannot recycle one ident for two of them.
        barrier = threading.Barrier(3)

        def worker(label):
            with telemetry.span(f"worker.{label}", label=label):
                barrier.wait()
                with telemetry.span(f"worker.{label}.step"):
                    pass

        with telemetry.span("main.run"):
            threads = [threading.Thread(target=worker, args=(str(i),))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        path = str(tmp_path / "trace.json")
        telemetry.export_trace(path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 7  # main.run + 3 * (worker + step)

        # Every thread that recorded spans gets one thread_name metadata
        # event; tids are real integer thread idents.
        span_tids = {e["tid"] for e in complete}
        assert len(span_tids) == 4  # main + 3 workers
        assert {e["tid"] for e in metadata} == span_tids
        assert all(e["name"] == "thread_name" for e in metadata)
        assert all(isinstance(e["tid"], int) for e in complete)

        by_id = {e["args"]["span_id"]: e for e in complete}
        for event in complete:
            assert event["pid"] == os.getpid()
            assert event["cat"] in ("main", "worker")
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            parent_id = event["args"].get("parent_id")
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            # Same thread, and temporal containment (epsilon covers the
            # 3-decimal microsecond rounding of ts/dur).
            assert parent["tid"] == event["tid"]
            assert event["ts"] >= parent["ts"] - 0.01
            assert (event["ts"] + event["dur"]
                    <= parent["ts"] + parent["dur"] + 0.01)

        # Parent links are per-thread: each step nests under its worker
        # span; worker spans (other threads) and main.run are roots.
        steps = [e for e in complete if e["name"].endswith(".step")]
        assert len(steps) == 3
        main_run = next(e for e in complete if e["name"] == "main.run")
        for step in steps:
            worker = by_id[step["args"]["parent_id"]]
            assert worker["name"] == step["name"][:-len(".step")]
            assert "parent_id" not in worker["args"]
        assert "parent_id" not in main_run["args"]

    def test_snapshot_export_and_schema(self, tmp_path):
        telemetry = Telemetry()
        telemetry.enable()
        telemetry.count("a", 2.0)
        telemetry.observe("b", 0.25)
        path = str(tmp_path / "metrics.json")
        telemetry.export_snapshot(path)
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["enabled"] is True
        assert snapshot["counters"] == {"a": 2.0}
        assert snapshot["histograms"]["b"]["count"] == 1
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".tmp")]


# ---------------------------------------------------------------------------
# Always-on catalog lock statistics (satellite: ride-along diagnostics)
# ---------------------------------------------------------------------------

class TestCatalogLockStats:
    def test_acquire_counts_with_telemetry_disabled(self, tmp_path):
        reset_catalog_lock_stats()
        lock = _CatalogLock(str(tmp_path / "catalog.lock"))
        with lock:
            pass
        stats = catalog_lock_stats()
        assert stats["acquires"] == 1.0
        assert stats["timeouts"] == 0.0
        assert stats["wait_seconds"] >= 0.0
        assert not TELEMETRY.enabled
        assert TELEMETRY.snapshot()["counters"] == {}

    def test_timeout_reports_observed_wait(self, tmp_path):
        reset_catalog_lock_stats()
        path = str(tmp_path / "catalog.lock")
        holder = _CatalogLock(path)
        holder.acquire()
        waiter = _CatalogLock(path, timeout_s=0.05)
        with pytest.raises(CatalogLockTimeout) as excinfo:
            waiter.acquire()
        message = str(excinfo.value)
        assert "waited" in message
        assert "0.05s" in message
        stats = catalog_lock_stats()
        assert stats["timeouts"] == 1.0
        assert stats["acquires"] == 1.0  # the holder
        assert stats["wait_seconds"] >= 0.05
        holder.release()

    def test_stale_break_is_counted(self, tmp_path):
        reset_catalog_lock_stats()
        path = str(tmp_path / "catalog.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("999999\n")
        ancient = 10_000
        os.utime(path, (os.path.getmtime(path) - ancient,
                        os.path.getmtime(path) - ancient))
        lock = _CatalogLock(path, timeout_s=1.0)
        with lock:
            pass
        assert catalog_lock_stats()["stale_breaks"] == 1.0


# ---------------------------------------------------------------------------
# CLI renderer
# ---------------------------------------------------------------------------

class TestCli:
    def _exports(self, tmp_path):
        telemetry = Telemetry()
        telemetry.enable()
        telemetry.count("fleet.ingests", 3.0)
        telemetry.gauge_set("fleet.runs", 3.0)
        telemetry.observe("streaming.seal_seconds", 0.01)
        with telemetry.span("fleet.store.ingest"):
            with telemetry.span("fleet.catalog.lock"):
                pass
        snapshot = str(tmp_path / "metrics.json")
        trace = str(tmp_path / "trace.json")
        telemetry.export_snapshot(snapshot)
        telemetry.export_trace(trace)
        return snapshot, trace

    def test_renders_snapshot(self, tmp_path, capsys):
        snapshot, _ = self._exports(tmp_path)
        assert obs_main([snapshot]) == 0
        out = capsys.readouterr().out
        assert "fleet.ingests" in out
        assert "streaming.seal_seconds" in out
        assert "recorded=2" in out

    def test_renders_trace(self, tmp_path, capsys):
        _, trace = self._exports(tmp_path)
        assert obs_main([trace]) == 0
        out = capsys.readouterr().out
        assert "2 span(s)" in out
        assert "fleet.store.ingest" in out

    def test_rejects_unreadable_and_unrecognized_input(self, tmp_path,
                                                       capsys):
        missing = str(tmp_path / "nope.json")
        assert obs_main([missing]) == 2
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"hello": 1}))
        assert obs_main([str(other)]) == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Snapshot diffing and the --diff CLI
# ---------------------------------------------------------------------------

class TestDiffSnapshots:
    def _snapshot_pair(self):
        telemetry = Telemetry()
        telemetry.enable()
        telemetry.count("fleet.ingests", 3.0)
        telemetry.count("storage.blocks_decoded", 10.0)
        telemetry.gauge_set("watcher.runs_live", 2.0)
        telemetry.gauge_set("watcher.only_before", 1.0)
        telemetry.observe("streaming.seal_seconds", 0.010)
        with telemetry.span("watcher.poll"):
            pass
        baseline = telemetry.snapshot()
        telemetry.count("fleet.ingests", 2.0)
        telemetry.gauge_set("watcher.runs_live", 5.0)
        telemetry.observe("streaming.seal_seconds", 100.0)
        with telemetry.span("watcher.poll"):
            pass
        candidate = telemetry.snapshot()
        # A gauge the candidate no longer publishes.
        del candidate["gauges"]["watcher.only_before"]
        return baseline, candidate

    def test_counters_subtract_and_zero_deltas_are_omitted(self):
        baseline, candidate = self._snapshot_pair()
        diff = diff_snapshots(baseline, candidate)
        assert diff["counters"] == {"fleet.ingests": 2.0}
        assert "storage.blocks_decoded" not in diff["counters"]

    def test_gauges_are_last_wins_with_vanished_listed(self):
        baseline, candidate = self._snapshot_pair()
        diff = diff_snapshots(baseline, candidate)
        assert diff["gauges"]["watcher.runs_live"] == 5.0
        assert diff["gauges_vanished"] == ["watcher.only_before"]

    def test_histogram_buckets_diff_row_by_row(self):
        baseline, candidate = self._snapshot_pair()
        diff = diff_snapshots(baseline, candidate)
        histogram = diff["histograms"]["streaming.seal_seconds"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(100.0)
        # Exactly one new observation, in the bucket covering 100.0.
        assert len(histogram["buckets"]) == 1
        index, upper, delta = histogram["buckets"][0]
        assert delta == 1
        assert index == bucket_index(100.0)
        assert upper == bucket_upper_bound(index)

    def test_span_and_name_only_on_one_side_deltas(self):
        baseline, candidate = self._snapshot_pair()
        diff = diff_snapshots(baseline, candidate)
        assert diff["spans"]["recorded"] == 1
        assert diff["spans"]["dropped"] == 0
        # A counter only the candidate has diffs against zero.
        candidate["counters"]["fresh.counter"] = 7.0
        diff = diff_snapshots(baseline, candidate)
        assert diff["counters"]["fresh.counter"] == 7.0
        assert diff["diff"] is True

    def test_cli_diff_renders_deltas(self, tmp_path, capsys):
        baseline, candidate = self._snapshot_pair()
        base_path = tmp_path / "a.json"
        cand_path = tmp_path / "b.json"
        base_path.write_text(json.dumps(baseline))
        cand_path.write_text(json.dumps(candidate))
        assert obs_main(["--diff", str(base_path), str(cand_path)]) == 0
        out = capsys.readouterr().out
        assert "snapshot diff:" in out
        assert "fleet.ingests" in out and "+2" in out
        assert "(vanished)" in out
        assert "bucket[" in out

    def test_cli_diff_argument_errors(self, tmp_path, capsys):
        snapshot = tmp_path / "a.json"
        snapshot.write_text(json.dumps({"counters": {}}))
        trace = tmp_path / "t.json"
        trace.write_text(json.dumps({"traceEvents": []}))
        # Wrong arity.
        assert obs_main(["--diff", str(snapshot)]) == 2
        # A trace is not a snapshot.
        assert obs_main(["--diff", str(snapshot), str(trace)]) == 2
        err = capsys.readouterr().err
        assert "exactly two snapshot files" in err
        assert "not a metrics snapshot" in err

    def test_cli_warns_on_dropped_spans(self, tmp_path, capsys):
        telemetry = Telemetry(span_capacity=2)
        telemetry.enable()
        for _ in range(5):
            with telemetry.span("watcher.poll"):
                pass
        snapshot_path = str(tmp_path / "metrics.json")
        telemetry.export_snapshot(snapshot_path)
        assert obs_main([snapshot_path]) == 0
        out = capsys.readouterr().out
        assert "WARNING: span ring saturated" in out
        assert "3 span(s) dropped" in out


# ---------------------------------------------------------------------------
# The health time-series
# ---------------------------------------------------------------------------

class TestHealthTimeSeries:
    def test_append_stamps_and_reads_back(self, tmp_path):
        series = HealthTimeSeries(str(tmp_path / "h.jsonl"), fsync=False)
        row = series.append({"gauges": {"watcher.runs_live": 2.0}}, ts=10.0)
        assert row["ts"] == 10.0
        series.append({"gauges": {"watcher.runs_live": 3.0}}, ts=11.0)
        assert len(series) == 2
        assert series.last()["gauges"]["watcher.runs_live"] == 3.0
        assert series.series("gauges", "watcher.runs_live") == [
            (10.0, 2.0), (11.0, 3.0)]
        # A record without the metric is skipped, not an error.
        series.append({"note": "no gauges"}, ts=12.0)
        assert len(series.series("gauges", "watcher.runs_live")) == 2

    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        series = HealthTimeSeries(path, fsync=False)
        series.append({"n": 1}, ts=1.0)
        series.append({"n": 2}, ts=2.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 3.0, "n": 3')  # the crash-torn last line
        rows = series.records()
        assert [row["n"] for row in rows] == [1, 2]
        assert series.last_read_skipped == 1

    def test_retention_keeps_newest_records(self, tmp_path):
        series = HealthTimeSeries(str(tmp_path / "h.jsonl"), max_records=4,
                                  fsync=False)
        for index in range(10):
            series.append({"n": index}, ts=float(index))
        rows = series.records()
        assert len(rows) == 4
        assert [row["n"] for row in rows] == [6, 7, 8, 9]
        # The trim really rewrote the file, not just the view of it.
        reread = HealthTimeSeries(series.path)
        assert [row["n"] for row in reread.records()] == [6, 7, 8, 9]

    def test_existing_file_counts_toward_retention(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        first = HealthTimeSeries(path, fsync=False)
        for index in range(3):
            first.append({"n": index}, ts=float(index))
        # A new handle (watcher restart) keeps the bound across the reopen.
        second = HealthTimeSeries(path, max_records=3, fsync=False)
        second.append({"n": 3}, ts=3.0)
        assert [row["n"] for row in second.records()] == [1, 2, 3]


# ---------------------------------------------------------------------------
# The acceptance path: one instrumented run, four layers, checkable numbers
# ---------------------------------------------------------------------------

class TestInstrumentedRun:
    def test_runner_trace_covers_four_layers_with_consistent_counters(
            self, tmp_path):
        reset_catalog_lock_stats()
        trace_path = str(tmp_path / "run.trace.json")
        store_path = str(tmp_path / "fleet")
        result = run_named_workload(
            "gnn", iterations=2, profiler=PROFILER_DEEPCONTEXT,
            store_path=store_path,
            checkpoint_path=str(tmp_path / "live.cctb"),
            telemetry=True, trace_path=trace_path)
        assert not TELEMETRY.enabled  # the run disables what it enabled
        lock_stats = catalog_lock_stats()

        snapshot = result.telemetry
        assert snapshot is not None
        counters = snapshot["counters"]

        # Cross-checks against independently derived values.
        assert counters["fleet.ingests"] == result.extra["store_runs"] == 1.0
        assert counters["streaming.seals"] == result.extra[
            "profile_checkpoints"]
        assert counters["fleet.lock_acquires"] == lock_stats["acquires"]
        assert counters["fleet.lock_wait_seconds"] == pytest.approx(
            lock_stats["wait_seconds"])
        assert counters["storage.blocks_decoded"] >= 1.0
        assert counters["storage.crc_verified"] >= 1.0
        assert counters["fleet.index_builds"] == 1.0
        assert counters.get("fleet.index_demoted", 0.0) == 0.0
        assert counters["fleet.index_served"] >= 1.0
        assert "streaming.seal_seconds" in snapshot["histograms"]
        assert (snapshot["histograms"]["streaming.seal_seconds"]["count"]
                == counters["streaming.seals"])

        # The exported trace is Perfetto-shaped and spans >= 4 layers.
        with open(trace_path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        categories = {e["cat"] for e in events}
        assert {"runner", "streaming", "storage", "fleet"} <= categories
        assert any("parent_id" in e["args"] for e in events)
        for event in events:
            assert {"name", "cat", "ph", "ts", "dur", "pid",
                    "tid"} <= set(event)
        assert os.path.exists(trace_path + ".metrics.json")

        # The snapshot written next to the trace equals the attached one
        # metric for metric.
        with open(trace_path + ".metrics.json", "r",
                  encoding="utf-8") as handle:
            exported = json.load(handle)
        assert exported["counters"] == counters

    def test_blocks_decoded_counts_each_decode_exactly_once(self, tmp_path):
        from repro.core.storage import LazyProfileView

        result = run_named_workload("gnn", iterations=1,
                                    profiler=PROFILER_DEEPCONTEXT)
        path = result.database.save(str(tmp_path / "p.cctb"),
                                    format="cct-binary-v1")
        TELEMETRY.enable()
        view = LazyProfileView.attach(path)
        try:
            view.hydrate()
            first = TELEMETRY.counter_value("storage.blocks_decoded")
            assert first >= 1.0
            view.hydrate()  # cached: decoding does not happen again
            assert TELEMETRY.counter_value(
                "storage.blocks_decoded") == first
        finally:
            view.close()
        # A fresh view re-decodes the same blocks: exactly double.
        view = LazyProfileView.attach(path)
        try:
            view.hydrate()
            assert TELEMETRY.counter_value(
                "storage.blocks_decoded") == 2 * first
        finally:
            view.close()

    def test_profiler_config_knobs_export_without_runner(self, tmp_path):
        from repro.core import DeepContextProfiler
        from repro.framework import EagerEngine, modules, tensor

        trace_path = str(tmp_path / "session.trace.json")
        config = ProfilerConfig(program_name="knobs", telemetry=True,
                                trace_path=trace_path)
        config.checkpoint_path = str(tmp_path / "live.cctb")
        engine = EagerEngine("a100")
        profiler = DeepContextProfiler(engine, config)
        with engine, profiler.profile():
            layer = modules.Linear(8, 4, name="head")
            layer(tensor((4, 8)))
            profiler.mark_iteration()
        assert not TELEMETRY.enabled
        with open(trace_path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert "streaming.seal" in names
        assert os.path.exists(trace_path + ".metrics.json")


# ---------------------------------------------------------------------------
# Degradation report schema (satellite: stable "counts" rollup)
# ---------------------------------------------------------------------------

class TestDegradationReportSchema:
    def test_counts_rollup_keys_are_stable(self, tmp_path):
        from repro.fleet import ProfileStore

        store_path = str(tmp_path / "fleet")
        for _ in range(2):
            run_named_workload("gnn", iterations=1,
                               profiler=PROFILER_DEEPCONTEXT,
                               store_path=store_path)
        store = ProfileStore(store_path)
        with store.aggregator() as aggregator:
            report = aggregator.degradation_report()
        counts = report["counts"]
        assert set(counts) == {"requested", "healthy", "degraded", "indexed",
                               "fallback", "index_problems",
                               "degraded_by_stage"}
        assert counts["requested"] == 2
        assert counts["healthy"] == 2
        assert counts["degraded"] == 0
        assert counts["indexed"] + counts["fallback"] == counts["healthy"]
        assert counts["index_problems"] == 0
        assert counts["degraded_by_stage"] == {}
        for key, value in counts.items():
            if key != "degraded_by_stage":
                assert isinstance(value, int)
