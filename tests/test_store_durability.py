"""Tests for store durability: checksums, quarantine, degraded fleet queries.

Pins the hardening contracts:

* **per-block checksums**: ``cct-binary-v1`` files carry CRC-32 per block
  (TOC flag ``checksum: "crc32"``), verified lazily on first touch;
  pre-checksum files (``checksums=False``) still open and query;
* **quarantine**: a corrupt run stays catalogued but is excluded from
  ``find``/``latest``/aggregation; ``scrub`` quarantines and restores with
  precise reasons; state round-trips through the catalog;
* **graceful degradation**: a ``FleetAggregator`` over a store with corrupt
  runs answers from the healthy rest and reports what it dropped — at
  catalog, open, or query stage — instead of raising;
* **crash-safe concurrency**: concurrent ingests into one store all land in
  the catalog (advisory lock + read-merge-write), stale locks are broken,
  lock waits are bounded;
* **named errors**: attach/refresh on a vanished file and ingest of a
  directory / missing path fail with errors naming the path and condition.
"""

import os
import struct
import threading

import pytest

from repro.analyzer import (
    ANALYSIS_STORE_DURABILITY,
    AnalysisReport,
    Severity,
    attach_issues,
    degradation_issues,
    quarantine_issues,
)
from repro.core import (
    FORMAT_BINARY_V1,
    LazyProfileView,
    ProfileCorruptionError,
    ProfileDatabase,
    ProfileFormatError,
    ProfileMetadata,
    backend_for,
)
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.core.faultfs import flip_bit, truncate_file
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import (
    STATUS_OK,
    STATUS_QUARANTINED,
    CatalogLockTimeout,
    ProfileStore,
)
from repro.fleet.store import _CatalogLock


def _path(workload: str, op: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame(workload), thread_frame("main", 1),
        python_frame("train.py", 10, "train_step"),
        framework_frame(f"aten::{op}"),
        gpu_kernel_frame(kernel),
    ])


def make_database(workload: str, observations) -> ProfileDatabase:
    tree = ShardedCallingContextTree(workload)
    shard = tree.shard_for_tid(1, thread_name="main")
    for op, kernel, gpu_time in observations:
        node = shard.insert(_path(workload, op, kernel))
        shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                    M.METRIC_KERNEL_COUNT: 1.0})
    metadata = ProfileMetadata(program=workload, workload=workload,
                               device="A100")
    return ProfileDatabase(tree, metadata)


OBSERVATIONS = [("conv", "k_conv", 0.010), ("linear", "k_gemm", 0.020),
                ("norm", "k_norm", 0.002)]


def _column_block_offset(path: str, metric: str = M.METRIC_GPU_TIME) -> int:
    """Byte offset of one shard's column block (to aim corruption at)."""
    with backend_for(FORMAT_BINARY_V1).open(path) as view:
        entry = view._toc["shards"][0]
        return int(entry["columns"][metric]["offset"])


def _corrupt_column_block(store: ProfileStore, run_id: str) -> None:
    path = store.profile_path(run_id)
    flip_bit(path, _column_block_offset(path) + 3)


# ---------------------------------------------------------------------------
# Checksums in the canonical format
# ---------------------------------------------------------------------------

class TestChecksums:
    def test_saved_profiles_carry_crc32_per_block(self, tmp_path):
        path = str(tmp_path / "p.cctb")
        backend = backend_for(FORMAT_BINARY_V1)
        backend.save(make_database("unet", OBSERVATIONS), path)
        with backend.open(path) as view:
            assert view._toc["checksum"] == "crc32"
            assert "crc32" in view._toc["meta"]
            for entry in view._toc["shards"]:
                assert "crc32" in entry["frames"]
                for descriptor in entry["columns"].values():
                    assert "crc32" in descriptor
            assert view.verify_blocks() == []

    def test_unchecksummed_files_still_open_and_query(self, tmp_path):
        """Backward compatibility: pre-checksum files have no crc32 keys and
        every read succeeds without verification."""
        path = str(tmp_path / "old.cctb")
        backend = backend_for(FORMAT_BINARY_V1)
        database = make_database("unet", OBSERVATIONS)
        backend.save(database, path, checksums=False)
        with backend.open(path) as view:
            assert "checksum" not in view._toc
            assert all("crc32" not in entry["frames"]
                       for entry in view._toc["shards"])
            assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(
                database.total_gpu_time())
            assert view.verify_blocks() == []

    def test_verification_is_lazy_and_once_per_block(self, tmp_path):
        """Corruption in an untouched block does not fail unrelated queries;
        the first touch of the bad block does."""
        path = str(tmp_path / "p.cctb")
        backend = backend_for(FORMAT_BINARY_V1)
        backend.save(make_database("unet", OBSERVATIONS), path)
        flip_bit(path, _column_block_offset(path, M.METRIC_KERNEL_COUNT) + 3)
        with backend.open(path) as view:
            # The gpu_time column and the frame table are intact: fine.
            assert view.total_metric(M.METRIC_GPU_TIME) > 0
            with pytest.raises(ProfileCorruptionError) as excinfo:
                view.total_metric(M.METRIC_KERNEL_COUNT)
            assert M.METRIC_KERNEL_COUNT in str(excinfo.value)
        # verify_blocks names exactly the one rotten block.
        with backend.open(path) as view:
            problems = view.verify_blocks()
        assert len(problems) == 1
        assert "CRC-32" in problems[0]


# ---------------------------------------------------------------------------
# Named errors: attach/refresh and ingest validation
# ---------------------------------------------------------------------------

class TestNamedErrors:
    def test_attach_to_missing_file_names_the_path(self, tmp_path):
        path = str(tmp_path / "vanished.cctb")
        with pytest.raises(ProfileFormatError) as excinfo:
            LazyProfileView.attach(path)
        assert "vanished.cctb" in str(excinfo.value)
        assert "attach" in str(excinfo.value)

    def test_refresh_after_file_vanishes_names_the_path(self, tmp_path):
        path = str(tmp_path / "p.cctb")
        backend_for(FORMAT_BINARY_V1).save(
            make_database("unet", OBSERVATIONS), path)
        view = LazyProfileView.attach(path)
        try:
            os.unlink(path)
            with pytest.raises(ProfileFormatError) as excinfo:
                view.refresh()
            message = str(excinfo.value)
            assert "p.cctb" in message and "refresh" in message
        finally:
            view.close()

    def test_ingest_of_a_directory_is_an_early_value_error(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        victim = tmp_path / "not_a_profile"
        victim.mkdir()
        with pytest.raises(ValueError, match="directory"):
            store.ingest(str(victim))
        assert "not_a_profile" in _raised_message(store, str(victim))

    def test_ingest_of_a_missing_path_is_an_early_value_error(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        with pytest.raises(ValueError, match="no such file"):
            store.ingest(str(tmp_path / "nope.cctb"))

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root bypasses permission checks")
    def test_ingest_of_an_unreadable_file_is_an_early_value_error(
            self, tmp_path):
        victim = tmp_path / "locked.cctb"
        victim.write_bytes(b"data")
        victim.chmod(0)
        store = ProfileStore(tmp_path / "store")
        try:
            with pytest.raises(ValueError, match="not readable"):
                store.ingest(str(victim))
        finally:
            victim.chmod(0o644)


def _raised_message(store: ProfileStore, source: str) -> str:
    try:
        store.ingest(source)
    except ValueError as error:
        return str(error)
    raise AssertionError("ingest unexpectedly succeeded")


# ---------------------------------------------------------------------------
# Quarantine lifecycle and scrub
# ---------------------------------------------------------------------------

class TestQuarantine:
    def _store_with_runs(self, tmp_path, count=2):
        store = ProfileStore(tmp_path / "store")
        records = []
        for index in range(count):
            observations = [(op, kernel, value + index / 100)
                            for op, kernel, value in OBSERVATIONS]
            records.append(store.ingest(
                make_database("unet", observations)))
        return store, records

    def test_quarantined_runs_are_excluded_from_queries(self, tmp_path):
        store, (first, second) = self._store_with_runs(tmp_path)
        store.quarantine(first.run_id, "operator says so")
        assert [r.run_id for r in store.find()] == [second.run_id]
        assert [r.run_id for r in store.find(include_quarantined=True)] == \
            [first.run_id, second.run_id]
        assert store.latest(workload="unet").run_id == second.run_id
        assert [r.run_id for r in store.quarantined()] == [first.run_id]
        record = store.get(first.run_id)
        assert record.status == STATUS_QUARANTINED
        assert record.quarantine_reason == "operator says so"
        assert record.quarantined_at > 0

        store.restore(first.run_id)
        assert store.get(first.run_id).status == STATUS_OK
        assert len(store.find()) == 2

    def test_quarantine_state_round_trips_through_the_catalog(self, tmp_path):
        store, (first, _second) = self._store_with_runs(tmp_path)
        store.quarantine(first.run_id, "bit rot on the nfs volume")
        reloaded = ProfileStore(tmp_path / "store")
        record = reloaded.get(first.run_id)
        assert not record.healthy
        assert record.quarantine_reason == "bit rot on the nfs volume"

    def test_scrub_quarantines_corrupt_and_restores_repaired(self, tmp_path):
        store, (first, second) = self._store_with_runs(tmp_path)
        path = store.profile_path(first.run_id)
        with open(path, "rb") as handle:
            pristine = handle.read()

        assert store.scrub().clean
        _corrupt_column_block(store, first.run_id)
        report = store.scrub()
        assert report.checked == 2
        assert [run_id for run_id, _ in report.quarantined] == [first.run_id]
        assert "CRC-32" in report.quarantined[0][1]
        assert report.healthy == [second.run_id]
        assert not store.get(first.run_id).healthy

        # Still bad on the next pass: reported, not double-quarantined.
        again = store.scrub()
        assert again.still_quarantined == [first.run_id]
        assert not again.quarantined

        # The operator restores the file from a replica; scrub lifts it.
        with open(path, "wb") as handle:
            handle.write(pristine)
        repaired = store.scrub()
        assert repaired.restored == [first.run_id]
        assert repaired.clean
        assert store.get(first.run_id).healthy

    def test_verify_run_names_a_missing_file(self, tmp_path):
        store, (first, _second) = self._store_with_runs(tmp_path)
        os.unlink(store.profile_path(first.run_id))
        message = store.verify_run(first.run_id)
        assert message is not None and "missing" in message

    def test_verify_run_catches_rot_outside_checksummed_blocks(self, tmp_path):
        """A flip in the TOC region evades block CRCs; the content-address
        digest still catches it."""
        store, (first, _second) = self._store_with_runs(tmp_path)
        path = store.profile_path(first.run_id)
        with open(path, "rb") as handle:
            handle.seek(-24, os.SEEK_END)
            toc_offset = struct.unpack("<QQ8s", handle.read(24))[0]
        # Flip inside the TOC's JSON body: no block CRC covers it, but
        # either the TOC stops parsing (a named format error) or the
        # content-address digest check fires — never a silent pass.
        flip_bit(path, toc_offset + 3)
        message = store.verify_run(first.run_id)
        assert message is not None


# ---------------------------------------------------------------------------
# Fleet aggregation over a degraded store
# ---------------------------------------------------------------------------

class TestDegradedAggregation:
    def _store_with_runs(self, tmp_path, count=3):
        store = ProfileStore(tmp_path / "store")
        records = []
        for index in range(count):
            observations = [(op, kernel, value * (index + 1))
                            for op, kernel, value in OBSERVATIONS]
            records.append(store.ingest(make_database("unet", observations)))
        return store, records

    def test_catalog_quarantined_runs_are_skipped(self, tmp_path):
        store, records = self._store_with_runs(tmp_path)
        store.quarantine(records[0].run_id, "scrub said so")
        expected = sum(record.metrics[M.METRIC_GPU_TIME]
                       for record in records[1:])
        with store.aggregator() as aggregator:
            assert aggregator.run_count == 2
            assert aggregator.total_metric(M.METRIC_GPU_TIME) == \
                pytest.approx(expected)
            report = aggregator.degradation_report()
        assert report["requested_runs"] == 2  # find() already filtered it
        assert report["degraded"] is False

        # Naming the quarantined run explicitly degrades, not resurrects.
        with store.aggregator(
                run_ids=[record.run_id for record in records]) as aggregator:
            assert aggregator.run_count == 2
            assert aggregator.is_degraded
            report = aggregator.degradation_report()
        assert report["requested_runs"] == 3
        assert report["healthy_runs"] == 2
        entry = report["degraded_runs"][0]
        assert entry["run_id"] == records[0].run_id
        assert entry["stage"] == "catalog"
        assert "scrub said so" in entry["reason"]

    def test_unopenable_run_degrades_at_open_and_is_quarantined(
            self, tmp_path):
        store, records = self._store_with_runs(tmp_path)
        truncate_file(store.profile_path(records[1].run_id), 4)
        # use_index=False: an index-served run never opens its profile, so
        # this test pins the preserved lazy fallback path explicitly.
        with store.aggregator(use_index=False) as aggregator:
            assert aggregator.run_count == 2
            assert aggregator.degraded_run_ids == [records[1].run_id]
            report = aggregator.degradation_report()
        assert report["degraded_runs"][0]["stage"] == "open"
        assert not store.get(records[1].run_id).healthy

    def test_mid_query_corruption_demotes_and_quarantines(self, tmp_path):
        store, records = self._store_with_runs(tmp_path)
        # Rot one run *after* the aggregator would have opened it fine:
        # the TOC is intact, only a column block fails its CRC on touch.
        _corrupt_column_block(store, records[1].run_id)
        expected = sum(records[index].metrics[M.METRIC_GPU_TIME]
                       for index in (0, 2))
        # use_index=False: indexed queries never touch column bytes, so rot
        # that postdates ingest only surfaces on the lazy path (or via scrub).
        with store.aggregator(use_index=False) as aggregator:
            assert aggregator.run_count == 3  # opened fine, rot is lazy
            total = aggregator.total_metric(M.METRIC_GPU_TIME)
            assert total == pytest.approx(expected)
            assert aggregator.run_count == 2
            assert aggregator.is_degraded
            report = aggregator.degradation_report()
            # Later queries answer from the healthy rest, consistently.
            per_run = aggregator.per_run_totals(M.METRIC_GPU_TIME)
            assert set(per_run) == {records[0].run_id, records[2].run_id}
            merged = aggregator.merged_tree()
            assert merged.total_metric(M.METRIC_GPU_TIME) == \
                pytest.approx(expected)
        entry = report["degraded_runs"][0]
        assert entry["run_id"] == records[1].run_id
        assert entry["stage"] == "query"
        assert "CRC-32" in entry["reason"]
        # The demotion wrote back: every later reader skips the run too.
        assert not store.get(records[1].run_id).healthy

    def test_degradation_surfaces_as_analyzer_issues(self, tmp_path):
        store, records = self._store_with_runs(tmp_path)
        store.quarantine(records[0].run_id, "checksum mismatch in shard 1")
        issues = quarantine_issues(store)
        assert len(issues) == 1
        assert issues[0].analysis == ANALYSIS_STORE_DURABILITY
        assert issues[0].severity == Severity.WARNING
        assert records[0].run_id in issues[0].message
        assert "checksum mismatch" in issues[0].message

        with store.aggregator(
                run_ids=[record.run_id for record in records]) as aggregator:
            report = aggregator.degradation_report()
        degraded = degradation_issues(report)
        assert len(degraded) == 1 and "catalog" in degraded[0].message

        analysis_report = attach_issues(AnalysisReport(), issues + degraded)
        assert len(analysis_report.issues) == 2
        assert len(analysis_report.by_analysis(ANALYSIS_STORE_DURABILITY)) == 2

    def test_clean_reports_file_no_issues(self, tmp_path):
        store, records = self._store_with_runs(tmp_path)
        assert quarantine_issues(store) == []
        with store.aggregator() as aggregator:
            assert degradation_issues(aggregator.degradation_report()) == []


# ---------------------------------------------------------------------------
# Crash-safe concurrent ingest (advisory catalog lock)
# ---------------------------------------------------------------------------

class TestConcurrentIngest:
    def test_concurrent_ingests_all_land_in_the_catalog(self, tmp_path):
        """Satellite: N handles ingesting distinct runs concurrently must all
        land — the read-merge-write under the lock closes the lost-update
        window two unsynchronized writers would race into."""
        root = str(tmp_path / "store")
        ProfileStore(root)  # create the layout once
        workers = 8
        errors = []
        barrier = threading.Barrier(workers)

        def ingest(index: int) -> None:
            try:
                database = make_database(
                    f"workload-{index}",
                    [(op, kernel, value + index)
                     for op, kernel, value in OBSERVATIONS])
                barrier.wait()
                ProfileStore(root).ingest(database)
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=ingest, args=(index,))
                   for index in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        merged = ProfileStore(root)
        assert len(merged) == workers
        assert sorted(record.workload for record in merged.runs()) == \
            sorted(f"workload-{index}" for index in range(workers))
        assert not os.path.exists(merged.lock_path)  # released

    def test_lock_wait_is_bounded(self, tmp_path):
        lock_path = str(tmp_path / "catalog.lock")
        with open(lock_path, "w") as handle:
            handle.write("12345\n")  # a live-looking holder
        with pytest.raises(CatalogLockTimeout, match="catalog.lock"):
            _CatalogLock(lock_path, timeout_s=0.05, stale_s=60.0).acquire()

    def test_stale_locks_are_broken(self, tmp_path):
        lock_path = str(tmp_path / "catalog.lock")
        with open(lock_path, "w") as handle:
            handle.write("12345\n")
        stale = os.path.getmtime(lock_path) - 120
        os.utime(lock_path, (stale, stale))
        lock = _CatalogLock(lock_path, timeout_s=1.0, stale_s=30.0)
        lock.acquire()  # breaks the abandoned lock instead of timing out
        lock.release()
        assert not os.path.exists(lock_path)

    def test_crashed_peer_temp_files_are_ignored(self, tmp_path):
        root = tmp_path / "store"
        store = ProfileStore(root)
        # A crashed peer's half-written catalog temp file sits around.
        (root / "catalog.json.99999.tmp").write_text("{not json")
        record = store.ingest(make_database("unet", OBSERVATIONS))
        reloaded = ProfileStore(root)
        assert [r.run_id for r in reloaded.runs()] == [record.run_id]


# ---------------------------------------------------------------------------
# Runner integration: quarantined runs surface in experiment results
# ---------------------------------------------------------------------------

class TestRunnerIntegration:
    def test_quarantined_runs_surface_in_run_results(self, tmp_path):
        from repro.experiments.runner import (
            PROFILER_DEEPCONTEXT,
            run_named_workload,
        )

        store_path = str(tmp_path / "fleet")
        first = run_named_workload("gnn", profiler=PROFILER_DEEPCONTEXT,
                                   iterations=1, store_path=store_path)
        assert first.extra["quarantined_runs"] == 0.0

        store = ProfileStore(store_path)
        store.quarantine(first.store_run_id, "scrub: CRC-32 failure")
        second = run_named_workload("gnn", profiler=PROFILER_DEEPCONTEXT,
                                    iterations=2, store_path=store_path)
        assert second.extra["quarantined_runs"] == 1.0
        durability = second.report.by_analysis(ANALYSIS_STORE_DURABILITY)
        assert durability and first.store_run_id in durability[0].message
