"""Tests for DLMonitor: interception, call-path integration, the C-style API."""

import pytest

from repro.dlmonitor import (
    DLMONITOR_FRAMEWORK,
    DLMONITOR_GPU,
    CallPathSources,
    DLMonitor,
    FrameKind,
    dlmonitor_callback_register,
    dlmonitor_callpath_get,
    dlmonitor_finalize,
    dlmonitor_init,
    parse_interception_config,
)
from repro.dlmonitor.audit import CustomDriverInterceptor, LibraryAuditor
from repro.framework import EagerEngine, modules, tensor
from repro.framework import functional as F
from repro.framework.jit import JitCompiler, jit
from repro.gpu.kernels import KernelSpec
from repro.native.symbols import LIBPYTHON


@pytest.fixture
def engine():
    return EagerEngine("a100")


class TestLifecycle:
    def test_init_and_finalize(self, engine):
        monitor = dlmonitor_init(engine)
        assert monitor.initialized
        dlmonitor_finalize(monitor)
        assert not monitor.initialized
        # After finalize, operators no longer reach the shim.
        with engine:
            F.relu(tensor((2, 2)))
        assert monitor.stats.framework_events == 0

    def test_double_init_is_idempotent(self, engine):
        monitor = DLMonitor(engine)
        monitor.init()
        monitor.init()
        events = []
        monitor.callback_register(DLMONITOR_FRAMEWORK, events.append)
        with engine:
            F.relu(tensor((2, 2)))
        assert len(events) == 2  # enter + exit, not doubled

    def test_unknown_domain_rejected(self, engine):
        monitor = dlmonitor_init(engine)
        with pytest.raises(ValueError):
            monitor.callback_register("DLMONITOR_UNKNOWN", lambda event: None)


class TestFrameworkDomain:
    def test_operator_events_delivered(self, engine):
        monitor = dlmonitor_init(engine)
        events = []
        dlmonitor_callback_register(monitor, DLMONITOR_FRAMEWORK, events.append)
        with engine:
            layer = modules.Linear(8, 4, name="proj")
            layer(tensor((2, 8)))
        names = {event.op_name for event in events}
        assert "aten::linear" in names
        assert any(event.scope == ["proj"] for event in events)
        assert all(event.framework == "pytorch" for event in events)

    def test_shadow_stack_balanced_after_ops(self, engine):
        monitor = dlmonitor_init(engine)
        with engine:
            F.relu(tensor((2, 2)))
        assert monitor.shadow_stacks.for_thread(engine.threads.main.tid).depth == 0

    def test_backward_events_marked(self, engine):
        monitor = dlmonitor_init(engine)
        events = []
        monitor.callback_register(DLMONITOR_FRAMEWORK, events.append)
        with engine:
            w = tensor((4, 8), requires_grad=True)
            loss = F.sum_(F.linear(tensor((2, 8)), w))
            engine.backward(loss)
        backward_events = [event for event in events if event.is_backward]
        assert backward_events
        assert all(event.sequence_id is not None for event in backward_events)


class TestGpuDomain:
    def test_kernel_launch_events_carry_kernel_names(self, engine):
        monitor = dlmonitor_init(engine)
        events = []
        monitor.callback_register(DLMONITOR_GPU, events.append)
        with engine:
            F.relu(tensor((64, 64)))
        launches = [event for event in events if event.kernel_name]
        assert launches and launches[0].kernel_name.startswith("vectorized_elementwise")
        assert launches[0].correlation_id > 0


class TestCallPathGet:
    def test_full_callpath_inside_gpu_callback(self, engine):
        monitor = dlmonitor_init(engine)
        paths = []
        monitor.callback_register(
            DLMONITOR_GPU,
            lambda event: paths.append(dlmonitor_callpath_get(monitor)) if event.phase == "enter" else None)
        with engine:
            layer = modules.Conv2d(3, 8, name="conv")
            layer(tensor((1, 3, 16, 16)))
        assert paths
        kinds = set()
        for path in paths:
            kinds.update(path.kinds())
        assert {FrameKind.PYTHON, FrameKind.FRAMEWORK, FrameKind.NATIVE,
                FrameKind.GPU_API, FrameKind.GPU_KERNEL} <= kinds

    def test_sources_disable_layers(self, engine):
        monitor = dlmonitor_init(engine)
        captured = {}

        def on_gpu(event):
            if event.phase != "enter" or captured:
                return
            captured["full"] = monitor.callpath_get(CallPathSources.all())
            captured["no_native"] = monitor.callpath_get(CallPathSources.without_native())
            captured["python_only"] = monitor.callpath_get(CallPathSources.python_only())

        monitor.callback_register(DLMONITOR_GPU, on_gpu)
        with engine:
            F.relu(tensor((8, 8)))
        assert captured["full"].has_kind(FrameKind.NATIVE)
        assert not captured["no_native"].has_kind(FrameKind.NATIVE)
        assert captured["no_native"].has_kind(FrameKind.FRAMEWORK)
        assert not captured["python_only"].has_kind(FrameKind.FRAMEWORK)
        assert not captured["python_only"].has_kind(FrameKind.GPU_API)

    def test_callpath_outside_any_operator(self, engine):
        monitor = dlmonitor_init(engine)
        with engine:
            path = monitor.callpath_get()
        assert path.root.kind == FrameKind.ROOT
        assert path.has_kind(FrameKind.THREAD)

    def test_callpath_cache_reduces_python_captures(self, engine):
        cached_monitor = dlmonitor_init(engine, enable_callpath_cache=True)
        with engine:
            layer = modules.Conv2d(3, 8, name="conv")
            layer(tensor((1, 3, 16, 16)))
        uncached_engine = EagerEngine("a100")
        uncached_monitor = dlmonitor_init(uncached_engine, enable_callpath_cache=False)
        uncached_monitor.callback_register(
            DLMONITOR_GPU,
            lambda event: uncached_monitor.callpath_get() if event.phase == "enter" else None)
        cached_monitor.callback_register(
            DLMONITOR_GPU,
            lambda event: cached_monitor.callpath_get() if event.phase == "enter" else None)
        with uncached_engine:
            layer = modules.Conv2d(3, 8, name="conv")
            layer(tensor((1, 3, 16, 16)))
        with engine:
            layer = modules.Conv2d(3, 8, name="conv")
            layer(tensor((1, 3, 16, 16)))
        assert cached_monitor.cache.hit_rate > 0
        assert cached_monitor.stats.python_captures < uncached_monitor.stats.python_captures

    def test_backward_thread_paths_reuse_forward_python_context(self, engine):
        monitor = dlmonitor_init(engine)
        backward_paths = []
        monitor.callback_register(
            DLMONITOR_GPU,
            lambda event: backward_paths.append(monitor.callpath_get())
            if event.phase == "enter" and engine.threads.current.kind == "backward" else None)
        with engine:
            embedding = modules.Embedding(1000, 16, use_index=True, name="table")
            indices = tensor((64,), dtype="int64", duplicate_fraction=0.5)
            loss = F.sum_(embedding(indices))
            engine.backward(loss)
        assert backward_paths
        grafted = [path for path in backward_paths if path.has_kind(FrameKind.PYTHON)]
        assert grafted, "backward call paths lost the forward Python context"
        assert any(frame.name == "aten::index" for path in grafted
                   for frame in path.frames_of_kind(FrameKind.FRAMEWORK))


class TestJitInterception:
    def test_fusion_map_populated_from_compilation_callbacks(self, engine):
        compiler = JitCompiler(engine)
        monitor = dlmonitor_init(engine, jit_compiler=compiler)

        def step(x, w):
            return F.sum_(F.relu(F.gelu(F.linear(x, w))))

        with engine:
            compiled = jit(step, engine=engine, compiler=compiler)
            compiled(tensor((4, 16)), tensor((8, 16)))
        assert monitor.stats.compilation_events > 0
        assert len(monitor.fusion_map) >= 1
        record = monitor.fusion_map.records[0]
        assert len(record.originals) >= 2


class TestAuditing:
    def test_library_auditor_detects_python_boundary(self, engine):
        auditor = LibraryAuditor(engine.address_space)
        assert LIBPYTHON in auditor.loaded_libraries()
        py_eval = engine.address_space.library(LIBPYTHON).symbols["PyEval_EvalFrameDefault"]
        assert auditor.is_python_frame_pc(py_eval.address + 1)
        assert auditor.library_of(py_eval.address + 1) == LIBPYTHON

    def test_parse_interception_config(self):
        configs = parse_interception_config({
            "functions": ["customLaunch",
                          {"function": "vendorMemcpy", "signature": ["void*", "size_t"]}],
        })
        assert [config.function for config in configs] == ["customLaunch", "vendorMemcpy"]
        with pytest.raises(ValueError):
            parse_interception_config({"functions": [{"signature": []}]})

    def test_custom_driver_interceptor_filters_functions(self, engine):
        configs = parse_interception_config({"functions": ["cudaMemcpyAsync"]})
        interceptor = CustomDriverInterceptor(engine.runtime, configs)
        seen = []
        interceptor.install(lambda data: seen.append(data.api_name))
        engine.runtime.launch_kernel(KernelSpec(name="k"))
        engine.runtime.memcpy(1024, "h2d")
        assert set(seen) == {"cudaMemcpyAsync"}
        assert interceptor.intercepted == 2 and interceptor.skipped == 2
        interceptor.uninstall()
        engine.runtime.memcpy(1024, "h2d")
        assert interceptor.intercepted == 2
