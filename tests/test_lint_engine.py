"""Engine-level tests for repro.lint: suppressions, baseline mechanics,
CLI behaviour, and a hypothesis property — synthetic modules assembled from
violating and conforming fragments must produce exactly the seeded
(rule, line) findings, no false negatives and no duplicates.
"""

import json
import textwrap

import pytest
from hypothesis import given, settings, strategies as st

from repro.lint import (all_rules, lint_paths, lint_source, load_baseline,
                        write_baseline)
from repro.lint.baseline import Baseline, BaselineEntry, BaselineError
from repro.lint.cli import main
from repro.lint.engine import (META_RULE_ID, STATUS_BASELINED, STATUS_NEW,
                               STATUS_SUPPRESSED, iter_python_files)

PROD_PATH = "src/repro/core/synthetic.py"

EXPECTED_RULE_IDS = ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                     "RL007", "RL008", "RL009", "RL010"]


def lint(source, path=PROD_PATH):
    return lint_source(textwrap.dedent(source), path)


# ---------------------------------------------------------------------------
# Registry and engine basics
# ---------------------------------------------------------------------------

class TestEngine:
    def test_all_builtin_rules_are_registered(self):
        assert [rule.id for rule in all_rules()] == EXPECTED_RULE_IDS
        for rule in all_rules():
            assert rule.name and rule.contract and rule.severity

    def test_syntax_error_yields_meta_finding(self):
        findings = lint("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule == META_RULE_ID
        assert "does not parse" in findings[0].message

    def test_findings_carry_symbol_and_snippet(self):
        findings = lint("""\
            import builtins

            class Harness:
                def patch(self, fake):
                    builtins.open = fake
            """)
        (finding,) = findings
        assert finding.rule == "RL007"
        assert finding.symbol == "Harness.patch"
        assert finding.snippet == "builtins.open = fake"
        assert finding.location.endswith(":5:9")

    def test_iter_python_files_dedupes_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / ".hidden").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "b.py").write_text("x = 1\n")
        (tmp_path / ".hidden" / "c.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([str(tmp_path),
                                        str(tmp_path / "pkg" / "a.py")]))
        assert len(files) == 1
        assert files[0].endswith("pkg/a.py")


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_trailing_suppression_with_reason(self):
        findings = lint("""\
            import builtins

            def patch(fake):
                builtins.open = fake  # repro-lint: disable=RL007 scoped test harness
            """)
        (finding,) = findings
        assert finding.status == STATUS_SUPPRESSED
        assert finding.justification == "scoped test harness"

    def test_standalone_suppression_guards_next_code_line(self):
        findings = lint("""\
            import builtins

            def patch(fake):
                # repro-lint: disable=RL007 scoped test harness
                builtins.open = fake
            """)
        (finding,) = findings
        assert finding.status == STATUS_SUPPRESSED

    def test_reasonless_suppression_is_rejected_and_not_applied(self):
        findings = lint("""\
            import builtins

            def patch(fake):
                builtins.open = fake  # repro-lint: disable=RL007
            """)
        by_rule = {finding.rule: finding for finding in findings}
        assert by_rule["RL007"].status == STATUS_NEW
        meta = by_rule[META_RULE_ID]
        assert "mandatory" in meta.message

    def test_suppression_only_covers_listed_rules(self):
        findings = lint("""\
            import struct

            def rogue(handle, a):
                handle.write(struct.pack("<I", a))  # repro-lint: disable=RL007 wrong rule id
            """)
        (finding,) = [f for f in findings if f.rule == "RL001"]
        assert finding.status == STATUS_NEW

    def test_multiple_ids_in_one_comment(self):
        findings = lint("""\
            def save(root, data):
                catalog = root + "/catalog.json"
                with open(catalog, "w") as handle:  # repro-lint: disable=RL002,RL005 recovery tool runs single-process
                    handle.write(data)
            """)
        assert {finding.rule for finding in findings} == {"RL002", "RL005"}
        assert all(finding.status == STATUS_SUPPRESSED
                   for finding in findings)


# ---------------------------------------------------------------------------
# Baseline mechanics
# ---------------------------------------------------------------------------

def _violation_findings():
    return lint("""\
        import builtins

        def patch(fake):
            builtins.open = fake
        """)


class TestBaseline:
    def test_baselined_finding_does_not_fail(self):
        findings = _violation_findings()
        entry = BaselineEntry(rule="RL007", path=PROD_PATH,
                              symbol="patch",
                              snippet="builtins.open = fake",
                              justification="known debt")
        annotated, stale = Baseline([entry]).apply(findings)
        assert stale == []
        assert annotated[0].status == STATUS_BASELINED
        assert annotated[0].justification == "known debt"

    def test_baseline_matching_survives_line_churn(self):
        shifted = lint("""\
            import builtins

            PADDING = 1


            def patch(fake):
                builtins.open = fake
            """)
        entry = BaselineEntry(rule="RL007", path=PROD_PATH,
                              symbol="patch",
                              snippet="builtins.open = fake",
                              justification="known debt")
        annotated, stale = Baseline([entry]).apply(shifted)
        assert stale == []
        assert annotated[0].status == STATUS_BASELINED

    def test_unconsumed_entry_is_stale(self):
        entry = BaselineEntry(rule="RL001", path="src/repro/gone.py",
                              symbol="f", snippet="handle.write(x)",
                              justification="was fixed")
        annotated, stale = Baseline([entry]).apply(_violation_findings())
        assert stale == [entry]
        assert annotated[0].status == STATUS_NEW

    def test_empty_justification_is_invalid(self):
        baseline = Baseline([BaselineEntry(
            rule="RL007", path=PROD_PATH, symbol="patch",
            snippet="builtins.open = fake", justification="  ")])
        with pytest.raises(BaselineError, match="justification"):
            baseline.validate()

    def test_written_skeleton_cannot_be_loaded_until_justified(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, _violation_findings())
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for entry in payload["entries"]:
            entry["justification"] = "grandfathered"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        baseline = load_baseline(path)
        assert len(baseline.entries) == 1

    def test_corrupt_baseline_raises_baseline_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(str(path))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _write_rogue_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "rogue.py").write_text(textwrap.dedent("""\
        import builtins

        def patch(fake):
            builtins.open = fake
        """))
    return str(tmp_path / "src")


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "fine.py").write_text("VALUE = 1\n")
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_new_finding_exits_one_with_location(self, tmp_path, capsys):
        root = _write_rogue_tree(tmp_path)
        assert main([root, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RL007" in out
        assert "rogue.py:4" in out

    def test_rule_filter(self, tmp_path, capsys):
        root = _write_rogue_tree(tmp_path)
        assert main([root, "--no-baseline", "--rule", "RL001"]) == 0
        assert main([root, "--no-baseline", "--rule", "rl007"]) == 1
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path), "--rule", "RL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_json_format_summary(self, tmp_path, capsys):
        root = _write_rogue_tree(tmp_path)
        assert main([root, "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"new": 1, "baselined": 0,
                                      "suppressed": 0, "stale": 0}
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL007"
        assert finding["line"] == 4

    def test_write_then_justify_then_pass(self, tmp_path, capsys):
        root = _write_rogue_tree(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main([root, "--write-baseline", baseline]) == 0
        # The skeleton is unusable until justified...
        assert main([root, "--baseline", baseline]) == 2
        with open(baseline, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for entry in payload["entries"]:
            entry["justification"] = "sanctioned harness patch"
        with open(baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        # ...and green once every entry says why it lives.
        assert main([root, "--baseline", baseline]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out


# ---------------------------------------------------------------------------
# Hypothesis: seeded synthetic modules report exactly the seeded findings
# ---------------------------------------------------------------------------

_HEADER = ("import builtins\nimport json\nimport os\nimport struct\n"
           "import time\n\nfrom repro.obs import TELEMETRY\n\n")
_HEADER_LINES = _HEADER.count("\n")

# Each fragment: (template keyed on {i}, [(rule, line offset within the
# fragment)]).  Offsets are 1-based from the fragment's first line.
VIOLATING_FRAGMENTS = [
    ("def leak_{i}(handle, a, b):\n"
     "    handle.write(struct.pack(\"<II\", a, b))\n",
     [("RL001", 2)]),
    ("def save_{i}(path, data):\n"
     "    with open(path, \"w\") as fh:\n"
     "        fh.write(data)\n",
     [("RL002", 2)]),
    ("class Tree_{i}:\n"
     "    def __init__(self):\n"
     "        self._generation = 0\n"
     "        self._dirty = {{}}\n"
     "    def cached_{i}(self):\n"
     "        return self._cache[0] == self._generation\n"
     "    def mutate_{i}(self, node):\n"
     "        self._dirty[id(node)] = node\n",
     [("RL003", 8)]),
    ("def load_{i}(path):\n"
     "    try:\n"
     "        return path.read()\n"
     "    except OSError:\n"
     "        raise\n",
     [("RL004", 5)]),
    ("def parse_{i}(payload):\n"
     "    return json.loads(payload)\n",
     [("RL004", 2)]),
    ("def promote_{i}(tmp_path, root):\n"
     "    os.replace(tmp_path, root + \"/catalog.json\")\n",
     [("RL005", 2)]),
    ("def update_{i}(tree, obs):\n"
     "    merged = tree.merged()\n"
     "    node = merged.kernels[0]\n"
     "    node.attribute(obs)\n",
     [("RL006", 4)]),
    ("def patch_{i}(fake):\n"
     "    builtins.open = fake\n",
     [("RL007", 2)]),
    ("def publish_{i}(tmp_path, root):\n"
     "    os.replace(tmp_path, root + \"/index/names.json\")\n",
     [("RL008", 2)]),
    ("def lap_{i}(work):\n"
     "    start = time.monotonic()\n"
     "    work()\n"
     "    return time.monotonic() - start\n",
     [("RL009", 4)]),
    ("def spin_{i}(ready):\n"
     "    while not ready():\n"
     "        time.sleep(0.01)\n",
     [("RL010", 2)]),
]

CONFORMING_FRAGMENTS = [
    "def ok_{i}(values):\n"
    "    return [value * 2 for value in values]\n",
    "def ok_{i}(path, data):\n"
    "    tmp = path + \".tmp\"\n"
    "    with open(tmp, \"w\") as fh:\n"
    "        fh.write(data)\n"
    "    os.replace(tmp, path)\n",
    "def ok_{i}(payload):\n"
    "    try:\n"
    "        return json.loads(payload)\n"
    "    except ValueError as error:\n"
    "        raise RuntimeError(str(error)) from None\n",
    "def ok_{i}(tree):\n"
    "    merged = tree.merged()\n"
    "    return merged.kernels[0]\n",
    "def ok_{i}(lock, tmp, root):\n"
    "    with lock.catalog_lock():\n"
    "        os.replace(tmp, root + \"/index/names.json\")\n",
    "class Good_{i}:\n"
    "    def __init__(self):\n"
    "        self._generation = 0\n"
    "        self._dirty = {{}}\n"
    "    def cached_{i}(self):\n"
    "        return self._cache[0] == self._generation\n"
    "    def mutate_{i}(self, node):\n"
    "        self._dirty[id(node)] = node\n"
    "        self._generation += 1\n",
    "def ok_{i}(work):\n"
    "    start = time.monotonic()\n"
    "    work()\n"
    "    elapsed = time.monotonic() - start\n"
    "    TELEMETRY.observe(\"ok.seconds\", elapsed)\n"
    "    return elapsed\n",
    "def ok_{i}(deadline):\n"
    "    return time.monotonic() >= deadline\n",
    "def ok_{i}(ready, timeout_s):\n"
    "    deadline = time.monotonic() + timeout_s\n"
    "    while not ready():\n"
    "        if time.monotonic() >= deadline:\n"
    "            raise TimeoutError(timeout_s)\n"
    "        time.sleep(0.01)\n",
    "def ok_{i}(ready, attempts_max):\n"
    "    attempts = 0\n"
    "    while attempts < attempts_max:\n"
    "        if ready():\n"
    "            break\n"
    "        attempts += 1\n"
    "        time.sleep(0.01)\n",
]

_FRAGMENT_POOL = (
    [(template, seeds) for template, seeds in VIOLATING_FRAGMENTS]
    + [(template, []) for template in CONFORMING_FRAGMENTS])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(_FRAGMENT_POOL), min_size=1, max_size=8))
def test_seeded_violations_reported_exactly(fragments):
    source = _HEADER
    expected = []
    line = _HEADER_LINES
    for index, (template, seeds) in enumerate(fragments):
        body = template.format(i=index)
        for rule, offset in seeds:
            expected.append((rule, line + offset))
        line += body.count("\n") + 1
        source += body + "\n"
    findings = lint_source(source, PROD_PATH)
    reported = [(finding.rule, finding.line) for finding in findings
                if finding.rule != META_RULE_ID]
    assert sorted(reported) == sorted(expected)
    assert all(finding.status == STATUS_NEW for finding in findings)
