"""Tests for the simulated GPU runtime, activity buffers and tracing APIs."""

import pytest

from repro.cpu import VirtualClock
from repro.gpu import (
    A100,
    ActivityKind,
    ApiPhase,
    Cupti,
    GpuRuntime,
    InstructionSampler,
    KernelSpec,
    MI250,
    RocTracer,
    tracing_api_for,
)
from repro.gpu import kernels as K
from repro.gpu.activity import ActivityBufferManager, ActivityRecord


def _kernel(name="k", stream=0, **overrides):
    defaults = dict(flops=1e8, bytes_accessed=1e7, threads_per_block=256, num_blocks=512)
    defaults.update(overrides)
    return KernelSpec(name=name, stream=stream, **defaults)


class TestActivityBuffer:
    def test_records_dropped_without_consumer(self):
        manager = ActivityBufferManager(buffer_size=4)
        manager.emit(ActivityRecord(ActivityKind.KERNEL, "k", 0, 1, 1, "dev"))
        assert manager.records_dropped == 1 and manager.pending == 0

    def test_flush_on_buffer_full(self):
        manager = ActivityBufferManager(buffer_size=2)
        batches = []
        manager.register_callback(batches.append)
        for i in range(5):
            manager.emit(ActivityRecord(ActivityKind.KERNEL, f"k{i}", 0, 1, i, "dev"))
        assert len(batches) == 2 and all(len(batch) == 2 for batch in batches)
        assert manager.pending == 1
        manager.flush()
        assert sum(len(batch) for batch in batches) == 5

    def test_invalid_buffer_size(self):
        with pytest.raises(ValueError):
            ActivityBufferManager(buffer_size=0)


class TestGpuRuntime:
    def test_correlation_ids_increase(self):
        runtime = GpuRuntime(A100)
        first = runtime.launch_kernel(_kernel())
        second = runtime.launch_kernel(_kernel())
        assert second.correlation_id == first.correlation_id + 1

    def test_kernels_serialize_within_a_stream(self):
        runtime = GpuRuntime(A100)
        first = runtime.launch_kernel(_kernel())
        second = runtime.launch_kernel(_kernel())
        assert second.start >= first.end

    def test_streams_overlap(self):
        runtime = GpuRuntime(A100)
        first = runtime.launch_kernel(_kernel(stream=0))
        second = runtime.launch_kernel(_kernel("other", stream=1))
        assert second.start == pytest.approx(first.start)

    def test_api_callbacks_fire_enter_and_exit(self):
        runtime = GpuRuntime(A100)
        phases = []
        runtime.subscribe(lambda data: phases.append((data.api_name, data.phase)))
        runtime.launch_kernel(_kernel())
        assert phases == [("cudaLaunchKernel", ApiPhase.ENTER),
                          ("cudaLaunchKernel", ApiPhase.EXIT)]

    def test_amd_runtime_uses_hip_api_names(self):
        runtime = GpuRuntime(MI250)
        names = []
        runtime.subscribe(lambda data: names.append(data.api_name))
        runtime.launch_kernel(_kernel())
        runtime.memcpy(1024, "h2d")
        assert "hipLaunchKernel" in names and "hipMemcpyAsync" in names

    def test_memcpy_records_bytes(self):
        runtime = GpuRuntime(A100)
        records = []
        runtime.activity.register_callback(records.extend)
        runtime.memcpy(1 << 20, "h2d")
        runtime.activity.flush()
        assert records[0].kind == ActivityKind.MEMCPY and records[0].bytes == 1 << 20

    def test_malloc_free_track_memory(self):
        runtime = GpuRuntime(A100)
        ptr = runtime.malloc(1024)
        assert runtime.allocated_bytes == 1024
        assert runtime.peak_allocated_bytes == 1024
        runtime.free(ptr)
        assert runtime.allocated_bytes == 0
        with pytest.raises(KeyError):
            runtime.free(ptr)

    def test_synchronize_advances_real_time_to_device_end(self):
        clock = VirtualClock("REAL")
        runtime = GpuRuntime(A100, real_time=clock)
        result = runtime.launch_kernel(_kernel(num_blocks=100_000, bytes_accessed=1e9))
        wait = runtime.synchronize()
        assert wait > 0
        assert clock.now == pytest.approx(result.end)
        assert runtime.synchronize() == 0.0

    def test_kernel_accounting(self):
        runtime = GpuRuntime(A100)
        for _ in range(3):
            runtime.launch_kernel(_kernel())
        assert runtime.kernel_count == 3
        assert runtime.total_kernel_seconds > 0


class TestTracingApis:
    def test_vendor_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cupti(GpuRuntime(MI250))
        with pytest.raises(ValueError):
            RocTracer(GpuRuntime(A100))

    def test_tracing_api_for_selects_vendor(self):
        assert isinstance(tracing_api_for(GpuRuntime(A100)), Cupti)
        assert isinstance(tracing_api_for(GpuRuntime(MI250)), RocTracer)

    def test_single_subscriber_enforced(self):
        api = Cupti(GpuRuntime(A100))
        api.subscribe(lambda data: None)
        with pytest.raises(RuntimeError):
            api.subscribe(lambda data: None)

    def test_activity_and_callback_flow(self):
        runtime = GpuRuntime(A100)
        api = Cupti(runtime)
        callbacks, activities = [], []
        api.subscribe(callbacks.append)
        api.activity_register_callbacks(activities.extend)
        runtime.launch_kernel(_kernel())
        api.activity_flush_all()
        assert len(callbacks) == 2
        assert len(activities) == 1 and activities[0].name == "k"

    def test_pc_sampling_delivers_samples_per_launch(self):
        runtime = GpuRuntime(A100)
        api = Cupti(runtime)
        samples = []
        api.enable_pc_sampling(samples.extend)
        runtime.launch_kernel(_kernel(bytes_accessed=1e9, num_blocks=100_000))
        assert samples and all(sample.kernel_name == "k" for sample in samples)
        api.disable_pc_sampling()
        count = len(samples)
        runtime.launch_kernel(_kernel())
        assert len(samples) == count

    def test_finalize_detaches_everything(self):
        runtime = GpuRuntime(A100)
        api = Cupti(runtime)
        events = []
        api.subscribe(events.append)
        api.finalize()
        runtime.launch_kernel(_kernel())
        assert events == []


class TestInstructionSampler:
    def test_stall_distribution_sums_to_one(self):
        sampler = InstructionSampler(A100)
        for flags in (frozenset(), frozenset({K.FLAG_DTYPE_CONVERSION}),
                      frozenset({K.FLAG_MATMUL}), frozenset({K.FLAG_ATOMIC_SCATTER})):
            distribution = sampler.stall_distribution(_kernel(flags=flags))
            assert sum(distribution.values()) == pytest.approx(1.0)

    def test_conversion_kernels_stall_on_constant_memory(self):
        sampler = InstructionSampler(A100)
        kernel = _kernel(flags=frozenset({K.FLAG_DTYPE_CONVERSION}),
                         bytes_accessed=1e9, num_blocks=100_000)
        samples = sampler.sample_kernel(kernel, correlation_id=7)
        reasons = sampler.top_stall_reasons(samples, k=2)
        assert "constant_memory_dependency" in reasons
        assert all(sample.correlation_id == 7 for sample in samples)

    def test_sample_count_scales_with_duration(self):
        sampler = InstructionSampler(A100)
        short = sum(s.samples for s in sampler.sample_kernel(_kernel()))
        long = sum(s.samples for s in sampler.sample_kernel(
            _kernel(bytes_accessed=1e10, num_blocks=500_000)))
        assert long > short
