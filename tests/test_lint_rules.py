"""Per-rule tests for repro.lint: every rule catches its seeded violation
and stays quiet on the conforming pattern — including the real repo code
each rule was written to protect.
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.lint import lint_source, rule_by_id
from repro.lint.engine import STATUS_SUPPRESSED

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PROD_PATH = "src/repro/core/synthetic.py"
FLEET_PATH = "src/repro/fleet/synthetic.py"


def run_rule(rule_id, source, path=PROD_PATH):
    findings = lint_source(textwrap.dedent(source), path,
                           rules=[rule_by_id(rule_id)])
    return [f for f in findings if f.rule == rule_id]


def run_rule_on_file(rule_id, relpath):
    full = os.path.join(REPO_ROOT, relpath)
    with open(full, "r", encoding="utf-8") as handle:
        source = handle.read()
    findings = lint_source(source, relpath, rules=[rule_by_id(rule_id)])
    return [f for f in findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# RL001 — descriptor emission
# ---------------------------------------------------------------------------

class TestRL001:
    def test_raw_struct_pack_write_outside_emitters(self):
        findings = run_rule("RL001", """\
            import struct

            def rogue_save(handle, a, b):
                handle.write(struct.pack("<II", a, b))
            """)
        assert [f.line for f in findings] == [4]
        assert "blessed emitters" in findings[0].message

    def test_struct_instance_pack_is_flagged(self):
        findings = run_rule("RL001", """\
            import struct

            _DESC = struct.Struct("<QQ8s")

            def encode(a, b, c):
                return _DESC.pack(a, b, c)
            """)
        assert [f.line for f in findings] == [6]

    def test_private_emitter_import_is_flagged(self):
        findings = run_rule("RL001", """\
            from repro.core.storage import _encode_frames_block
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [1]
        assert "_encode_frames_block" in findings[0].message

    def test_blessed_modules_are_exempt(self):
        source = """\
            import struct

            def emit(handle, a, b):
                handle.write(struct.pack("<II", a, b))
            """
        for blessed in ("src/repro/core/storage.py",
                        "src/repro/core/streaming.py"):
            assert run_rule("RL001", source, path=blessed) == []

    def test_text_writes_are_not_flagged(self):
        findings = run_rule("RL001", """\
            def export(handle, rows):
                handle.write("header\\n")
                for row in rows:
                    handle.write(str(row))
            """)
        assert findings == []

    def test_real_storage_and_streaming_are_clean(self):
        assert run_rule_on_file("RL001", "src/repro/core/storage.py") == []
        assert run_rule_on_file("RL001", "src/repro/core/streaming.py") == []
        assert run_rule_on_file("RL001", "src/repro/fleet/store.py") == []


# ---------------------------------------------------------------------------
# RL002 — durable writes
# ---------------------------------------------------------------------------

class TestRL002:
    def test_in_place_write_of_final_path(self):
        findings = run_rule("RL002", """\
            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
            """)
        assert [f.line for f in findings] == [2]
        assert "os.replace" in findings[0].message

    def test_temp_then_replace_is_conforming(self):
        findings = run_rule("RL002", """\
            import os

            def save(path, data):
                tmp = f"{path}.tmp"
                with open(tmp, "w") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            """)
        assert findings == []

    def test_replace_promotion_without_temp_name_is_conforming(self):
        findings = run_rule("RL002", """\
            import os

            def save(path, data):
                staging = path + ".partial"
                with open(staging, "w") as handle:
                    handle.write(data)
                os.replace(staging, path)
            """)
        assert findings == []

    def test_read_mode_is_ignored(self):
        assert run_rule("RL002", """\
            def load(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """) == []

    def test_outside_core_and_fleet_is_out_of_scope(self):
        assert run_rule("RL002", """\
            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
            """, path="src/repro/gui/export.py") == []

    def test_real_writers_are_clean(self):
        assert run_rule_on_file("RL002", "src/repro/core/storage.py") == []
        assert run_rule_on_file("RL002", "src/repro/core/streaming.py") == []
        assert run_rule_on_file("RL002", "src/repro/fleet/store.py") == []

    def test_faultfs_corruption_helpers_are_the_known_findings(self):
        findings = run_rule_on_file("RL002", "src/repro/core/faultfs.py")
        assert sorted(f.symbol for f in findings) == ["flip_bit",
                                                      "truncate_file"]


# ---------------------------------------------------------------------------
# RL003 — generation counter
# ---------------------------------------------------------------------------

_RL003_HEADER = textwrap.dedent("""\
    class Tree:
        def __init__(self):
            self._generation = 0
            self._dirty = {}
            self._cache = None

        def total(self):
            if self._cache is not None and self._cache[0] == self._generation:
                return self._cache[1]
            return 0

""")


def rl003_class(mutator):
    return _RL003_HEADER + textwrap.indent(textwrap.dedent(mutator), "    ")


class TestRL003:
    def test_unbumped_dirty_write(self):
        findings = run_rule("RL003", rl003_class("""\
            def attribute(self, node):
                self._dirty[id(node)] = node
            """))
        assert len(findings) == 1
        assert "Tree.attribute" in findings[0].message

    def test_unbumped_alias_write(self):
        findings = run_rule("RL003", rl003_class("""\
            def attribute(self, node):
                dirty = self._dirty
                dirty[id(node)] = node
            """))
        assert len(findings) == 1

    def test_unbumped_exclusive_mutation(self):
        findings = run_rule("RL003", rl003_class("""\
            def attribute(self, node, value):
                node.exclusive.add("time", value)
            """))
        assert len(findings) == 1
        assert "exclusive" in findings[0].message

    def test_direct_bump_is_conforming(self):
        findings = run_rule("RL003", rl003_class("""\
            def attribute(self, node):
                self._dirty[id(node)] = node
                self._generation += 1
            """))
        assert findings == []

    def test_transitive_bump_via_sibling_is_conforming(self):
        findings = run_rule("RL003", rl003_class("""\
            def attribute(self, node):
                self._dirty[id(node)] = node
                self._bump()

            def _bump(self):
                self._generation += 1
            """))
        assert findings == []

    def test_class_without_generation_cache_is_out_of_scope(self):
        findings = run_rule("RL003", """\
            class Plain:
                def __init__(self):
                    self._dirty = {}

                def attribute(self, node):
                    self._dirty[id(node)] = node
            """)
        assert findings == []

    def test_real_cct_is_clean(self):
        assert run_rule_on_file("RL003", "src/repro/core/cct.py") == []
        assert run_rule_on_file("RL003", "src/repro/core/database.py") == []


# ---------------------------------------------------------------------------
# RL004 — exception contract
# ---------------------------------------------------------------------------

class TestRL004:
    def test_raw_oserror_reraise(self):
        findings = run_rule("RL004", """\
            def load(path):
                try:
                    return path.read()
                except OSError:
                    raise
            """)
        assert [f.line for f in findings] == [5]
        assert "ProfileFormatError" in findings[0].message

    def test_raw_struct_error_in_tuple_rebound_and_reraised(self):
        findings = run_rule("RL004", """\
            import struct

            def decode(payload):
                try:
                    return struct.unpack("<I", payload)
                except (ValueError, struct.error) as error:
                    raise error
            """)
        assert [f.line for f in findings] == [7]

    def test_wrapping_is_conforming(self):
        findings = run_rule("RL004", """\
            from .storage import ProfileFormatError

            def load(path):
                try:
                    return path.read()
                except OSError as error:
                    raise ProfileFormatError(f"{path}: {error}") from error
            """)
        assert findings == []

    def test_unguarded_json_load(self):
        findings = run_rule("RL004", """\
            import json

            def load(handle):
                return json.load(handle)
            """)
        assert [f.line for f in findings] == [4]

    def test_guarded_json_load_is_conforming(self):
        findings = run_rule("RL004", """\
            import json

            def load(handle, path):
                try:
                    return json.load(handle)
                except ValueError as error:
                    raise RuntimeError(f"{path}: {error}") from None
            """)
        assert findings == []

    def test_outside_core_and_fleet_is_out_of_scope(self):
        assert run_rule("RL004", """\
            def load(path):
                try:
                    return path.read()
                except OSError:
                    raise
            """, path="src/repro/gui/export.py") == []

    def test_real_storage_and_store_are_clean(self):
        assert run_rule_on_file("RL004", "src/repro/core/storage.py") == []
        assert run_rule_on_file("RL004", "src/repro/fleet/store.py") == []
        assert run_rule_on_file("RL004", "src/repro/fleet/aggregate.py") == []


# ---------------------------------------------------------------------------
# RL005 — catalog lock
# ---------------------------------------------------------------------------

class TestRL005:
    def test_unlocked_catalog_write(self):
        findings = run_rule("RL005", """\
            import json

            def save(root, data):
                catalog_path = root + "/catalog.json"
                with open(catalog_path, "w") as handle:
                    json.dump(data, handle)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [5]
        assert "_CatalogLock" in findings[0].message

    def test_unlocked_replace_onto_catalog(self):
        findings = run_rule("RL005", """\
            import os

            def promote(tmp_path, root):
                os.replace(tmp_path, root + "/catalog.json")
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [4]

    def test_locked_write_is_conforming(self):
        findings = run_rule("RL005", """\
            import os

            def save(root, data, lock):
                with _CatalogLock(lock):
                    temp_path = root + "/catalog.json.tmp"
                    with open(temp_path, "w") as handle:
                        handle.write(data)
                    os.replace(temp_path, root + "/catalog.json")
            """, path=FLEET_PATH)
        assert findings == []

    def test_non_catalog_write_is_out_of_scope(self):
        assert run_rule("RL005", """\
            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
            """, path=FLEET_PATH) == []

    def test_real_store_is_clean(self):
        assert run_rule_on_file("RL005", "src/repro/fleet/store.py") == []


# ---------------------------------------------------------------------------
# RL006 — merged-view mutation
# ---------------------------------------------------------------------------

class TestRL006:
    def test_mutator_on_merged_view_node(self):
        findings = run_rule("RL006", """\
            def update(tree, obs):
                merged = tree.merged()
                node = merged.kernels[0]
                node.attribute(obs)
            """)
        assert [f.line for f in findings] == [4]

    def test_merged_node_passed_to_shard_attribute(self):
        findings = run_rule("RL006", """\
            def update(tree, shard, obs):
                node = tree.merged().find("kernel", "gemm")
                shard.attribute(node, obs)
            """)
        assert [f.line for f in findings] == [3]

    def test_metric_mutation_through_merged_accessor_chain(self):
        findings = run_rule("RL006", """\
            def update(tree):
                tree.merged().root.exclusive.add("time", 1.0)
            """)
        assert [f.line for f in findings] == [2]

    def test_taint_flows_through_loops(self):
        findings = run_rule("RL006", """\
            def update(tree, obs):
                for node in tree.merged().kernels:
                    node.attribute(obs)
            """)
        assert [f.line for f in findings] == [3]

    def test_reads_on_merged_view_are_conforming(self):
        findings = run_rule("RL006", """\
            def report(tree):
                merged = tree.merged()
                total = merged.total_metric("time")
                return total, [n.name for n in merged.kernels]
            """)
        assert findings == []

    def test_mutating_shard_nodes_is_conforming(self):
        findings = run_rule("RL006", """\
            def update(tree, obs):
                node = tree.kernels[0]
                node.attribute(obs)
            """)
        assert findings == []

    def test_real_sharded_tests_are_clean(self):
        assert run_rule_on_file("RL006", "tests/test_sharded_cct.py") == []
        assert run_rule_on_file("RL006", "src/repro/core/cct.py") == []


# ---------------------------------------------------------------------------
# RL007 — monkeypatching
# ---------------------------------------------------------------------------

class TestRL007:
    def test_module_attribute_assignment(self):
        findings = run_rule("RL007", """\
            import builtins

            def patch(fake):
                builtins.open = fake
            """)
        assert [f.line for f in findings] == [4]
        assert "builtins.open" in findings[0].message

    def test_setattr_on_module(self):
        findings = run_rule("RL007", """\
            import os

            def patch(fake):
                setattr(os, "replace", fake)
            """)
        assert [f.line for f in findings] == [4]

    def test_instance_attributes_are_conforming(self):
        findings = run_rule("RL007", """\
            import os

            class Holder:
                def __init__(self, fake):
                    self.replace = fake
                    self.os = None
            """)
        assert findings == []

    def test_faultfs_patch_is_suppressed_not_new(self):
        findings = run_rule_on_file("RL007", "src/repro/core/faultfs.py")
        assert len(findings) == 2
        assert all(f.status == STATUS_SUPPRESSED for f in findings)
        assert all(f.justification for f in findings)


# ---------------------------------------------------------------------------
# RL008 — fleet-index lock discipline
# ---------------------------------------------------------------------------

class TestRL008:
    def test_unlocked_index_write(self):
        findings = run_rule("RL008", """\
            import json

            def publish(root, names):
                index_path = root + "/index/names.json"
                with open(index_path, "w") as handle:
                    json.dump(names, handle)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [5]
        assert "_CatalogLock" in findings[0].message
        assert "index" in findings[0].message

    def test_unlocked_replace_onto_index(self):
        findings = run_rule("RL008", """\
            import os

            def promote(tmp_path, root):
                os.replace(tmp_path, root + "/index/runs/abc.json")
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [4]

    def test_taint_flows_through_assignment(self):
        findings = run_rule("RL008", """\
            import os

            def promote(store, payload):
                destination = store.index_dir + "/names.json"
                os.replace(payload, destination)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [5]

    def test_locked_write_is_conforming(self):
        findings = run_rule("RL008", """\
            import os

            def publish(root, data, lock):
                with _CatalogLock(lock):
                    temp_index_path = root + "/index/names.json.tmp"
                    with open(temp_index_path, "w") as handle:
                        handle.write(data)
                    os.replace(temp_index_path, root + "/index/names.json")
            """, path=FLEET_PATH)
        assert findings == []

    def test_non_index_write_is_out_of_scope(self):
        assert run_rule("RL008", """\
            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
            """, path=FLEET_PATH) == []

    def test_real_index_module_is_clean(self):
        assert run_rule_on_file("RL008", "src/repro/fleet/index.py") == []
        assert run_rule_on_file("RL008", "src/repro/fleet/store.py") == []


# ---------------------------------------------------------------------------
# RL009 — span discipline
# ---------------------------------------------------------------------------

class TestRL009:
    def test_unreported_clock_delta(self):
        findings = run_rule("RL009", """\
            import time

            def lap(work):
                start = time.monotonic()
                work()
                return time.monotonic() - start
            """)
        assert [f.line for f in findings] == [6]
        assert "repro.obs" in findings[0].message

    def test_delta_of_clock_assigned_names(self):
        findings = run_rule("RL009", """\
            import time

            def lap(work):
                start = time.perf_counter()
                work()
                end = time.perf_counter()
                return end - start
            """)
        assert [f.line for f in findings] == [7]

    def test_observed_delta_is_conforming(self):
        assert run_rule("RL009", """\
            import time

            from repro.obs import TELEMETRY

            def lap(work):
                start = time.monotonic()
                work()
                elapsed = time.monotonic() - start
                TELEMETRY.observe("lap.seconds", elapsed)
                return elapsed
            """) == []

    def test_relative_obs_import_is_conforming(self):
        assert run_rule("RL009", """\
            import time

            from ..obs import TELEMETRY

            def seal(work):
                start = time.time()
                work()
                TELEMETRY.observe("seal.seconds", time.time() - start)
            """, path=FLEET_PATH) == []

    def test_span_in_same_function_is_conforming(self):
        assert run_rule("RL009", """\
            import time

            from repro.obs import TELEMETRY

            def run(work):
                with TELEMETRY.span("run"):
                    start = time.monotonic()
                    work()
                return time.monotonic() - start
            """) == []

    def test_deadline_comparison_is_out_of_scope(self):
        assert run_rule("RL009", """\
            import time

            def expired(deadline):
                return time.monotonic() >= deadline
            """) == []

    def test_non_clock_subtraction_is_out_of_scope(self):
        assert run_rule("RL009", """\
            def width(lo, hi):
                return hi - lo
            """) == []

    def test_outside_instrumented_packages_is_out_of_scope(self):
        assert run_rule("RL009", """\
            import time

            def lap(work):
                start = time.monotonic()
                work()
                return time.monotonic() - start
            """, path="src/repro/framework/synthetic.py") == []

    def test_real_instrumented_seams_are_clean(self):
        for relpath in ("src/repro/core/streaming.py",
                        "src/repro/fleet/store.py",
                        "src/repro/experiments/runner.py"):
            assert run_rule_on_file("RL009", relpath) == []

    def test_profiler_carries_exactly_the_baselined_findings(self):
        findings = run_rule_on_file("RL009", "src/repro/core/profiler.py")
        assert sorted(f.symbol for f in findings) == [
            "DeepContextProfiler._metadata_snapshot",
            "DeepContextProfiler.maybe_checkpoint",
        ]


# ---------------------------------------------------------------------------
# RL010 — bounded poll
# ---------------------------------------------------------------------------

class TestRL010:
    def test_unbounded_sleep_loop_is_flagged(self):
        findings = run_rule("RL010", """\
            import os
            import time

            def wait_for(path):
                while not os.path.exists(path):
                    time.sleep(0.1)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [5]
        assert "unbounded polling loop" in findings[0].message

    def test_unbounded_event_wait_loop_is_flagged(self):
        findings = run_rule("RL010", """\
            def pump(stop, work):
                while True:
                    work()
                    stop.wait(1.0)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [2]

    def test_infinite_generator_with_sleep_is_flagged(self):
        findings = run_rule("RL010", """\
            import itertools
            import time

            def pump(work):
                for tick in itertools.count():
                    work(tick)
                    time.sleep(0.5)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [5]

    def test_deadline_comparison_bounds_the_loop(self):
        assert run_rule("RL010", """\
            import os
            import time

            def wait_for(path, timeout_s):
                deadline = time.monotonic() + timeout_s
                while not os.path.exists(path):
                    if time.monotonic() >= deadline:
                        raise TimeoutError(path)
                    time.sleep(0.1)
            """, path=FLEET_PATH) == []

    def test_derived_deadline_name_bounds_the_loop(self):
        # ``deadline`` is arithmetic on a clock-derived local, compared
        # against a plain name inside the loop — still a deadline check.
        assert run_rule("RL010", """\
            import time

            def wait_for(ready, timeout_s):
                started = time.monotonic()
                deadline = started + timeout_s
                while not ready():
                    now = time.monotonic()
                    if now >= deadline:
                        return False
                    time.sleep(0.05)
                return True
            """, path=FLEET_PATH) == []

    def test_counter_comparison_bounds_the_loop(self):
        assert run_rule("RL010", """\
            import time

            def wait_for(ready, attempts_max):
                attempts = 0
                while attempts < attempts_max:
                    if ready():
                        return True
                    attempts += 1
                    time.sleep(0.1)
                return False
            """, path=FLEET_PATH) == []

    def test_finite_for_loop_with_sleep_is_fine(self):
        assert run_rule("RL010", """\
            import time

            def wait_for(ready):
                for attempt in range(50):
                    if ready():
                        return True
                    time.sleep(0.1)
                return False
            """, path=FLEET_PATH) == []

    def test_loop_without_blocking_is_out_of_scope(self):
        assert run_rule("RL010", """\
            def drain(queue):
                while queue:
                    queue.pop()
            """, path=FLEET_PATH) == []

    def test_outside_instrumented_packages_is_out_of_scope(self):
        assert run_rule("RL010", """\
            import time

            def wait_forever(ready):
                while not ready():
                    time.sleep(0.1)
            """, path="src/repro/framework/synthetic.py") == []

    def test_nested_function_does_not_bound_the_outer_loop(self):
        # The deadline comparison lives in a callback defined inside the
        # loop, not in the loop's own control flow — still unbounded.
        findings = run_rule("RL010", """\
            import time

            def pump(work, deadline):
                while True:
                    def check():
                        return time.monotonic() >= deadline
                    work(check)
                    time.sleep(0.5)
            """, path=FLEET_PATH)
        assert [f.line for f in findings] == [4]

    def test_real_poll_loops_are_clean(self):
        for relpath in ("src/repro/fleet/store.py",
                        "src/repro/fleet/watcher.py",
                        "src/repro/obs/timeseries.py"):
            assert run_rule_on_file("RL010", relpath) == []


# ---------------------------------------------------------------------------
# The real gate: the repo itself, against the committed baseline
# ---------------------------------------------------------------------------

class TestRepoGate:
    def test_repo_lints_clean_against_committed_baseline(self, monkeypatch,
                                                         capsys):
        from repro.lint.cli import main
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src", "tests", "--baseline",
                     "lint-baseline.json"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_seeded_violation_fails_with_rule_id_and_location(self, tmp_path):
        rogue_dir = tmp_path / "src" / "repro" / "fleet"
        rogue_dir.mkdir(parents=True)
        rogue = rogue_dir / "rogue.py"
        rogue.write_text(textwrap.dedent("""\
            import struct

            def leak(handle, offset, length):
                handle.write(struct.pack("<QQ8s", offset, length, b"x" * 8))
            """))
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path / "src"),
             "--no-baseline", "--format", "json"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["summary"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL001"
        assert finding["path"].endswith("src/repro/fleet/rogue.py")
        assert finding["line"] == 4

    def test_deleting_a_baseline_entry_fails_the_gate(self, tmp_path,
                                                      monkeypatch, capsys):
        from repro.lint.cli import main
        monkeypatch.chdir(REPO_ROOT)
        with open("lint-baseline.json", "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["entries"], "baseline must not be empty"
        trimmed = {"version": payload["version"],
                   "entries": payload["entries"][1:]}
        baseline = tmp_path / "trimmed.json"
        baseline.write_text(json.dumps(trimmed))
        assert main(["src", "tests", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        dropped = payload["entries"][0]
        assert dropped["rule"] in out
        assert dropped["path"] in out
