"""Regression tests for the GPU correlation-ID lifecycle.

Two bugs are pinned here.  First, the collector used to ``release()`` a
correlation as soon as its activity record was attributed, so instruction
samples for the same correlation delivered afterwards (the activity buffer can
fill and flush *mid-launch*, before the exit-time sample delivery) resolved to
``None`` and were silently dropped — and miscounted as ``unresolved``.
Second, sample-only correlations were resolved but never released, so they
accumulated in ``CorrelationRegistry._pending`` for the life of the run.  The
fixed lifecycle marks each delivery attributed, releases an entry once both
sides have been seen (or the counterpart can never come), and sweeps the
remaining tombstones after the final flush in ``stop()``.
"""


from repro.core import (
    CorrelationRegistry,
    DeepContextProfiler,
    ProfilerConfig,
)
from repro.core import metrics as M
from repro.core.cct import CallingContextTree
from repro.dlmonitor.callpath import CallPath, gpu_kernel_frame, root_frame
from repro.framework import EagerEngine, modules, tensor
from repro.framework import functional as F


def _registry_with(node, *correlation_ids):
    registry = CorrelationRegistry()
    for correlation_id in correlation_ids:
        registry.register(correlation_id, node, kernel_name=f"k{correlation_id}")
    return registry


def _node():
    tree = CallingContextTree("correlations")
    return tree.insert(CallPath.of([root_frame("correlations"),
                                    gpu_kernel_frame("kernel")]))


class TestRegistryTombstones:
    def test_attributed_entry_stays_resolvable_until_released(self):
        registry = _registry_with(_node(), 1)
        pending = registry.resolve(1)
        pending.activity_attributed = True
        # Still resolvable: the sample side has not been attributed yet.
        assert registry.resolve(1) is pending
        assert registry.unresolved == 0
        registry.release(1)
        assert registry.pending_count == 0

    def test_sweep_frees_only_attributed_entries(self):
        registry = _registry_with(_node(), 1, 2, 3)
        registry.resolve(1).activity_attributed = True
        registry.resolve(2).samples_attributed = True
        swept = registry.sweep_attributed()
        assert swept == 2
        assert registry.swept == 2
        # The never-attributed entry survives as a diagnostic signal.
        assert registry.pending_count == 1
        assert registry.resolve(3) is not None

    def test_attributed_property_tracks_either_side(self):
        registry = _registry_with(_node(), 1)
        pending = registry.resolve(1)
        assert not pending.attributed
        pending.samples_attributed = True
        assert pending.attributed


def _profile_tiny_training(config, iterations=2):
    engine = EagerEngine("a100")
    profiler = DeepContextProfiler(engine, config)
    with engine, profiler.profile():
        model = modules.Sequential(modules.Conv2d(3, 4), modules.ReLU(), name="net")
        loss_fn = modules.CrossEntropyLoss()
        for _ in range(iterations):
            x = tensor((2, 3, 16, 16))
            y = tensor((2,), dtype="int64")
            features = model(x)
            pooled = F.avg_pool2d(features, kernel_size=features.shape[-1])
            flat = F.reshape(pooled, (pooled.shape[0], pooled.shape[1]))
            loss = loss_fn(flat, y)
            engine.backward(loss)
            profiler.mark_iteration()
        engine.synchronize()
        mid_run_pending = profiler.correlations.pending_count
    return engine, profiler, mid_run_pending


class TestCollectorLifecycle:
    def test_samples_survive_mid_launch_buffer_flush(self):
        # A 1-record activity buffer flushes during the launch, *before* the
        # exit-time sample delivery — the order that used to drop samples.
        config = ProfilerConfig(program_name="lifecycle", pc_sampling=True,
                                activity_buffer_size=1, collect_cpu_time=False,
                                collect_native=False)
        engine, profiler, _ = _profile_tiny_training(config)
        collector = profiler.gpu_collector
        assert collector.samples_attributed > 0
        assert profiler.correlations.unresolved == 0
        tree = profiler.database.tree
        assert tree.root.inclusive.sum(M.METRIC_INSTRUCTION_SAMPLES) > 0

    def test_registry_drained_after_stop(self):
        config = ProfilerConfig(program_name="lifecycle", pc_sampling=True,
                                activity_buffer_size=1, collect_cpu_time=False,
                                collect_native=False)
        _, profiler, _ = _profile_tiny_training(config)
        assert profiler.correlations.pending_count == 0
        assert profiler.correlations.registered > 0

    def test_pending_bounded_during_the_run(self):
        # With a tiny buffer every correlation's deliveries complete within
        # (or right after) its launch, and kernels whose sample batch came up
        # empty are drained at the next GPU API callback — so the registry
        # holds at most the in-flight tail mid-run, not the run's history.
        config = ProfilerConfig(program_name="lifecycle", pc_sampling=True,
                                activity_buffer_size=1, collect_cpu_time=False,
                                collect_native=False)
        engine, profiler, mid_run_pending = _profile_tiny_training(config, iterations=4)
        assert profiler.correlations.registered > 40
        assert mid_run_pending <= 4
        assert profiler.correlations.pending_count == 0  # swept at stop()

    def test_buffer_size_restored_after_stop(self):
        config = ProfilerConfig(program_name="lifecycle", activity_buffer_size=1,
                                collect_cpu_time=False, collect_native=False)
        engine, profiler, _ = _profile_tiny_training(config)
        # The profiler applied its own size during the run, then put the
        # runtime's original configuration back.
        assert engine.runtime.activity.buffer_size == 512

    def test_activity_only_config_still_releases_promptly(self):
        # Without PC sampling no samples can ever arrive: activity attribution
        # releases immediately (the pre-existing fast path).
        config = ProfilerConfig(program_name="lifecycle", pc_sampling=False,
                                activity_buffer_size=1, collect_cpu_time=False,
                                collect_native=False)
        _, profiler, mid_run_pending = _profile_tiny_training(config)
        assert profiler.correlations.pending_count == 0
        assert mid_run_pending == 0
        assert profiler.correlations.unresolved == 0
