"""Tests for the baseline (trace-based) profilers and the evaluation workloads."""

import json

import pytest

from repro.baselines import JaxProfilerBaseline, TorchProfilerBaseline, TraceBuffer, TraceEvent, baseline_for
from repro.framework import EagerEngine
from repro.framework.jit import JitCompiler, jit
from repro.workloads import SMALL_CONFIGS, create_workload, workload_names
from repro.workloads.base import Workload


class TestTraceBuffer:
    def test_event_size_and_chrome_format(self):
        event = TraceEvent(name="aten::relu", category="cpu_op", phase="B",
                           timestamp_us=1.0, args={"seq": 1})
        assert event.approximate_size_bytes() > 300
        chrome = event.to_chrome()
        assert chrome["ph"] == "B" and "dur" not in chrome
        complete = TraceEvent(name="k", category="kernel", phase="X",
                              timestamp_us=0.0, duration_us=5.0)
        assert complete.to_chrome()["dur"] == 5.0

    def test_buffer_grows_and_exports(self, tmp_path):
        buffer = TraceBuffer()
        for index in range(10):
            buffer.append(TraceEvent(name=f"op{index}", category="cpu_op", phase="B",
                                     timestamp_us=float(index)))
        assert len(buffer) == 10 and buffer.size_bytes > 3000
        path = buffer.export(str(tmp_path / "trace.json"))
        with open(path) as handle:
            data = json.load(handle)
        assert len(data["traceEvents"]) == 10

    def test_memory_limit_triggers_oom_on_export(self, tmp_path):
        buffer = TraceBuffer(memory_limit_bytes=500)
        for index in range(10):
            buffer.append(TraceEvent(name="x" * 50, category="cpu_op", phase="B",
                                     timestamp_us=float(index)))
        assert buffer.out_of_memory
        with pytest.raises(MemoryError):
            buffer.export(str(tmp_path / "trace.json"))


class TestBaselineProfilers:
    def _run(self, baseline_cls, iterations=2):
        engine = EagerEngine("a100")
        baseline = baseline_cls(engine)
        workload = create_workload("resnet", small=True)
        with engine:
            workload.build(engine)
            baseline.start()
            for iteration in range(iterations):
                workload.run_iteration(engine, iteration)
            engine.synchronize()
            baseline.stop()
        return engine, baseline

    def test_records_every_op_and_kernel(self):
        engine, baseline = self._run(TorchProfilerBaseline)
        categories = {event.category for event in baseline.buffer.events}
        assert {"cpu_op", "kernel"} <= categories
        op_begins = sum(1 for e in baseline.buffer.events
                        if e.category == "cpu_op" and e.phase == "B")
        assert op_begins == engine.op_count
        kernel_events = [e for e in baseline.buffer.events if e.category == "kernel"]
        assert len(kernel_events) == engine.kernel_launches

    def test_trace_grows_linearly_with_iterations(self):
        _engine, short = self._run(TorchProfilerBaseline, iterations=1)
        _engine, long = self._run(TorchProfilerBaseline, iterations=3)
        assert long.memory_bytes() > 2.5 * short.memory_bytes()

    def test_jax_profiler_records_no_framework_metadata(self):
        _engine, baseline = self._run(JaxProfilerBaseline)
        assert all(not event.args for event in baseline.buffer.events
                   if event.category == "xla_op")
        assert not baseline.features["framework_context"]

    def test_baseline_for_selects_by_mode(self):
        engine = EagerEngine("a100")
        assert isinstance(baseline_for(engine, "eager"), TorchProfilerBaseline)
        assert isinstance(baseline_for(engine, "jit"), JaxProfilerBaseline)

    def test_stop_detaches(self):
        engine, baseline = self._run(TorchProfilerBaseline, iterations=1)
        events_before = len(baseline.buffer)
        with engine:
            create_workload("resnet", small=True)
        assert len(baseline.buffer) == events_before


class TestWorkloads:
    def test_registry_contains_all_ten_paper_workloads(self):
        assert len(workload_names()) == 10
        assert set(SMALL_CONFIGS) == set(workload_names())

    def test_aliases_and_errors(self):
        assert create_workload("DLRM-small", small=True).name == "DLRM-small"
        assert create_workload("Llama3-8B", small=True).name == "Llama3-8B"
        with pytest.raises(KeyError):
            create_workload("alexnet")

    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_runs_in_eager_mode(self, name):
        engine = EagerEngine("a100")
        workload = create_workload(name, small=True)
        assert isinstance(workload, Workload)
        with engine:
            workload.build(engine)
            workload.run_iteration(engine, 0)
            engine.synchronize()
        assert engine.kernel_launches > 10
        assert engine.elapsed_real_time() > 0
        assert workload.parameter_bytes() > 0
        assert workload.approximate_footprint_bytes() > workload.parameter_bytes()

    @pytest.mark.parametrize("name", ["dlrm", "unet", "gnn", "resnet", "llama3"])
    def test_selected_workloads_run_in_jit_mode(self, name):
        engine = EagerEngine("a100")
        workload = create_workload(name, small=True)
        with engine:
            workload.build(engine)
            compiled = jit(workload.step_fn(engine), engine=engine,
                           with_grad=workload.training, compiler=JitCompiler(engine))
            compiled(*workload.make_batch(engine, 0))
            engine.synchronize()
        assert engine.kernel_launches > 0
        assert compiled.graph is not None and compiled.graph.compiled

    def test_workloads_run_on_amd_device(self):
        engine = EagerEngine("mi250")
        workload = create_workload("unet", small=True)
        with engine:
            workload.build(engine)
            workload.run_iteration(engine, 0)
            engine.synchronize()
        assert engine.kernel_launches > 10

    def test_dlrm_index_variant_switches_operator(self):
        ops = set()
        engine = EagerEngine("a100")
        engine.add_global_callback(lambda info: ops.add(info.op_name))
        with engine:
            workload = create_workload("dlrm", small=True, use_index_select=True)
            workload.build(engine)
            workload.run_iteration(engine, 0)
        assert "aten::index_select" in ops and "aten::index" not in ops

    def test_llm_inference_records_no_tape(self):
        engine = EagerEngine("a100")
        workload = create_workload("nanogpt", small=True)
        with engine:
            workload.build(engine)
            workload.run_iteration(engine, 0)
        assert len(engine.tape) == 0
        assert not workload.training
