"""Tests for the streaming profile pipeline.

Four guarantees are pinned here:

* **Append-then-reseal**: every sealed prefix of a streamed file is a valid
  ``cct-binary-v1`` profile; clean shards are skipped (generation counters),
  metric-only changes reuse the sealed frame table, and the closing seal
  compacts superseded blocks without changing what queries see.

* **Crash recovery**: truncating a streamed file anywhere past the first
  seal recovers — via ``recover_profile`` — exactly the last checkpoint that
  sealed before the cut, with bit-for-bit equal Welford states (hypothesis
  property over random observation rounds and truncation offsets).

* **Live attach**: ``LazyProfileView.attach`` opens the newest seal of a
  file that is still being appended to; ``refresh`` follows new seals and
  survives compaction.

* **Integration**: ``ProfilerConfig.checkpoint_path`` drives automatic
  checkpoints from ``DeepContextProfiler`` / ``experiments.runner``.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    LazyProfileView,
    ProfileDatabase,
    ProfileFormatError,
    ProfilerConfig,
    StreamingProfileWriter,
    detect_format,
    recover_profile,
)
from repro.core import metrics as M
from repro.core.cct import CallingContextTree, ShardedCallingContextTree
from repro.core.faultfs import (
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    short_read,
    torn_write,
)
from repro.core.streaming import completion_marker_path, is_marked_complete
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)

THREAD_NAMES = {1: "main", 2: "backward-0", 3: "worker-0"}


def _path(tid: int, module: str, kernel: str) -> CallPath:
    return CallPath.of([
        root_frame("stream"), thread_frame(THREAD_NAMES[tid], tid),
        python_frame("train.py", 10 + tid, "train_step"),
        framework_frame(f"aten::{module}"),
        gpu_kernel_frame(kernel),
    ])


def _observe(tree: ShardedCallingContextTree, tid: int, module: str,
             kernel: str, gpu_time: float) -> None:
    shard = tree.shard_for_tid(tid, thread_name=THREAD_NAMES[tid])
    node = shard.insert(_path(tid, module, kernel))
    shard.attribute_many(node, {M.METRIC_GPU_TIME: gpu_time,
                                M.METRIC_KERNEL_COUNT: 1.0})


def _state_snapshot(tree):
    """Per-shard, path-keyed exclusive aggregate states (exact tuples)."""
    shards = tree.shards() if hasattr(tree, "shards") else {0: tree}
    snapshot = {}
    for tid, shard in shards.items():
        for node in shard.all_nodes():
            key = (tid,) + tuple(n.frame.identity()
                                 for n in node.path_from_root())
            states = {name: aggregate.state()
                      for name, aggregate in node.exclusive.items()
                      if aggregate.count}
            if states:
                snapshot[key] = states
    return snapshot


def _recovered_snapshot(database):
    tree = database.tree
    hydrated = tree.hydrate() if isinstance(tree, LazyProfileView) else tree
    return _state_snapshot(hydrated)


class TestCheckpointing:
    def test_every_sealed_prefix_is_a_valid_profile(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        prefixes = []
        for _step, (tid, module, kernel, value) in enumerate([
                (1, "conv", "k0", 1.0), (2, "norm", "k1", 2.0),
                (1, "linear", "k0", 0.5), (3, "conv", "k1", 4.0)]):
            _observe(tree, tid, module, kernel, value)
            writer.checkpoint()
            blob = open(writer.path, "rb").read()
            prefixes.append((blob, _state_snapshot(tree)))
        for index, (blob, expected) in enumerate(prefixes):
            prefix_path = str(tmp_path / f"prefix{index}.cctb")
            with open(prefix_path, "wb") as handle:
                handle.write(blob)
            assert detect_format(prefix_path) == "cct-binary-v1"
            restored = ProfileDatabase.load(prefix_path)
            assert _recovered_snapshot(restored) == expected

    def test_clean_shards_are_skipped(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        for tid in (1, 2, 3):
            _observe(tree, tid, "conv", "k0", float(tid))
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        first = writer.checkpoint()
        assert first.dirty_shards == 3
        _observe(tree, 2, "norm", "k1", 9.0)  # dirties only shard 2
        second = writer.checkpoint()
        assert second.dirty_shards == 1
        assert second.clean_shards == 2
        assert second.bytes_appended < first.bytes_appended
        restored = ProfileDatabase.load(writer.path)
        assert _recovered_snapshot(restored) == _state_snapshot(tree)

    def test_metric_only_checkpoint_reuses_the_frame_table(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        writer.checkpoint()
        shard = tree.shard_for_tid(1)
        shard.attribute(shard.kernels[0], M.METRIC_GPU_TIME, 2.5)
        stats = writer.checkpoint()
        assert stats.dirty_shards == 1
        assert stats.frames_blocks == 0  # no structural change: table reused
        assert stats.column_blocks > 0
        _observe(tree, 1, "linear", "k1", 0.5)  # structural change
        stats = writer.checkpoint()
        assert stats.frames_blocks == 1
        restored = ProfileDatabase.load(writer.path)
        assert _recovered_snapshot(restored) == _state_snapshot(tree)

    def test_untouched_tree_reseal_appends_only_meta_and_toc(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        writer.checkpoint()
        stats = writer.checkpoint()
        assert stats.dirty_shards == 0
        assert stats.clean_shards == 1
        assert stats.frames_blocks == stats.column_blocks == 0

    def test_single_tree_streams_as_degenerate_shard(self, tmp_path):
        tree = CallingContextTree("single")
        node = tree.insert(_path(1, "conv", "k0"))
        tree.attribute(node, M.METRIC_GPU_TIME, 3.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        writer.checkpoint()
        writer.close()
        restored = ProfileDatabase.load(writer.path)
        assert isinstance(restored.tree.hydrate(), CallingContextTree)
        assert restored.total_gpu_time() == pytest.approx(3.0)

    def test_new_writer_preserves_existing_profile_until_first_seal(
            self, tmp_path):
        # A restart pointing at the same checkpoint_path must not destroy
        # the crashed run's recoverable profile before replacing it with a
        # valid one: the stream stages in a temp file and promotes on seal.
        path = str(tmp_path / "s.cctb")
        old_tree = ShardedCallingContextTree("previous-run")
        _observe(old_tree, 1, "conv", "k0", 7.0)
        old_writer = StreamingProfileWriter(ProfileDatabase(old_tree), path)
        old_writer.checkpoint()
        old_writer._handle.close()  # crash: no closing seal

        new_tree = ShardedCallingContextTree("restart")
        writer = StreamingProfileWriter(ProfileDatabase(new_tree), path)
        # Before the restart's first seal, the old profile is still there.
        recovered = recover_profile(path)
        assert recovered.total_gpu_time() == pytest.approx(7.0)
        old_view = LazyProfileView.attach(path)
        _observe(new_tree, 2, "norm", "k1", 1.0)
        writer.checkpoint()  # promotes the new stream over the path
        assert ProfileDatabase.load(path).total_gpu_time() == pytest.approx(1.0)
        # The reader attached to the old inode keeps working (never SIGBUSed
        # by an in-place truncate) until it refreshes onto the new file.
        assert old_view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(7.0)
        assert old_view.refresh() is True
        assert old_view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)
        writer.close()

    def test_closed_writer_rejects_checkpoints(self, tmp_path):
        writer = StreamingProfileWriter(
            ProfileDatabase(ShardedCallingContextTree("stream")),
            str(tmp_path / "s.cctb"))
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.checkpoint()

    def test_close_compacts_superseded_blocks(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        for round_index in range(6):
            _observe(tree, 1, "conv", f"k{round_index}", 1.0)
            writer.checkpoint()
        streamed_bytes = os.path.getsize(writer.path)
        expected = _state_snapshot(tree)
        writer.close(compact=True)
        compacted_bytes = os.path.getsize(writer.path)
        assert compacted_bytes < streamed_bytes
        assert writer.superseded_bytes == 0
        restored = ProfileDatabase.load(writer.path)
        assert _recovered_snapshot(restored) == expected
        # A compacted file decodes to the same profile a fresh one-shot save
        # of the live tree produces (the TOCs differ — e.g. the streamed
        # "seal" key survives compaction — but every block payload is live).
        reference = str(tmp_path / "ref.cctb")
        ProfileDatabase(tree).save(reference, format="cct-binary-v1")
        loaded_reference = ProfileDatabase.load(reference)
        assert _recovered_snapshot(loaded_reference) == expected
        compacted_blocks = sum(
            int(shard.entry["frames"]["length"])
            + sum(int(d["length"]) for d in shard.entry["columns"].values())
            for shard in restored.tree._shards.values())
        reference_blocks = sum(
            int(shard.entry["frames"]["length"])
            + sum(int(d["length"]) for d in shard.entry["columns"].values())
            for shard in loaded_reference.tree._shards.values())
        assert compacted_blocks == reference_blocks  # no dead bytes kept


class TestCrashRecovery:
    def _stream(self, tmp_path, rounds):
        """Stream one checkpoint per round; returns (path, [(seal_end,
        snapshot)])."""
        tree = ShardedCallingContextTree("stream")
        path = str(tmp_path / "s.cctb")
        writer = StreamingProfileWriter(ProfileDatabase(tree), path)
        seals = []
        for observations in rounds:
            for tid, module, kernel, value in observations:
                _observe(tree, tid, module, kernel, value)
            stats = writer.checkpoint()
            seals.append((stats.file_bytes, _state_snapshot(tree)))
        writer._handle.close()  # simulate a crash: no closing seal/compaction
        return path, seals

    def test_truncated_tail_recovers_previous_seal(self, tmp_path):
        path, seals = self._stream(tmp_path, [
            [(1, "conv", "k0", 1.0)], [(2, "norm", "k1", 2.0)],
            [(1, "linear", "k0", 0.5)]])
        blob = open(path, "rb").read()
        cut = seals[1][0] + 7  # mid-append of checkpoint 2's blocks
        truncated = str(tmp_path / "t.cctb")
        with open(truncated, "wb") as handle:
            handle.write(blob[:cut])
        with pytest.raises(ProfileFormatError, match="truncated"):
            ProfileDatabase.load(truncated)  # strict load refuses
        recovered = recover_profile(truncated)
        assert isinstance(recovered.tree, LazyProfileView)
        assert recovered.tree.seal_end == seals[1][0]
        assert _recovered_snapshot(recovered) == seals[1][1]

    def test_no_complete_seal_raises(self, tmp_path):
        path, seals = self._stream(tmp_path, [[(1, "conv", "k0", 1.0)]])
        blob = open(path, "rb").read()
        for cut in (48, seals[0][0] - 1):  # past the magic, before seal 0 ends
            truncated = str(tmp_path / f"t{cut}.cctb")
            with open(truncated, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(ProfileFormatError, match="no intact sealed"):
                recover_profile(truncated)

    def test_recover_rejects_non_binary_files(self, tmp_path):
        garbage = tmp_path / "g.bin"
        garbage.write_bytes(b"\x01\x02\x03 definitely not a binary profile, "
                            b"padded well past the minimum tail size")
        with pytest.raises(ProfileFormatError, match="magic"):
            recover_profile(str(garbage))
        stub = tmp_path / "stub.bin"
        stub.write_bytes(b"\x01\x02\x03")
        with pytest.raises(ProfileFormatError, match="too short"):
            recover_profile(str(stub))

    rounds_strategy = st.lists(
        st.lists(
            st.tuples(st.sampled_from([1, 2, 3]),
                      st.sampled_from(["conv", "linear", "norm"]),
                      st.sampled_from(["k0", "k1"]),
                      st.floats(min_value=0.0, max_value=1.0,
                                allow_nan=False)),
            min_size=0, max_size=6),
        min_size=1, max_size=5)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_truncate_anywhere_recovers_last_sealed_checkpoint(self, data):
        import shutil
        import tempfile

        rounds = data.draw(self.rounds_strategy)
        directory = tempfile.mkdtemp(prefix="stream-recovery-")
        try:
            from pathlib import Path
            path, seals = self._stream(Path(directory), rounds)
            file_bytes = os.path.getsize(path)
            assert file_bytes == seals[-1][0]  # crash wrote nothing extra
            cut = data.draw(st.integers(min_value=seals[0][0],
                                        max_value=file_bytes),
                            label="truncation offset")
            truncated = os.path.join(directory, "t.cctb")
            shutil.copyfile(path, truncated)
            with open(truncated, "r+b") as handle:
                handle.truncate(cut)
            recovered = recover_profile(truncated)
            expected_end, expected_snapshot = max(
                (seal for seal in seals if seal[0] <= cut),
                key=lambda seal: seal[0])
            assert recovered.tree.seal_end == expected_end
            # Bit-for-bit: binary columns round-trip exact Welford states.
            assert _recovered_snapshot(recovered) == expected_snapshot
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestLiveAttach:
    def test_attach_follows_a_growing_stream(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        writer.checkpoint()
        view = LazyProfileView.attach(writer.path)
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)

        _observe(tree, 2, "norm", "k1", 2.0)
        writer.checkpoint()
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)
        assert view.refresh() is True
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(3.0)
        assert view.shard_count() == 2
        assert view.refresh() is False  # no new seal since

    def test_attach_tolerates_partial_append_in_flight(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        stats = writer.checkpoint()
        # Simulate a half-flushed append after the seal (writer mid-block).
        with open(writer.path, "ab") as handle:
            handle.write(b"\x00" * 129)
        view = LazyProfileView.attach(writer.path)
        assert view.seal_end == stats.file_bytes
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)

    def test_refresh_survives_compaction(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        writer.checkpoint()
        _observe(tree, 1, "linear", "k1", 2.0)
        writer.checkpoint()
        view = LazyProfileView.attach(writer.path)
        view.aggregate_by_name(metric=M.METRIC_GPU_TIME)  # decode something
        writer.close(compact=True)  # replaces the file with a compacted one
        assert view.refresh() is True
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(3.0)
        assert _recovered_snapshot(
            ProfileDatabase(view)) == _state_snapshot(tree)

    def test_refresh_reuses_unchanged_shard_decodes(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        _observe(tree, 2, "norm", "k1", 2.0)
        writer = StreamingProfileWriter(ProfileDatabase(tree),
                                        str(tmp_path / "s.cctb"))
        writer.checkpoint()
        view = LazyProfileView.attach(writer.path)
        view.shard_aggregate_by_name(1, metric=M.METRIC_GPU_TIME)
        assert view.decoded_shard_ids() == {1}
        _observe(tree, 2, "conv", "k0", 4.0)  # shard 1 untouched
        writer.checkpoint()
        assert view.refresh() is True
        # Shard 1's blocks were carried forward: its decode is still warm.
        assert view.decoded_shard_ids() == {1}
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(7.0)


class TestRefreshRacingWriter:
    """An attached view racing the writer's reseal must degrade, not crash.

    The fleet watcher polls :meth:`LazyProfileView.refresh` against files a
    producer may be tearing that very moment; these tests drive the race
    through the fault injector instead of hand-crafted garbage.
    """

    def test_torn_reseal_degrades_to_last_sealed_prefix(self, tmp_path):
        # Dry run: how many writes does the first checkpoint take?
        dry_dir = tmp_path / "dry"
        dry_dir.mkdir()
        dry = FaultPlan()
        with FaultInjector(dry_dir, dry):
            tree = ShardedCallingContextTree("stream")
            _observe(tree, 1, "conv", "k0", 1.0)
            writer = StreamingProfileWriter(
                ProfileDatabase(tree), os.path.join(str(dry_dir), "s.cctb"))
            writer.checkpoint()
        first_checkpoint_writes = dry.counts["write"]

        # Real run: the producer dies on a torn write two appends into its
        # second checkpoint, leaving a torn tail past the first seal.
        workdir = tmp_path / "torn"
        workdir.mkdir()
        path = os.path.join(str(workdir), "s.cctb")
        plan = FaultPlan([torn_write(first_checkpoint_writes + 2, keep=5)])
        tree = ShardedCallingContextTree("stream")
        with FaultInjector(workdir, plan):
            _observe(tree, 1, "conv", "k0", 1.0)
            writer = StreamingProfileWriter(ProfileDatabase(tree), path)
            writer.checkpoint()
            sealed = _state_snapshot(tree)
            view = LazyProfileView.attach(path)
            assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)
            _observe(tree, 2, "norm", "k1", 2.0)
            with pytest.raises(InjectedCrash):
                writer.checkpoint()
        assert plan.tripped

        # The watcher's next poll: refresh sees the torn tail, recovers the
        # first seal, and keeps serving it — no advance, no exception.
        assert view.refresh() is False
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)
        assert _recovered_snapshot(ProfileDatabase(view)) == sealed

    def test_short_read_mid_refresh_probe_degrades(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        path = str(tmp_path / "s.cctb")
        writer = StreamingProfileWriter(ProfileDatabase(tree), path)
        writer.checkpoint()
        view = LazyProfileView.attach(path)

        # The idle-poll probe read comes back short: the fast path cannot
        # trust its tail compare, so refresh falls through to the full
        # recovering reopen — and still answers "no new seal" quietly.
        plan = FaultPlan([short_read(1, keep=4, match="s.cctb")])
        with FaultInjector(str(tmp_path), plan):
            assert view.refresh() is False
        assert plan.tripped
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(1.0)

        # With the fault spent, later polls still follow real seals.
        _observe(tree, 2, "norm", "k1", 2.0)
        writer.checkpoint()
        assert view.refresh() is True
        assert view.total_metric(M.METRIC_GPU_TIME) == pytest.approx(3.0)
        writer.close()

    def test_idle_refresh_fast_path_answers_from_the_tail(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        path = str(tmp_path / "s.cctb")
        writer = StreamingProfileWriter(ProfileDatabase(tree), path)
        writer.checkpoint()
        view = LazyProfileView.attach(path)

        # An unchanged file is answered with one stat + one tail read — the
        # operation counters show no second open (the full reopen would
        # re-open the file and mmap it again).
        plan = FaultPlan()
        with FaultInjector(str(tmp_path), plan):
            for _ in range(3):
                assert view.refresh() is False
        assert plan.counts.get("read", 0) == 3  # one probe per idle poll
        writer.close()


class TestCompletionMarker:
    def test_close_mark_complete_writes_sidecar(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        path = str(tmp_path / "s.cctb")
        writer = StreamingProfileWriter(ProfileDatabase(tree), path)
        writer.checkpoint()
        assert not is_marked_complete(path)
        writer.close(mark_complete=True)
        assert is_marked_complete(path)
        payload = json.load(open(completion_marker_path(path)))
        assert payload["profile"] == os.path.basename(path)
        assert payload["checkpoints"] >= 1
        assert payload["completed_at"] > 0

    def test_plain_close_leaves_no_marker(self, tmp_path):
        tree = ShardedCallingContextTree("stream")
        _observe(tree, 1, "conv", "k0", 1.0)
        path = str(tmp_path / "s.cctb")
        writer = StreamingProfileWriter(ProfileDatabase(tree), path)
        writer.checkpoint()
        writer.close()
        assert not is_marked_complete(path)

    def test_crashed_run_never_marks_complete(self, tmp_path):
        # The marker's whole value: a producer that dies mid-close leaves
        # none, so a watcher falls back to its settle heuristic.
        plan = FaultPlan([torn_write(2, keep=3)])
        path = os.path.join(str(tmp_path), "s.cctb")
        tree = ShardedCallingContextTree("stream")
        with FaultInjector(str(tmp_path), plan):
            _observe(tree, 1, "conv", "k0", 1.0)
            writer = StreamingProfileWriter(ProfileDatabase(tree), path)
            with pytest.raises(InjectedCrash):
                writer.close(mark_complete=True)
        assert plan.tripped
        assert not is_marked_complete(path)


class TestProfilerIntegration:
    def test_profiler_streams_and_recovers(self, tmp_path):
        from repro.experiments.runner import (PROFILER_DEEPCONTEXT,
                                              run_named_workload)
        checkpoint_path = str(tmp_path / "live.cctb")
        result = run_named_workload(
            "gnn", profiler=PROFILER_DEEPCONTEXT, iterations=2,
            checkpoint_path=checkpoint_path,
            checkpoint_interval_s=1e-9)  # every iteration reseals
        # Initial seal + one per iteration + closing seal.
        assert result.extra["profile_checkpoints"] >= 4.0
        assert result.extra["checkpoint_file_bytes"] > 0
        streamed = ProfileDatabase.load(checkpoint_path)
        assert streamed.metadata.iterations == result.iterations
        assert streamed.total_gpu_time() == pytest.approx(
            result.database.total_gpu_time())
        recovered = recover_profile(checkpoint_path)
        assert recovered.total_gpu_time() == pytest.approx(
            result.database.total_gpu_time())

    def test_checkpoint_path_without_deepcontext_is_rejected(self, tmp_path):
        from repro.experiments.runner import run_named_workload
        with pytest.raises(ValueError, match="checkpoint_path requires"):
            run_named_workload("gnn", iterations=1,
                               checkpoint_path=str(tmp_path / "x.cctb"))

    def test_explicit_checkpoint_requires_configuration(self):
        from repro.core import DeepContextProfiler
        from repro.framework.eager import EagerEngine
        profiler = DeepContextProfiler(EagerEngine("a100"), ProfilerConfig())
        with pytest.raises(RuntimeError, match="checkpoint_path"):
            profiler.checkpoint()

    def test_profiler_config_compression_flows_into_stream(self, tmp_path):
        from repro.experiments.runner import (PROFILER_DEEPCONTEXT,
                                              run_named_workload)
        checkpoint_path = str(tmp_path / "live.cctb")
        result = run_named_workload(
            "gnn", profiler=PROFILER_DEEPCONTEXT, iterations=1,
            checkpoint_path=checkpoint_path, profile_compression="zlib")
        loaded = ProfileDatabase.load(checkpoint_path)
        assert loaded.total_gpu_time() == pytest.approx(
            result.database.total_gpu_time())
        compressed = [descriptor
                      for shard in loaded.tree._shards.values()
                      for descriptor in (shard.entry["frames"],
                                         *shard.entry["columns"].values())
                      if descriptor.get("compression") == "zlib"]
        assert compressed  # blocks really carry the flag
