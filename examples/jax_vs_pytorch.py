#!/usr/bin/env python3
"""Cross-framework comparison: eager (PyTorch-like) vs JIT (JAX-like) execution.

Reproduces the workflow of paper §6.6: run the same models in both execution
modes with the same profiler, compare kernel counts and GPU time, and inspect
how DLMonitor maps fused JIT operators back to the original operators and
their compile-time call paths (paper Figure 4).

Run it with ``python examples/jax_vs_pytorch.py``.
"""

from repro.core import DeepContextProfiler, ProfilerConfig
from repro.experiments import jax_vs_pytorch
from repro.framework import EagerEngine
from repro.framework.jit import JitCompiler, jit
from repro.workloads import create_workload


def show_fusion_map():
    """Profile one jitted workload and print the fused→original mapping."""
    engine = EagerEngine("a100")
    compiler = JitCompiler(engine)
    config = ProfilerConfig.without_native()
    config.program_name = "jax-mode-gnn"
    profiler = DeepContextProfiler(engine, config, jit_compiler=compiler)
    workload = create_workload("gnn", small=True)

    with engine, profiler.profile():
        workload.build(engine)
        compiled = jit(workload.step_fn(engine), engine=engine,
                       with_grad=True, compiler=compiler)
        for iteration in range(2):
            compiled(*workload.make_batch(engine, iteration))
        engine.synchronize()

    fusion_map = profiler.monitor.fusion_map
    print(f"fused operators recorded: {len(fusion_map)}")
    for record in fusion_map.records[:3]:
        print(f"  {record.fused_name}")
        print(f"    originals: {', '.join(record.original_names)}")
        for original in record.originals[:2]:
            if original.compile_time_callpath:
                file, line, function = original.compile_time_callpath[-1]
                print(f"    {original.op_name:24s} defined at {function} ({file.split('/')[-1]}:{line})")


def main():
    print("== kernel counts and GPU time: eager vs jit ==")
    rows = jax_vs_pytorch(("dlrm", "unet", "gnn", "resnet"), iterations=2)
    header = f"{'workload':10s} {'eager kernels':>14s} {'jit kernels':>12s} {'speedup':>8s}"
    print(header)
    for row in rows:
        print(f"{row['workload']:10s} {int(row['eager_kernels']):14d} "
              f"{int(row['jit_kernels']):12d} {row['speedup']:8.2f}x")
    print()
    print("== fused operator mapping captured during compilation ==")
    show_fusion_map()


if __name__ == "__main__":
    main()
