#!/usr/bin/env python3
"""Quickstart: profile a small CNN with DeepContext and read the results.

This example shows the full workflow in ~60 lines:

1. create a simulated machine (an Nvidia A100 platform) and a model,
2. attach :class:`DeepContextProfiler` and run a few training iterations,
3. print the profile summary and the hottest kernels,
4. run the automated performance analyzer,
5. export a flame graph to HTML next to this script.

Run it with ``python examples/quickstart.py``.
"""

import os

from repro.analyzer import PerformanceAnalyzer
from repro.core import DeepContextProfiler, ProfilerConfig
from repro.framework import EagerEngine, modules, tensor
from repro.gui import FlameGraphBuilder, save_html


def build_model():
    """A small convolutional classifier."""
    return modules.Sequential(
        modules.Conv2d(3, 32, 3),
        modules.BatchNorm2d(32),
        modules.ReLU(),
        modules.Conv2d(32, 64, 3),
        modules.BatchNorm2d(64),
        modules.ReLU(),
        name="small_cnn",
    )


def train_step(engine, model, head, loss_fn, optimizer):
    images = tensor((8, 3, 64, 64), name="images")
    labels = tensor((8,), dtype="int64", name="labels")
    features = model(images)
    pooled = modules.F.avg_pool2d(features, kernel_size=features.shape[-1])
    flat = modules.F.reshape(pooled, (pooled.shape[0], pooled.shape[1]))
    loss = loss_fn(head(flat), labels)
    engine.backward(loss)
    optimizer.step()


def main():
    engine = EagerEngine("a100")
    profiler = DeepContextProfiler(engine, ProfilerConfig(program_name="quickstart"))

    with engine, profiler.profile():
        model = build_model()
        head = modules.Linear(64, 10, name="classifier")
        loss_fn = modules.CrossEntropyLoss()
        optimizer = modules.SGD(model.parameters() + head.parameters(), lr=0.1)
        for _iteration in range(5):
            train_step(engine, model, head, loss_fn, optimizer)
            profiler.mark_iteration()
        engine.synchronize()

    database = profiler.database
    print("== profile summary ==")
    for key, value in database.summary().items():
        print(f"  {key}: {value:.6g}")

    print("\n== top kernels (aggregated across contexts) ==")
    for row in database.top_kernels(5):
        print(f"  {row['kernel']:55s} {row['gpu_time'] * 1e3:8.3f} ms  ({row['fraction']:.1%})")

    print("\n== automated analysis ==")
    report = PerformanceAnalyzer().analyze(database)
    print(report.to_text())

    builder = FlameGraphBuilder()
    graph = builder.top_down(database.tree, issues=report.issues)
    output = os.path.join(os.path.dirname(__file__), "quickstart_profile.html")
    save_html(graph, output, report=report, title="Quickstart profile",
              subtitle="Simulated A100, 5 training iterations of a small CNN")
    print(f"flame graph written to {output}")


if __name__ == "__main__":
    main()
