#!/usr/bin/env python3
"""Cross-platform comparison: the same U-Net on Nvidia A100 and AMD MI250.

Reproduces the workflow of paper §6.5: profile the identical workload on both
simulated platforms with the *same* profiler code (DLMonitor picks CUPTI or
RocTracer automatically), then compare the top-down views.  On Nvidia the
hotspot is ``aten::conv2d`` as expected; on AMD it shifts to
``aten::instance_norm`` because PyTorch reuses a warp-32-tuned kernel template
on a warp-64 architecture.

Run it with ``python examples/cross_platform_unet.py``.
"""

from repro.analyzer import ForwardBackwardAnalysis, HotspotAnalysis
from repro.experiments import PROFILER_DEEPCONTEXT_NATIVE, run_workload
from repro.gui import FlameGraphBuilder, flamegraph_to_folded
from repro.workloads import create_workload


def profile_on(device: str):
    workload = create_workload("unet", small=True, channels_last=True)
    result = run_workload(workload, device=device,
                          profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)
    return result.database


def operator_shares(database):
    analysis = ForwardBackwardAnalysis()
    totals = {}
    for op_name, entry in analysis.operator_times(database.tree).items():
        totals[op_name] = entry["forward"] + entry["backward"]
    total = sum(totals.values()) or 1.0
    return {name: value / total for name, value in
            sorted(totals.items(), key=lambda item: -item[1])}


def main():
    for device, label in (("a100", "Nvidia A100"), ("mi250", "AMD MI250")):
        database = profile_on(device)
        print(f"== {label} ==")
        shares = operator_shares(database)
        for op_name, share in list(shares.items())[:5]:
            print(f"  {op_name:28s} {share:6.1%}")
        hotspots = HotspotAnalysis(hotspot_threshold=0.05).analyze(database.tree)
        print(f"  hotspot kernels flagged: {len(hotspots)}")

        graph = FlameGraphBuilder().top_down(database.tree)
        folded = flamegraph_to_folded(graph)
        print(f"  flame graph: {graph.node_count()} frames, "
              f"{len(folded.splitlines())} folded stacks")
        print()

    print("Expected shape (paper Figure 10): conv2d is the hotspot on Nvidia, while on")
    print("AMD the instance_norm operator dominates because its kernel template uses a")
    print("launch configuration tuned for warp size 32.")


if __name__ == "__main__":
    main()
