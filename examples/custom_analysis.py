#!/usr/bin/env python3
"""Writing a custom analysis with the analyzer API.

The paper's performance analyzer exposes a flexible Python interface: traverse
the calling context tree, match call-path patterns, query metrics, and flag
issues.  This example defines two custom analyses and registers them next to
the built-in ones:

* ``MemcpyAnalysis`` flags frames that move a lot of host↔device data, and
* ``RegisterPressureAnalysis`` flags kernels whose register usage is high
  enough to limit occupancy.

Run it with ``python examples/custom_analysis.py``.
"""

from repro.analyzer import Analysis, CCTQuery, PerformanceAnalyzer, Severity
from repro.core import metrics as M
from repro.dlmonitor.callpath import FrameKind
from repro.experiments import PROFILER_DEEPCONTEXT_NATIVE, run_workload
from repro.workloads import create_workload


class MemcpyAnalysis(Analysis):
    """Flag frames that transfer more bytes over PCIe than a threshold."""

    name = "memcpy_volume"
    description = "Host<->device transfers large enough to hide behind compute"

    def run(self, tree, collector):
        threshold = self.threshold("bytes_threshold", 64 * 1024 * 1024)
        issues = []
        for node in tree.bfs():
            if node.kind != FrameKind.PYTHON:
                continue
            moved = node.inclusive.sum(M.METRIC_MEMCPY_BYTES)
            if moved > threshold:
                issues.append(collector.flag(
                    analysis=self.name, node=node,
                    message=f"{moved / 1e6:.1f} MB copied between host and device",
                    suggestion="overlap transfers with compute or keep data resident on device",
                ))
        return issues


class RegisterPressureAnalysis(Analysis):
    """Flag kernels whose register usage limits theoretical occupancy."""

    name = "register_pressure"
    description = "Kernels with high per-thread register usage"

    def run(self, tree, collector):
        register_threshold = self.threshold("registers", 128)
        issues = []
        query = CCTQuery(tree)
        for node in query.kernels():
            registers = node.inclusive.get(M.METRIC_REGISTERS)
            if registers is None or registers.mean < register_threshold:
                continue
            issues.append(collector.flag(
                analysis=self.name, node=node,
                message=f"kernel uses {registers.mean:.0f} registers per thread",
                severity=Severity.INFO,
                suggestion="consider splitting the kernel or lowering unrolling factors",
            ))
        return issues


def main():
    result = run_workload(create_workload("resnet", small=True), device="a100",
                          profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)
    analyzer = PerformanceAnalyzer()
    analyzer.register(MemcpyAnalysis(bytes_threshold=1024))
    analyzer.register(RegisterPressureAnalysis(registers=120))
    report = analyzer.analyze(result.database)

    print(report.to_text())
    print("issues per analysis:", report.counts_by_analysis())


if __name__ == "__main__":
    main()
