#!/usr/bin/env python3
"""Case study walk-through: DLRM's slow deterministic ``aten::index`` backward.

Reproduces the workflow of paper §6.1 end to end:

1. profile the DLRM-small workload on the simulated A100,
2. look at the bottom-up view — the ``indexing_backward_kernel`` dominates,
3. run the forward/backward operator analysis, which points at ``aten::index``
   called from the embedding lookup and suggests ``aten::index_select``,
4. apply the optimisation and measure the speedup.

Run it with ``python examples/dlrm_index_case_study.py``.
"""

from repro.analyzer import ForwardBackwardAnalysis
from repro.dlmonitor.callpath import FrameKind
from repro.experiments import (
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_NONE,
    run_workload,
)
from repro.gui import FlameGraphBuilder
from repro.workloads import create_workload


def main():
    iterations = 3

    print("== step 1: profile DLRM-small with DeepContext ==")
    profiled = run_workload(create_workload("dlrm", small=True), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations)
    database = profiled.database
    print(f"GPU time: {database.total_gpu_time() * 1e3:.2f} ms, "
          f"kernels: {database.total_kernel_launches()}")

    print("\n== step 2: bottom-up view (hottest kernels across all contexts) ==")
    bottom_up = FlameGraphBuilder().bottom_up(database.tree, kind=FrameKind.GPU_KERNEL)
    for entry in bottom_up.root.children[:5]:
        print(f"  {entry.label:55s} {entry.value * 1e3:8.3f} ms  ({entry.fraction:.1%})")

    print("\n== step 3: forward/backward operator analysis ==")
    analysis = ForwardBackwardAnalysis(ratio=2.0, min_backward_seconds=1e-5)
    for issue in analysis.analyze(database.tree):
        print(f"  [{issue.severity.value}] {issue.message}")
        print(f"      suggestion: {issue.suggestion}")

    print("\n== step 4: apply the optimisation and re-measure ==")
    baseline = run_workload(create_workload("dlrm", small=True), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(create_workload("dlrm", small=True, use_index_select=True),
                             device="a100", profiler=PROFILER_NONE, iterations=iterations)
    speedup = baseline.gpu_kernel_seconds / optimized.gpu_kernel_seconds
    print(f"  baseline GPU time : {baseline.gpu_kernel_seconds * 1e3:8.2f} ms (aten::index)")
    print(f"  optimized GPU time: {optimized.gpu_kernel_seconds * 1e3:8.2f} ms (aten::index_select)")
    print(f"  speedup           : {speedup:.2f}x  (paper reports 1.66x on real hardware)")


if __name__ == "__main__":
    main()
