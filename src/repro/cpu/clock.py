"""Virtual CPU and real-time clocks.

The paper measures ``CPU_TIME`` and ``REAL_TIME`` through ``sigaction`` interval
timers.  In this reproduction all time is *virtual*: the simulated framework and
GPU runtime advance clocks explicitly, which keeps every experiment deterministic
while preserving the structure of interval-based sampling (see
:mod:`repro.cpu.sampler`).

Two clock domains exist per machine:

* one :class:`VirtualClock` per CPU thread, advanced only while that thread
  "executes" (CPU_TIME), and
* a single machine-wide real-time clock (REAL_TIME) that is the maximum of all
  per-thread progress plus any wall-clock-only delays (e.g. waiting on a GPU).
"""

from __future__ import annotations

from typing import Callable, List


class VirtualClock:
    """A monotonically increasing virtual clock measured in seconds.

    Listeners registered with :meth:`on_advance` are notified with the interval
    of every advance; the interval sampler uses this to emulate timer signals.
    """

    def __init__(self, name: str = "clock", start: float = 0.0) -> None:
        self.name = name
        self._now = float(start)
        self._listeners: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new current time.  Listeners are called *after* the clock
        has moved so they observe the post-advance timestamp.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        if seconds == 0:
            return self._now
        previous = self._now
        self._now = previous + seconds
        for listener in list(self._listeners):
            listener(previous, self._now)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock so that ``now`` is at least ``timestamp``."""
        if timestamp > self._now:
            self.advance(timestamp - self._now)
        return self._now

    def on_advance(self, listener: Callable[[float, float], None]) -> None:
        """Register ``listener(previous, now)`` to run on every advance."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[float, float], None]) -> None:
        """Unregister a previously registered listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def reset(self) -> None:
        """Reset the clock to zero without notifying listeners."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(name={self.name!r}, now={self._now:.6f})"


class MachineClock:
    """Couples per-thread CPU clocks with a machine-wide real-time clock.

    ``REAL_TIME`` never runs behind any CPU thread's ``CPU_TIME``.  GPU waits and
    other non-CPU delays advance only the real-time clock.
    """

    def __init__(self) -> None:
        self.real_time = VirtualClock("REAL_TIME")
        self._cpu_clocks: List[VirtualClock] = []

    def new_cpu_clock(self, name: str, tied: bool = True) -> VirtualClock:
        """Create a CPU_TIME clock for a new thread.

        When ``tied`` is true every CPU advance also advances real time, which
        models threads executing one after another on the simulated machine.
        Untied clocks are used for worker threads that run concurrently with
        the main thread; their real-time contribution is accounted for
        explicitly by the code simulating the parallel region (via :meth:`wait`).
        """
        clock = VirtualClock(name)
        if tied:
            clock.on_advance(self._on_cpu_advance)
        self._cpu_clocks.append(clock)
        return clock

    def _on_cpu_advance(self, previous: float, now: float) -> None:
        self.real_time.advance(now - previous)

    def wait(self, seconds: float) -> None:
        """Advance only real time (e.g. blocking on a GPU or on disk I/O)."""
        self.real_time.advance(seconds)

    @property
    def cpu_clocks(self) -> List[VirtualClock]:
        return list(self._cpu_clocks)
