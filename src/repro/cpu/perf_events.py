"""Simulated Linux perf events.

DeepContext can attach Linux perf events to sample hardware counters.  In the
simulation, counter values are *derived* from the virtual work the framework
reports (instructions retired from CPU seconds, cache misses from bytes moved),
which keeps the API — open, enable, read, disable — and the attribution flow
identical to the real tool while staying deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

# Common perf event names used across the repository.
PERF_CPU_CYCLES = "cpu-cycles"
PERF_INSTRUCTIONS = "instructions"
PERF_CACHE_MISSES = "cache-misses"
PERF_CACHE_REFERENCES = "cache-references"
PERF_PAGE_FAULTS = "page-faults"
PERF_CONTEXT_SWITCHES = "context-switches"

KNOWN_EVENTS = (
    PERF_CPU_CYCLES,
    PERF_INSTRUCTIONS,
    PERF_CACHE_MISSES,
    PERF_CACHE_REFERENCES,
    PERF_PAGE_FAULTS,
    PERF_CONTEXT_SWITCHES,
)

# Per-second-of-CPU-work rates used to derive counter values.
_RATES: Dict[str, float] = {
    PERF_CPU_CYCLES: 2.8e9,          # 2.8 GHz EPYC core
    PERF_INSTRUCTIONS: 3.4e9,        # IPC ~1.2
    PERF_CACHE_REFERENCES: 4.0e8,
    PERF_CACHE_MISSES: 2.0e7,
    PERF_PAGE_FAULTS: 1.0e3,
    PERF_CONTEXT_SWITCHES: 5.0e2,
}


@dataclass
class PerfEvent:
    """One opened perf event counter."""

    name: str
    enabled: bool = False
    value: float = 0.0

    def accumulate(self, cpu_seconds: float, context_switch_bonus: float = 0.0) -> None:
        if not self.enabled:
            return
        self.value += _RATES.get(self.name, 1.0e6) * cpu_seconds
        if self.name == PERF_CONTEXT_SWITCHES:
            self.value += context_switch_bonus

    def read(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class PerfEventGroup:
    """A group of perf events opened together (like ``perf_event_open`` groups)."""

    events: Dict[str, PerfEvent] = field(default_factory=dict)

    def open(self, name: str) -> PerfEvent:
        if name not in KNOWN_EVENTS:
            raise ValueError(f"unknown perf event: {name!r}")
        event = self.events.setdefault(name, PerfEvent(name=name))
        return event

    def enable(self) -> None:
        for event in self.events.values():
            event.enabled = True

    def disable(self) -> None:
        for event in self.events.values():
            event.enabled = False

    def accumulate(self, cpu_seconds: float, context_switch_bonus: float = 0.0) -> None:
        """Advance all enabled counters by ``cpu_seconds`` of simulated work."""
        for event in self.events.values():
            event.accumulate(cpu_seconds, context_switch_bonus)

    def read_all(self) -> Dict[str, float]:
        return {name: event.read() for name, event in self.events.items()}

    def opened(self) -> List[str]:
        return sorted(self.events)
