"""Interval-based CPU sampling (the ``sigaction`` equivalent).

DeepContext registers a signal callback for ``CPU_TIME`` and ``REAL_TIME``
events; whenever a sample fires it computes the interval since the previous
sample and attributes it to the current call path.  The virtual-clock
equivalent here watches a :class:`~repro.cpu.clock.VirtualClock` and invokes the
registered handler once per elapsed sampling period, passing the interval —
the handler (the profiler's CPU collector) then asks DLMonitor for the call
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .clock import VirtualClock

CPU_TIME = "CPU_TIME"
REAL_TIME = "REAL_TIME"

SampleHandler = Callable[["Sample"], None]


@dataclass(frozen=True)
class Sample:
    """One timer sample: the event it belongs to and the elapsed interval."""

    event: str
    timestamp: float
    interval: float


class IntervalSampler:
    """Fires a handler once per sampling period of a virtual clock.

    A single large clock advance (e.g. a long simulated C++ region) produces
    multiple samples, just as a real interval timer would keep firing while the
    thread executes.
    """

    def __init__(self, clock: VirtualClock, event: str = CPU_TIME,
                 period: float = 0.001) -> None:
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.clock = clock
        self.event = event
        self.period = period
        self._handler: Optional[SampleHandler] = None
        self._last_fire = clock.now
        self._installed = False
        self.samples_fired = 0

    def install(self, handler: SampleHandler) -> None:
        """Register the handler and start sampling (like ``sigaction`` + ``setitimer``)."""
        self._handler = handler
        self._last_fire = self.clock.now
        if not self._installed:
            self.clock.on_advance(self._on_advance)
            self._installed = True

    def uninstall(self) -> None:
        """Stop sampling and release the timer."""
        if self._installed:
            self.clock.remove_listener(self._on_advance)
            self._installed = False
        self._handler = None

    def _on_advance(self, previous: float, now: float) -> None:
        if self._handler is None:
            return
        while now - self._last_fire >= self.period:
            self._last_fire += self.period
            self.samples_fired += 1
            self._handler(Sample(event=self.event,
                                 timestamp=self._last_fire,
                                 interval=self.period))


class SamplerGroup:
    """Manages one sampler per (clock, event) pair, as the profiler configures them."""

    def __init__(self) -> None:
        self._samplers: List[IntervalSampler] = []

    def add(self, clock: VirtualClock, event: str, period: float,
            handler: SampleHandler) -> IntervalSampler:
        sampler = IntervalSampler(clock, event, period)
        sampler.install(handler)
        self._samplers.append(sampler)
        return sampler

    def stop(self) -> None:
        """Uninstall every sampler; their statistics remain readable."""
        for sampler in self._samplers:
            sampler.uninstall()

    @property
    def total_samples(self) -> int:
        return sum(sampler.samples_fired for sampler in self._samplers)
