"""A PAPI-like high-level counter API on top of the perf-event simulation.

PAPI exposes preset event names (``PAPI_TOT_INS``, ``PAPI_L2_TCM``, ...) that
map onto native perf events.  DeepContext can use either interface; this module
provides the preset naming layer so both code paths exist in the reproduction.
"""

from __future__ import annotations

from typing import Dict, List

from . import perf_events as perf

# PAPI preset → native perf event mapping.
PAPI_PRESETS: Dict[str, str] = {
    "PAPI_TOT_CYC": perf.PERF_CPU_CYCLES,
    "PAPI_TOT_INS": perf.PERF_INSTRUCTIONS,
    "PAPI_L2_TCM": perf.PERF_CACHE_MISSES,
    "PAPI_L2_TCA": perf.PERF_CACHE_REFERENCES,
}


class PapiError(RuntimeError):
    """Raised for invalid PAPI usage (unknown preset, double start, ...)."""


class PapiEventSet:
    """A PAPI event set: create, add events, start, read, stop."""

    def __init__(self) -> None:
        self._group = perf.PerfEventGroup()
        self._presets: List[str] = []
        self._running = False

    def add_event(self, preset: str) -> None:
        if preset not in PAPI_PRESETS:
            raise PapiError(f"unknown PAPI preset: {preset!r}")
        if self._running:
            raise PapiError("cannot add events while the event set is running")
        self._group.open(PAPI_PRESETS[preset])
        self._presets.append(preset)

    def start(self) -> None:
        if self._running:
            raise PapiError("event set already running")
        self._group.enable()
        self._running = True

    def stop(self) -> Dict[str, float]:
        if not self._running:
            raise PapiError("event set is not running")
        self._group.disable()
        self._running = False
        return self.read()

    def accumulate(self, cpu_seconds: float) -> None:
        """Advance counters by simulated work (called by the execution engine)."""
        if self._running:
            self._group.accumulate(cpu_seconds)

    def read(self) -> Dict[str, float]:
        native = self._group.read_all()
        return {preset: native[PAPI_PRESETS[preset]] for preset in self._presets}

    @property
    def events(self) -> List[str]:
        return list(self._presets)

    @property
    def running(self) -> bool:
        return self._running
