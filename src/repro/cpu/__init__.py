"""CPU measurement substrate: virtual clocks, interval sampling, perf/PAPI counters."""

from .clock import MachineClock, VirtualClock
from .papi import PAPI_PRESETS, PapiError, PapiEventSet
from .perf_events import (
    KNOWN_EVENTS,
    PERF_CACHE_MISSES,
    PERF_CACHE_REFERENCES,
    PERF_CONTEXT_SWITCHES,
    PERF_CPU_CYCLES,
    PERF_INSTRUCTIONS,
    PERF_PAGE_FAULTS,
    PerfEvent,
    PerfEventGroup,
)
from .sampler import CPU_TIME, REAL_TIME, IntervalSampler, Sample, SamplerGroup

__all__ = [
    "VirtualClock",
    "MachineClock",
    "IntervalSampler",
    "SamplerGroup",
    "Sample",
    "CPU_TIME",
    "REAL_TIME",
    "PerfEvent",
    "PerfEventGroup",
    "KNOWN_EVENTS",
    "PERF_CPU_CYCLES",
    "PERF_INSTRUCTIONS",
    "PERF_CACHE_MISSES",
    "PERF_CACHE_REFERENCES",
    "PERF_PAGE_FAULTS",
    "PERF_CONTEXT_SWITCHES",
    "PapiEventSet",
    "PapiError",
    "PAPI_PRESETS",
]
