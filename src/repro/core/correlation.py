"""Correlation-ID registry.

GPU metrics arrive asynchronously in activity buffers, identified only by the
correlation ID the driver assigned to the launching API call.  The profiler
records, at each kernel-launch callback, the correlation ID together with the
CCT node of the launching call path; when the buffers are flushed the records
are linked back to their nodes and aggregated (paper §4.2, "GPU Metrics").

Lifecycle: one correlation ID can receive *several* asynchronous deliveries —
an activity record from a buffer flush and instruction-sample batches from PC
sampling — in either order (the activity buffer may fill and flush before the
launch callback returns, or records may sit buffered long after samples were
delivered).  An entry therefore stays resolvable until every consumer has
attributed its share: consumers mark the entry attributed
(``activity_attributed`` / ``samples_attributed``) and ``release`` it once the
counterpart delivery has also been seen; ``sweep_attributed`` frees any
remaining tombstones after the final flush, so entries whose counterpart never
arrives (memcpys with sampling enabled, kernels that produced no samples)
cannot accumulate past the end of the session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cct import CCTNode


@dataclass
class PendingCorrelation:
    """What was known at launch time about a correlation ID."""

    correlation_id: int
    node: CCTNode
    kernel_name: str = ""
    api_name: str = ""
    is_backward: bool = False
    #: Set once the activity record for this correlation was attributed.
    activity_attributed: bool = False
    #: Set once instruction samples for this correlation were attributed.
    samples_attributed: bool = False
    #: Set once the launching API call has exited.  Instruction samples are
    #: delivered synchronously right after the exit callback, so an entry
    #: that has exited but never got samples will never get any.
    launch_exited: bool = False

    @property
    def attributed(self) -> bool:
        """Whether at least one asynchronous delivery has been attributed."""
        return self.activity_attributed or self.samples_attributed


class CorrelationRegistry:
    """Maps correlation IDs to the CCT nodes of their launching call paths."""

    def __init__(self) -> None:
        self._pending: Dict[int, PendingCorrelation] = {}
        self.registered = 0
        self.resolved = 0
        self.unresolved = 0
        #: Attributed tombstones freed by ``sweep_attributed`` (end of session).
        self.swept = 0

    def register(self, correlation_id: int, node: CCTNode, kernel_name: str = "",
                 api_name: str = "", is_backward: bool = False) -> PendingCorrelation:
        """Associate a freshly issued correlation ID with its launch-site node."""
        pending = PendingCorrelation(
            correlation_id=correlation_id,
            node=node,
            kernel_name=kernel_name,
            api_name=api_name,
            is_backward=is_backward,
        )
        self._pending[correlation_id] = pending
        self.registered += 1
        return pending

    def resolve(self, correlation_id: int) -> Optional[PendingCorrelation]:
        """Look up (and keep) the launch context for an asynchronous delivery."""
        pending = self._pending.get(correlation_id)
        if pending is None:
            self.unresolved += 1
        else:
            self.resolved += 1
        return pending

    def peek(self, correlation_id: int) -> Optional[PendingCorrelation]:
        """Look up an entry without touching the resolved/unresolved stats.

        For lifecycle bookkeeping (marking the launch exited, checking
        whether a tombstone can be freed) rather than metric attribution.
        """
        return self._pending.get(correlation_id)

    def release(self, correlation_id: int) -> None:
        """Drop a correlation ID once all its deliveries have been attributed."""
        self._pending.pop(correlation_id, None)

    def sweep_attributed(self) -> int:
        """Free every at-least-once-attributed entry; returns how many.

        Called after the final activity flush of a session: nothing more can
        arrive, so tombstones kept alive for a counterpart delivery that never
        came (and never will) are reclaimed.  Entries that were *never*
        attributed are deliberately kept — a nonzero ``pending_count`` after
        the sweep is the observable signal that launches lost their records.
        """
        stale = [correlation_id for correlation_id, pending in self._pending.items()
                 if pending.attributed]
        for correlation_id in stale:
            del self._pending[correlation_id]
        self.swept += len(stale)
        return len(stale)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        self._pending.clear()
