"""Correlation-ID registry.

GPU metrics arrive asynchronously in activity buffers, identified only by the
correlation ID the driver assigned to the launching API call.  The profiler
records, at each kernel-launch callback, the correlation ID together with the
CCT node of the launching call path; when the buffers are flushed the records
are linked back to their nodes and aggregated (paper §4.2, "GPU Metrics").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cct import CCTNode


@dataclass
class PendingCorrelation:
    """What was known at launch time about a correlation ID."""

    correlation_id: int
    node: CCTNode
    kernel_name: str = ""
    api_name: str = ""
    is_backward: bool = False


class CorrelationRegistry:
    """Maps correlation IDs to the CCT nodes of their launching call paths."""

    def __init__(self) -> None:
        self._pending: Dict[int, PendingCorrelation] = {}
        self.registered = 0
        self.resolved = 0
        self.unresolved = 0

    def register(self, correlation_id: int, node: CCTNode, kernel_name: str = "",
                 api_name: str = "", is_backward: bool = False) -> PendingCorrelation:
        """Associate a freshly issued correlation ID with its launch-site node."""
        pending = PendingCorrelation(
            correlation_id=correlation_id,
            node=node,
            kernel_name=kernel_name,
            api_name=api_name,
            is_backward=is_backward,
        )
        self._pending[correlation_id] = pending
        self.registered += 1
        return pending

    def resolve(self, correlation_id: int) -> Optional[PendingCorrelation]:
        """Look up (and keep) the launch context for an activity record."""
        pending = self._pending.get(correlation_id)
        if pending is None:
            self.unresolved += 1
        else:
            self.resolved += 1
        return pending

    def release(self, correlation_id: int) -> None:
        """Drop a correlation ID once all its activity has been attributed."""
        self._pending.pop(correlation_id, None)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        self._pending.clear()
