"""Pluggable profile storage engine.

Profile persistence is a registry of :class:`StorageBackend` implementations
instead of format branching inside ``ProfileDatabase``:

* ``json`` — the legacy nested node-by-node JSON encoding;
* ``columnar-json`` — flat frame/metric columns in JSON (single-tree or
  multi-shard with thread provenance), the compact text format;
* ``cct-binary-v1`` — an mmap-backed binary columnar format: each shard's
  frame table and each of its per-metric columns is an independent
  struct-packed block, addressed by a footer table of contents, so opening a
  profile is one ``mmap`` plus a TOC read and queries decode only the
  shards/columns they touch (see :class:`LazyProfileView` and
  ``docs/FORMATS.md`` for the block layout).

``ProfileDatabase.save``/``load`` dispatch here; ``load`` sniffs the on-disk
format (magic bytes, then a JSON probe) rather than assuming one, and new
backends — compressed, remote — plug in through :func:`register_backend`
without touching the database class.

The binary format additionally supports *streamed* files: a file may contain
several sealed checkpoints (block runs each terminated by a TOC + tail), the
newest seal at EOF being the authoritative one.  :func:`recover_profile`
scans backwards for the last intact seal of a crashed/truncated stream, and
:meth:`LazyProfileView.attach`/:meth:`LazyProfileView.refresh` open (and
follow) a profile that another process is still appending to.  The writer
side lives in :mod:`repro.core.streaming`.
"""

from __future__ import annotations

import array
import json
import mmap
import os
import struct
import sys
import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..dlmonitor.callpath import Frame, FrameKind
from ..obs import TELEMETRY
from .cct import (DEFAULT_SHARD_ID, CallingContextTree, CCTNode,
                  ShardedCallingContextTree)
from .database import ProfileDatabase, ProfileMetadata

# Canonical backend names (``FORMAT_*`` on ProfileDatabase alias these).
FORMAT_JSON = "json"
FORMAT_COLUMNAR_JSON = "columnar-json"
FORMAT_BINARY_V1 = "cct-binary-v1"

#: 8-byte magic leading (and trailing) every ``cct-binary-v1`` file.
BINARY_MAGIC = b"DCCTBIN1"
#: Fixed-size tail: u64 TOC offset, u64 TOC length, trailing magic.
_TAIL = struct.Struct("<QQ8s")

#: The only per-block compression codec currently defined (descriptor flag
#: ``"compression": "zlib"`` — see ``docs/FORMATS.md``).
COMPRESSION_ZLIB = "zlib"

#: Spellings accepted as "no compression".
_NO_COMPRESSION = (None, "", "none")


class ProfileFormatError(ValueError):
    """A profile file is empty, truncated, corrupt, or in no known format.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers keep
    working; the message always names the offending path and the detected
    condition instead of leaking a raw ``struct``/JSON decode error.
    """


class ProfileCorruptionError(ProfileFormatError):
    """A sealed block inside an otherwise well-formed profile is corrupt.

    Raised when a block fails its CRC-32 checksum, decompresses to the wrong
    length, or lies outside the sealed byte range — a flipped bit, a torn
    write, a bad sector.  The message always names the file, the block (which
    shard, frames or which metric column) and the byte offset, so a fleet
    operator can quarantine precisely and ``ProfileStore.scrub`` can report
    what went bad.  Distinct from its parent so callers can tell "this file
    was never a profile" from "this profile has rotted".
    """


def check_compression(compression: Optional[str]) -> Optional[str]:
    """Normalise a compression name: ``None`` for "off", or a known codec."""
    if compression in _NO_COMPRESSION:
        return None
    if compression != COMPRESSION_ZLIB:
        raise ValueError(
            f"unsupported profile compression {compression!r}; supported: "
            f"{COMPRESSION_ZLIB!r} (or None)")
    return compression


#: Stable on-disk codes for frame kinds (append-only across versions).
KIND_CODES: Dict[FrameKind, int] = {
    FrameKind.ROOT: 0, FrameKind.THREAD: 1, FrameKind.PYTHON: 2,
    FrameKind.FRAMEWORK: 3, FrameKind.NATIVE: 4, FrameKind.GPU_API: 5,
    FrameKind.GPU_KERNEL: 6, FrameKind.GPU_INSTRUCTION: 7,
}
KINDS_BY_CODE: Dict[int, FrameKind] = {code: kind for kind, code in KIND_CODES.items()}

_LITTLE_ENDIAN = sys.byteorder == "little"


# ---------------------------------------------------------------------------
# Little-endian array packing helpers (stdlib only; byteswap on BE hosts)
# ---------------------------------------------------------------------------

def _pack_array(typecode: str, values: Iterable) -> bytes:
    packed = array.array(typecode, values)
    if not _LITTLE_ENDIAN:
        packed.byteswap()
    return packed.tobytes()


def _read_array(typecode: str, buffer, offset: int, count: int) -> Tuple[array.array, int]:
    values = array.array(typecode)
    end = offset + values.itemsize * count
    values.frombytes(bytes(buffer[offset:end]))
    if not _LITTLE_ENDIAN:
        values.byteswap()
    return values, end


# ---------------------------------------------------------------------------
# Backend interface and registry
# ---------------------------------------------------------------------------

class StorageBackend:
    """One on-disk profile format: how to save, load, and recognise it."""

    #: Canonical registry name (also the name format sniffing reports).
    name: str = ""
    #: Alternate names accepted by ``save(format=...)`` (legacy spellings).
    aliases: Tuple[str, ...] = ()
    #: Whether ``save`` honours per-block compression.  Backends that don't
    #: reject an *explicit* compression argument, while the session-wide
    #: ``profile_compression`` default simply doesn't apply to them.
    supports_compression: bool = False

    def save(self, database: ProfileDatabase, path: str,
             compression: Optional[str] = None) -> str:
        raise NotImplementedError

    def load(self, path: str) -> ProfileDatabase:
        raise NotImplementedError

    def sniff(self, head: bytes) -> bool:
        """Whether ``head`` (the file's first bytes) starts one of this
        backend's files.  Registered backends are asked in registration
        order, so a custom backend (compressed, remote cache, ...) claims its
        own magic here and ``ProfileDatabase.load`` dispatches to it without
        any change to the database class.  JSON-family backends return False:
        they are told apart by payload keys after a single shared parse.
        """
        return False


_REGISTRY: Dict[str, StorageBackend] = {}
_BACKENDS: List[StorageBackend] = []


def register_backend(backend: StorageBackend) -> StorageBackend:
    """Register a backend under its canonical name and every alias."""
    _BACKENDS.append(backend)
    for alias in (backend.name, *backend.aliases):
        _REGISTRY[alias] = backend
    return backend


def registered_formats() -> List[str]:
    """Canonical names of every registered backend (registration order)."""
    return [backend.name for backend in _BACKENDS]


def backend_for(name: str) -> StorageBackend:
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown profile format {name!r}; registered formats: "
            f"{', '.join(registered_formats())}")
    return backend


def _canonical(name: str) -> str:
    return backend_for(name).name


# ---------------------------------------------------------------------------
# Format sniffing
# ---------------------------------------------------------------------------

#: How many leading bytes backends get to sniff (plenty for any magic).
_SNIFF_BYTES = 64


def _detect(path: str) -> Tuple[str, Optional[Dict], Optional[StorageBackend]]:
    """Detect a profile's format: ``(name, parsed JSON or None, backend)``.

    Registered backends are offered the file head first (in registration
    order), so plugged-in binary formats are recognised without touching this
    module; files no backend claims are probed as JSON — parsed exactly once
    — and classified by their tree payload key.
    """
    with open(path, "rb") as handle:
        head = handle.read(_SNIFF_BYTES)
    if not head:
        raise ProfileFormatError(
            f"{path!r} is empty (0 bytes): not a profile in any registered "
            f"format")
    for backend in _BACKENDS:
        if backend.sniff(head):
            return backend.name, None, backend
    data = _probe_json(path)
    return _classify_json(data, path), data, None


def detect_format(path: str) -> str:
    """The canonical format name of the profile stored at ``path``.

    Raises :class:`ProfileFormatError` (a ``ValueError``) naming the path and
    the detected condition — empty file, truncation, unknown encoding — for
    files no backend recognises.
    """
    return _detect(path)[0]


def _probe_json(path: str) -> Dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (UnicodeDecodeError, ValueError) as error:
        raise ProfileFormatError(
            f"{path!r} is not a recognised profile: no known magic bytes and "
            f"not valid JSON ({error})") from None
    if not isinstance(data, dict):
        raise ProfileFormatError(f"{path!r} is not a recognised profile: "
                                 f"JSON document is not an object")
    return data


def _classify_json(data: Mapping, path: str) -> str:
    if "tree_columnar" in data:
        return FORMAT_COLUMNAR_JSON
    if "tree" in data:
        return FORMAT_JSON
    raise ProfileFormatError(
        f"{path!r} is valid JSON but not a profile (neither 'tree' nor "
        f"'tree_columnar' payload found)")


def load_profile(path: str, expected_format: Optional[str] = None) -> ProfileDatabase:
    """Sniff the on-disk format and load through the matching backend.

    With ``expected_format`` the detected format must match, otherwise a
    ``ValueError`` naming the *detected* format is raised — the caller asked
    for one encoding and got a file in another.
    """
    expected = _canonical(expected_format) if expected_format is not None else None
    detected, payload, backend = _detect(path)
    if expected is not None and expected != detected:
        raise ValueError(
            f"profile at {path!r} is in {detected!r} format, not the "
            f"requested {expected!r}")
    if backend is not None:
        return backend.load(path)
    # JSON family: _detect already parsed the document; decode it directly so
    # detection does not cost a second full parse.
    return ProfileDatabase.from_dict(payload)


def recover_profile(path: str) -> ProfileDatabase:
    """Reopen a streamed ``cct-binary-v1`` profile at its last intact seal.

    The append-then-reseal layout guarantees every sealed prefix is a valid
    profile, so after a crash (arbitrarily truncated tail: mid-block,
    mid-TOC, mid-tail) the file is scanned backwards from EOF for the newest
    seal whose TOC still parses, and the profile opens there — exactly the
    last checkpoint that completed.  Bytes beyond the seal are ignored.
    Raises :class:`ProfileFormatError` when no seal ever completed.
    """
    backend = backend_for(FORMAT_BINARY_V1)
    return backend._database_from_view(backend.open(path, recover=True))


# ---------------------------------------------------------------------------
# JSON-family backends
# ---------------------------------------------------------------------------

def _atomic_write(path: str, writer) -> str:
    """Stream into a sibling temp file and rename over the target, so neither
    an encoding failure nor a mid-write crash/disk-full can truncate an
    existing profile at ``path``."""
    temp_path = f"{path}.tmp"
    try:
        writer(temp_path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    os.replace(temp_path, path)
    return path


class JsonBackend(StorageBackend):
    """The legacy nested node-by-node JSON encoding."""

    name = FORMAT_JSON

    def save(self, database: ProfileDatabase, path: str,
             compression: Optional[str] = None) -> str:
        if check_compression(compression) is not None:
            raise ValueError(
                f"the {self.name!r} backend does not support per-block "
                f"compression; save with format={FORMAT_BINARY_V1!r} instead")
        data = database.to_dict(format=self.name)

        def write(temp_path: str) -> None:
            try:
                with open(temp_path, "w", encoding="utf-8") as handle:
                    json.dump(data, handle)
            except RecursionError:
                raise ValueError(
                    f"trace too deep for the nested {FORMAT_JSON!r} encoding "
                    f"(stdlib json recursion limit); save with "
                    f"format={FORMAT_COLUMNAR_JSON!r} or "
                    f"{FORMAT_BINARY_V1!r} instead") from None

        return _atomic_write(path, write)

    def load(self, path: str) -> ProfileDatabase:
        return load_profile(path, expected_format=self.name)


class ColumnarJsonBackend(JsonBackend):
    """Flat frame/metric columns in JSON (single-tree or sharded)."""

    name = FORMAT_COLUMNAR_JSON
    aliases = ("columnar",)


# ---------------------------------------------------------------------------
# cct-binary-v1: struct-packed blocks behind a footer TOC
# ---------------------------------------------------------------------------

def _encode_frames_block(tree: CallingContextTree) -> bytes:
    """Pack a shard's frame table: string heap + deduplicated frame table +
    per-node (frame index, parent index) columns.

    Real traces repeat the same frame in thousands of calling contexts (the
    same kernel under many steps), so the block stores each *distinct* frame
    once and nodes reference it by index — decode then constructs one
    ``Frame`` object per distinct frame and shares it (plus its memoized
    identity) across every node, which is what makes the lazy view's
    per-shard decode several times cheaper than a full JSON parse.
    """
    registry = tree.all_nodes()
    index_of = {id(node): index for index, node in enumerate(registry)}
    strings: Dict[str, int] = {}

    def intern(value: str) -> int:
        index = strings.get(value)
        if index is None:
            index = strings[value] = len(strings)
        return index

    frame_table: Dict[Tuple, int] = {}
    kinds = bytearray()
    names: List[int] = []
    files: List[int] = []
    libraries: List[int] = []
    tags: List[int] = []
    lines: List[int] = []
    pcs: List[int] = []
    frame_indexes: List[int] = []
    parents: List[int] = []
    for node in registry:
        frame = node.frame
        key = (frame.kind, frame.name, frame.file, frame.line,
               frame.library, frame.pc, frame.tag)
        frame_index = frame_table.get(key)
        if frame_index is None:
            frame_index = frame_table[key] = len(frame_table)
            kinds.append(KIND_CODES[frame.kind])
            names.append(intern(frame.name))
            files.append(intern(frame.file or ""))
            libraries.append(intern(frame.library or ""))
            tags.append(intern(frame.tag or ""))
            lines.append(int(frame.line))
            pcs.append(int(frame.pc))
        frame_indexes.append(frame_index)
        parents.append(index_of[id(node.parent)] if node.parent is not None else -1)

    encoded = [value.encode("utf-8") for value in strings]  # insertion order
    offsets = [0]
    for blob in encoded:
        offsets.append(offsets[-1] + len(blob))
    heap = b"".join(encoded)
    return b"".join([
        struct.pack("<IIIQ", len(registry), len(frame_table), len(encoded),
                    len(heap)),
        heap,
        _pack_array("I", offsets),
        bytes(kinds),
        _pack_array("I", names),
        _pack_array("I", files),
        _pack_array("I", libraries),
        _pack_array("I", tags),
        _pack_array("i", lines),
        _pack_array("Q", pcs),
        _pack_array("I", frame_indexes),
        _pack_array("i", parents),
    ])


def _decode_frames_prefix(buffer):
    """Parse a frames block up to and including the per-frame name indexes.

    The single definition of the block's leading layout (header, string
    heap + offsets, kind codes, name indexes), shared by the full structural
    decode and the names-only fast path so the two cannot drift.  Returns
    ``(node_count, frame_count, string_count, heap, string_offsets,
    kind_codes, names, offset)`` with ``offset`` positioned at the file
    column.
    """
    node_count, frame_count, string_count, heap_length = \
        struct.unpack_from("<IIIQ", buffer, 0)
    offset = struct.calcsize("<IIIQ")
    heap = bytes(buffer[offset:offset + heap_length])
    offset += heap_length
    string_offsets, offset = _read_array("I", buffer, offset, string_count + 1)
    kind_codes = bytes(buffer[offset:offset + frame_count])
    offset += frame_count
    names, offset = _read_array("I", buffer, offset, frame_count)
    return (node_count, frame_count, string_count, heap, string_offsets,
            kind_codes, names, offset)


def _decode_frames_block(buffer) -> Tuple[CallingContextTree, List[CCTNode]]:
    """Rebuild a shard's structure (no metrics) from a packed frame table."""
    (node_count, frame_count, string_count, heap, string_offsets, kind_codes,
     names, offset) = _decode_frames_prefix(buffer)
    table = [heap[string_offsets[i]:string_offsets[i + 1]].decode("utf-8")
             for i in range(string_count)]
    files, offset = _read_array("I", buffer, offset, frame_count)
    libraries, offset = _read_array("I", buffer, offset, frame_count)
    tags, offset = _read_array("I", buffer, offset, frame_count)
    lines, offset = _read_array("i", buffer, offset, frame_count)
    pcs, offset = _read_array("Q", buffer, offset, frame_count)
    frame_indexes, offset = _read_array("I", buffer, offset, node_count)
    parents, offset = _read_array("i", buffer, offset, node_count)
    # One Frame per *distinct* frame, shared across nodes (not interned in
    # the process-global table — see CallingContextTree._decode_frame).
    frames = [Frame(kind=KINDS_BY_CODE[kind_codes[i]], name=table[names[i]],
                    file=table[files[i]], line=lines[i],
                    library=table[libraries[i]], pc=pcs[i], tag=table[tags[i]])
              for i in range(frame_count)]
    return CallingContextTree.build_from_frames(
        [frames[i] for i in frame_indexes], parents)


#: Partial decode of a frames block for name-level rollups: the string heap
#: with its offsets, per-frame kind codes and name indexes, and the per-node
#: frame indexes — everything ``aggregate_by_name`` needs, nothing it
#: doesn't (no ``Frame`` objects, no tree, no per-node allocation at all).
_NameIndex = Tuple[bytes, "array.array", bytes, "array.array", "array.array"]


def _decode_name_index(buffer) -> _NameIndex:
    (node_count, frame_count, _string_count, heap, string_offsets, kind_codes,
     names, offset) = _decode_frames_prefix(buffer)
    # Step over the file/library/tag (u32), line (i32) and pc (u64) columns;
    # per-frame columns are deduplicated-frame sized, so skipping via
    # ``_read_array`` (same typecodes the full decoder reads) costs nothing
    # measurable and keeps this path pinned to the one layout definition.
    for typecode in ("I", "I", "I", "i", "Q"):
        _skipped, offset = _read_array(typecode, buffer, offset, frame_count)
    frame_indexes, _offset = _read_array("I", buffer, offset, node_count)
    return heap, string_offsets, kind_codes, names, frame_indexes


def pack_block(block: bytes, offset: int, codec: Optional[str],
               compress: bool, checksum: bool = True) -> Tuple[bytes, Dict]:
    """Apply per-block compression and build the block's TOC descriptor.

    The single definition of the descriptor protocol (``offset``/``length``
    plus the ``compression``/``raw_length``/``crc32`` flags) shared by
    one-shot saves and streamed checkpoints, so the two writers cannot
    diverge on what the lazy reader must understand.

    With ``checksum`` (the default) the descriptor carries the CRC-32 of the
    *stored* bytes (i.e. after compression), which is what lets a reader
    verify a block straight off the mapping before spending any decode work
    on it.  Readers that predate the flag simply ignore the extra key, and
    files without it load as before — the flag is backward- and
    forward-compatible.
    """
    descriptor: Dict = {"offset": offset}
    if compress and codec is not None:
        raw_length = len(block)
        block = zlib.compress(block)
        descriptor["compression"] = codec
        descriptor["raw_length"] = raw_length
    descriptor["length"] = len(block)
    if checksum:
        descriptor["crc32"] = zlib.crc32(block) & 0xFFFFFFFF
    return block, descriptor


# Column block layout: u32 entry count, then node-index / count / sum / min /
# max / mean / m2 arrays — the exact ``MetricAggregate.state()`` fields, so
# the round-trip is lossless (see AGGREGATE_STATE_FIELDS in metrics).
_COLUMN_HEADER = struct.Struct("<I")


def _encode_column_block(entries: List[Tuple[int, Tuple]]) -> bytes:
    """Pack one metric's column: ``(node index, aggregate state)`` entries.

    The field columns are extracted with two C-speed ``zip(*)`` transposes
    instead of one comprehension per field — column encoding dominates the
    incremental-checkpoint hot path (streamed reseals re-encode only columns
    when a shard's structure is unchanged), so this is worth the terseness.
    """
    if entries:
        node_indexes, states = zip(*entries)
        counts, sums, minima, maxima, means, m2s = zip(*states)
    else:
        node_indexes = counts = sums = minima = maxima = means = m2s = ()
    return b"".join([
        _COLUMN_HEADER.pack(len(entries)),
        _pack_array("I", node_indexes),
        _pack_array("Q", counts),
        _pack_array("d", sums),
        _pack_array("d", minima),
        _pack_array("d", maxima),
        _pack_array("d", means),
        _pack_array("d", m2s),
    ])


def _decode_column_block(buffer) -> Tuple[array.array, ...]:
    (entry_count,) = _COLUMN_HEADER.unpack_from(bytes(buffer[:_COLUMN_HEADER.size]), 0)
    offset = _COLUMN_HEADER.size
    node_indexes, offset = _read_array("I", buffer, offset, entry_count)
    counts, offset = _read_array("Q", buffer, offset, entry_count)
    sums, offset = _read_array("d", buffer, offset, entry_count)
    minima, offset = _read_array("d", buffer, offset, entry_count)
    maxima, offset = _read_array("d", buffer, offset, entry_count)
    means, offset = _read_array("d", buffer, offset, entry_count)
    m2s, offset = _read_array("d", buffer, offset, entry_count)
    return node_indexes, counts, sums, minima, maxima, means, m2s


def _column_sums(buffer) -> float:
    """Total of one column's ``sum`` array without decoding the rest."""
    (entry_count,) = _COLUMN_HEADER.unpack_from(bytes(buffer[:_COLUMN_HEADER.size]), 0)
    offset = _COLUMN_HEADER.size
    offset += 4 * entry_count   # node indexes (u32)
    offset += 8 * entry_count   # counts (u64)
    sums, _end = _read_array("d", buffer, offset, entry_count)
    return float(sum(sums))


#: ``kind_code`` key of the all-kinds rows in per-name state aggregations.
#: An unfiltered ``aggregate_by_name`` interleaves every kind's nodes in
#: node order, so its sums cannot be reconstructed from per-kind subtotals
#: (float addition is not associative) — the all-kinds rollup is accumulated
#: as its own first-class row instead of derived.
ALL_KINDS = -1


def accumulate_name_state(totals: Dict, key,
                          count: int, total: float, minimum: float,
                          maximum: float, mean: float, m2: float) -> None:
    """Fold one Welford state tuple into ``totals[key]``.

    The statistical fields merge with the exact operation sequence of
    ``MetricAggregate.merge`` (parallel/Chan Welford), but the ``sum`` field
    follows the accumulation recurrence of the name-rollup fast paths —
    ``totals.get(name, 0.0) + value`` — so sums stay bit-for-bit equal to
    ``aggregate_by_name_columns`` / ``column_aggregate_by_name`` even for
    the ``0.0 + (-0.0)`` corner a copy-on-first-merge would get wrong.
    Callers only feed states with ``count > 0`` (stored column entries are
    filtered at write time), so the zero-count branches of the aggregate
    merge never arise here.
    """
    previous = totals.get(key)
    if previous is None:
        totals[key] = (count, 0.0 + total, minimum, maximum, mean, m2)
        return
    p_count, p_sum, p_min, p_max, p_mean, p_m2 = previous
    combined = p_count + count
    delta = mean - p_mean
    merged_m2 = p_m2 + m2 + delta * delta * p_count * count / combined
    merged_mean = (p_mean * p_count + mean * count) / combined
    totals[key] = (combined, p_sum + total,
                   minimum if minimum < p_min else p_min,
                   maximum if maximum > p_max else p_max,
                   merged_mean, merged_m2)


class _LazyShard:
    """One shard of an open binary profile: decoded piece by piece."""

    def __init__(self, view: "LazyProfileView", entry: Mapping) -> None:
        self._view = view
        self.entry = entry
        self.shard_id = int(entry["shard_id"])
        self._tree: Optional[CallingContextTree] = None
        self._nodes: Optional[List[CCTNode]] = None
        self._name_index: Optional[_NameIndex] = None
        self.loaded_columns: set = set()

    @property
    def structure_decoded(self) -> bool:
        return self._tree is not None

    def column_names(self) -> List[str]:
        return list(self.entry["columns"])

    def _frames_label(self) -> str:
        return f"frames block of shard {self.shard_id}"

    def _column_label(self, metric: str) -> str:
        return f"column block {metric!r} of shard {self.shard_id}"

    def _block(self, descriptor: Mapping, label: str = "block") -> memoryview:
        if TELEMETRY.enabled:
            TELEMETRY.count("storage.blocks_decoded")
        offset = int(descriptor["offset"])
        raw = self._view._checked_slice(descriptor, label)
        codec = descriptor.get("compression")
        if codec in _NO_COMPRESSION:
            return raw
        if codec != COMPRESSION_ZLIB:
            raw.release()  # see _checked_slice: don't pin the mmap via the traceback
            raise ProfileFormatError(
                f"{self._view.path!r}: {label} at offset {offset} uses "
                f"unknown compression {codec!r}")
        stored = bytes(raw)
        raw.release()
        try:
            data = zlib.decompress(stored)
        except zlib.error as error:
            raise ProfileCorruptionError(
                f"{self._view.path!r}: {label} at offset {offset} is "
                f"corrupt: zlib decompression failed ({error})") from None
        expected = descriptor.get("raw_length")
        if expected is not None and len(data) != int(expected):
            raise ProfileCorruptionError(
                f"{self._view.path!r}: {label} at offset {offset} "
                f"decompressed to {len(data)} bytes, expected {expected}")
        return memoryview(data)

    def tree(self) -> CallingContextTree:
        """The shard's structure (frame table decoded on first access)."""
        if self._tree is None:
            with TELEMETRY.span("storage.decode.frames", shard=self.shard_id):
                self._tree, self._nodes = _decode_frames_block(
                    self._block(self.entry["frames"], self._frames_label()))
                self._tree.insertions = int(self.entry.get("insertions", 0))
        return self._tree

    def ensure_column(self, metric: str) -> None:
        """Decode one metric column into the shard's nodes, once."""
        descriptor = self.entry["columns"].get(metric)
        if descriptor is None or metric in self.loaded_columns:
            return
        with TELEMETRY.span("storage.decode.column", shard=self.shard_id,
                            metric=metric):
            tree = self.tree()
            columns = _decode_column_block(
                self._block(descriptor, self._column_label(metric)))
            tree.install_exclusive_column(self._nodes, metric, *columns)
            self.loaded_columns.add(metric)

    def full_tree(self) -> CallingContextTree:
        for metric in self.entry["columns"]:
            self.ensure_column(metric)
        return self.tree()

    def column_sum_total(self, metric: str) -> float:
        descriptor = self.entry["columns"].get(metric)
        if descriptor is None:
            return 0.0
        if metric in self.loaded_columns:
            return self.tree().total_metric(metric)
        return _column_sums(self._block(descriptor, self._column_label(metric)))

    def aggregate_by_name(self, kind: Optional[FrameKind],
                          metric: str) -> Dict[str, float]:
        self.ensure_column(metric)
        return self.tree().aggregate_by_name(kind=kind, metric=metric)

    def aggregate_by_name_columns(self, kind: Optional[FrameKind],
                                  metric: str) -> Dict[str, float]:
        """Name-level rollup straight from the raw blocks: no tree decode.

        Walks the metric column against a partial frames-block decode (heap,
        kind codes, name indexes — no ``Frame`` or node objects), summing in
        node-index order, which is the registration order the tree-based
        ``aggregate_by_name`` also sums in — the two paths agree bit for bit.
        Stored column entries all have count > 0 (both writers filter through
        ``BinaryV1Backend._columns``), so the observation-count gate the tree
        path applies is already satisfied.  Falls back to the tree path when
        this shard's structure or this column is warm anyway.
        """
        if self.structure_decoded or metric in self.loaded_columns:
            return self.aggregate_by_name(kind, metric)
        descriptor = self.entry["columns"].get(metric)
        if descriptor is None:
            return {}
        if self._name_index is None:
            self._name_index = _decode_name_index(
                self._block(self.entry["frames"], self._frames_label()))
        heap, string_offsets, kind_codes, names, frame_indexes = self._name_index
        node_indexes, _counts, sums, *_rest = _decode_column_block(
            self._block(descriptor, self._column_label(metric)))
        wanted = KIND_CODES[kind] if kind is not None else None
        name_of: Dict[int, str] = {}
        totals: Dict[str, float] = {}
        for node_index, value in zip(node_indexes, sums):
            frame = frame_indexes[node_index]
            if wanted is not None and kind_codes[frame] != wanted:
                continue
            name = name_of.get(frame)
            if name is None:
                string = names[frame]
                name = heap[string_offsets[string]:
                            string_offsets[string + 1]].decode("utf-8")
                name_of[frame] = name
            totals[name] = totals.get(name, 0.0) + value
        return totals

    def name_states_columns(self, metric: str) -> Dict[Tuple[int, str], Tuple]:
        """Per-name Welford states straight from the raw blocks.

        Returns ``{(kind_code, name): (count, sum, min, max, mean, m2)}``
        with one row per ``(kind, name)`` pair observed in this shard *plus*
        an :data:`ALL_KINDS` row per name (the unfiltered rollup, which is
        not derivable from the per-kind rows — see :data:`ALL_KINDS`).  One
        walk of the column in node-index order feeds both key families, so
        each family's addition sequence is identical to the filtered walk
        ``aggregate_by_name_columns`` performs: every row's ``sum`` matches
        that path bit for bit.  This is what the fleet query index persists
        per run at ingest; it always reads the sealed blocks (never a warm
        decoded tree), so index building and drift fallbacks see the same
        bytes the durability checks verified.
        """
        descriptor = self.entry["columns"].get(metric)
        if descriptor is None:
            return {}
        with TELEMETRY.span("storage.decode.name_states",
                            shard=self.shard_id, metric=metric):
            if self._name_index is None:
                self._name_index = _decode_name_index(
                    self._block(self.entry["frames"], self._frames_label()))
            (heap, string_offsets, kind_codes, names,
             frame_indexes) = self._name_index
            (node_indexes, counts, sums, minima, maxima, means,
             m2s) = _decode_column_block(
                self._block(descriptor, self._column_label(metric)))
            name_of: Dict[int, str] = {}
            totals: Dict[Tuple[int, str], Tuple] = {}
            for position, node_index in enumerate(node_indexes):
                frame = frame_indexes[node_index]
                name = name_of.get(frame)
                if name is None:
                    string = names[frame]
                    name = heap[string_offsets[string]:
                                string_offsets[string + 1]].decode("utf-8")
                    name_of[frame] = name
                state = (counts[position], sums[position], minima[position],
                         maxima[position], means[position], m2s[position])
                accumulate_name_state(totals, (kind_codes[frame], name),
                                      *state)
                accumulate_name_state(totals, (ALL_KINDS, name), *state)
            return totals


#: Tail bytes compared by the :meth:`LazyProfileView.refresh` fast path —
#: generously covers the fixed-size tail record (offset + length + magic)
#: plus the end of the TOC JSON, so two files agreeing on size and these
#: bytes reference the same newest seal.
_REFRESH_PROBE_BYTES = 256


class LazyProfileView:
    """Query-facing view of an mmap-backed ``cct-binary-v1`` profile.

    Opening a profile maps the file and reads the footer TOC; nothing else is
    decoded.  Queries then materialize the minimum they need:

    * ``total_metric`` sums a metric's column blocks directly — no frame
      tables are decoded at all;
    * ``aggregate_by_name`` (and the per-shard ``shard_aggregate_by_name``)
      decode only the touched shards' frame tables plus the one requested
      metric column per shard — per-shard results combine by name, so no
      merged tree is built;
    * everything structural (``root``, traversals, kind indexes, ``find``)
      hydrates the full tree on first use — :meth:`hydrate` — after which the
      view behaves exactly like the eager tree it decodes into.

    The read API mirrors ``CallingContextTree``/``ShardedCallingContextTree``
    so the query layer, the GUI exporters and the experiment harness work
    unchanged against either.  Lazy views are read-only: mutate the tree
    returned by :meth:`hydrate` instead.
    """

    is_merged_view = False

    def __init__(self, path: str, handle, mm: mmap.mmap, toc: Mapping,
                 meta: Mapping, seal_end: Optional[int] = None) -> None:
        self.path = path
        self._handle = handle
        self._mm = mm
        #: End offset of the seal this view serves (== file size for a file
        #: ending in a seal; earlier for a view attached to a truncated or
        #: still-growing stream).
        self.seal_end = len(mm) if seal_end is None else int(seal_end)
        #: Size of the file as mapped, driving the :meth:`refresh` fast
        #: path: streamed files only ever grow between seals, and a
        #: compaction replaces the whole file, so an unchanged size plus an
        #: unchanged tail means the newest seal is the one already served.
        self._file_size = len(mm)
        self._adopt(toc, meta)

    def _adopt(self, toc: Mapping, meta: Mapping,
               previous: Optional[Dict[int, _LazyShard]] = None) -> None:
        """(Re)build the shard map from a TOC, reusing decoded shards whose
        block descriptors are unchanged (streamed appends never rewrite a
        sealed block in place, so identical descriptors mean identical bytes).
        """
        self._toc = toc
        self._meta = meta
        self.program_name = str(toc.get("program", "program"))
        self._tree_kind = str(toc.get("tree_kind", "sharded"))
        self._shards: Dict[int, _LazyShard] = {}
        for entry in toc.get("shards", []):
            shard = _LazyShard(self, entry)
            if previous is not None:
                old = previous.get(shard.shard_id)
                if old is not None and old.entry == entry:
                    shard = old
            self._shards[shard.shard_id] = shard
        self._hydrated: Optional[Union[CallingContextTree,
                                       ShardedCallingContextTree]] = None
        self._aggregate_cache: Dict[Tuple, Tuple[Tuple, Dict[str, float]]] = {}
        self._total_cache: Dict[str, Tuple[Tuple, float]] = {}
        #: Offsets whose blocks already passed CRC verification.  Reset on
        #: every (re)adoption: a refresh/compaction maps a new byte range, so
        #: previously verified offsets say nothing about the new file.
        self._verified: set = set()

    # -- block integrity ---------------------------------------------------------------

    def _checked_slice(self, descriptor: Mapping, label: str) -> memoryview:
        """The block's stored bytes, bounds- and checksum-verified.

        Every block read funnels through here, so a block is verified lazily
        on its first touch (and once per view — re-reads are free).  Blocks
        whose descriptor carries no ``crc32`` (pre-checksum files) get the
        bounds check only.  Raises :class:`ProfileCorruptionError` naming the
        file, the block and its offset.
        """
        offset, length = int(descriptor["offset"]), int(descriptor["length"])
        if offset < 0 or offset + length > self.seal_end:
            raise ProfileCorruptionError(
                f"{self.path!r}: {label} at offset {offset} (length {length}) "
                f"extends past the sealed region (seal ends at "
                f"{self.seal_end}); the table of contents references bytes "
                f"that were never sealed")
        raw = memoryview(self._mm)[offset:offset + length]
        expected = descriptor.get("crc32")
        if expected is not None and offset not in self._verified:
            actual = zlib.crc32(raw) & 0xFFFFFFFF
            if actual != int(expected):
                # Release before raising: the traceback would otherwise pin
                # this frame (and the exported mmap pointer) alive past the
                # caller's ``close()``, turning a detected corruption into a
                # BufferError on unmap.
                raw.release()
                raise ProfileCorruptionError(
                    f"{self.path!r}: {label} at offset {offset} (length "
                    f"{length}) failed CRC-32 verification (stored "
                    f"0x{int(expected):08x}, computed 0x{actual:08x}); the "
                    f"block's bytes changed after sealing")
            self._verified.add(offset)
            if TELEMETRY.enabled:
                TELEMETRY.count("storage.crc_verified")
        return raw

    def verify_blocks(self) -> List[str]:
        """Eagerly verify every block the TOC references; [] when clean.

        Checks bounds and CRC-32 for the meta block and each shard's frames
        and column blocks, and fully decompresses compressed blocks (a
        corrupt zlib stream is corruption even when no checksum was stored).
        Returns one human-readable description per bad block instead of
        raising, so a store scrub can report everything that rotted at once.
        Verification results are cached on the view: a query issued after a
        clean ``verify_blocks`` re-hashes nothing.
        """
        problems: List[str] = []

        def check(probe) -> None:
            try:
                probe()
            except ProfileFormatError as error:
                problems.append(str(error))

        meta = self._toc.get("meta")
        if meta:
            check(lambda: self._checked_slice(meta, "meta block"))
        for shard in self._shards.values():
            check(lambda s=shard: s._block(s.entry["frames"],
                                           s._frames_label()))
            for metric, descriptor in shard.entry["columns"].items():
                check(lambda s=shard, m=metric, d=descriptor:
                      s._block(d, s._column_label(m)))
        return problems

    # -- lifecycle ------------------------------------------------------------------

    @classmethod
    def attach(cls, path: str) -> "LazyProfileView":
        """Open the newest *sealed* checkpoint of a streamed profile.

        Unlike ``ProfileDatabase.load`` this tolerates an arbitrarily
        truncated or still-being-appended tail: the file is scanned backwards
        for the last intact seal, so an analyzer can attach to a run another
        process is still streaming.  Call :meth:`refresh` to follow new seals
        as they land.
        """
        backend = backend_for(FORMAT_BINARY_V1)
        try:
            return backend.open(path, recover=True)
        except ProfileFormatError:
            raise
        except (OSError, struct.error) as error:
            # The file vanished or turned unreadable between the caller's
            # decision to attach and the open/scan — e.g. a compaction or
            # cleanup raced us.  Name the path and condition instead of
            # leaking the raw error (the PR 4 error-naming convention).
            raise ProfileFormatError(
                f"{path!r} cannot be attached: the file vanished or became "
                f"unreadable mid-operation ({error})") from None

    def refresh(self) -> bool:
        """Re-scan the file and move to its newest seal.

        Returns True when the view advanced to a different seal (new shard
        map, caches and any hydrated tree discarded; shards whose blocks are
        unchanged keep their decoded state), False when the newest seal is
        the one already being served.  Works across a compaction, which
        replaces the file: the view reopens by path.

        The no-change case is the hot one — a watcher polls every live run
        every tick, and most ticks bring no new seal — so it is answered
        with one ``stat`` plus a small tail read instead of a full
        reopen-and-scan: appends grow the file and compaction replaces it,
        so an unchanged size with an unchanged tail (which contains the
        newest seal's TOC pointer) means nothing moved.  Any doubt — a
        size change, a differing tail, any OSError on the probe — falls
        through to the full reopen, which also owns the error naming.
        """
        if self._mm is not None and self._file_size > 0:
            try:
                if os.path.getsize(self.path) == self._file_size:
                    probe_at = max(0, self._file_size - _REFRESH_PROBE_BYTES)
                    with open(self.path, "rb") as probe:
                        probe.seek(probe_at)
                        tail = probe.read(_REFRESH_PROBE_BYTES)
                    if tail == bytes(memoryview(self._mm)
                                     [probe_at:self._file_size]):
                        return False
            except OSError:
                pass  # vanished/unreadable: the full reopen names it
        backend = backend_for(FORMAT_BINARY_V1)
        try:
            fresh = backend.open(self.path, recover=True)
        except ProfileFormatError:
            raise
        except (OSError, struct.error) as error:
            # Mid-compaction the path is briefly the only way back to the
            # profile; if it vanished (the run was deleted, the directory
            # cleaned) surface that as a named format error, not a raw
            # OSError/struct.error from deep inside the reopen.
            raise ProfileFormatError(
                f"{self.path!r} cannot be refreshed: the file vanished or "
                f"became unreadable mid-operation ({error})") from None
        if fresh.seal_end == self.seal_end and fresh._toc == self._toc:
            fresh.close()
            return False
        previous = self._shards
        old_mm, old_handle = self._mm, self._handle
        self._mm, self._handle = fresh._mm, fresh._handle
        self.seal_end = fresh.seal_end
        self._file_size = fresh._file_size
        self._adopt(fresh._toc, fresh._meta, previous=previous)
        if old_mm is not None:
            old_mm.close()
        if old_handle is not None:
            old_handle.close()
        return True

    def close(self) -> None:
        """Release the mapping (hydrated trees, if any, stay usable)."""
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LazyProfileView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability (what has been decoded so far) ---------------------------------

    @property
    def hydrated(self) -> bool:
        return self._hydrated is not None

    def decoded_shard_ids(self) -> set:
        """Shards whose frame tables have been decoded."""
        return {tid for tid, shard in self._shards.items()
                if shard.structure_decoded}

    def decoded_columns(self) -> set:
        """``(shard id, metric)`` pairs whose columns have been decoded."""
        return {(tid, metric) for tid, shard in self._shards.items()
                for metric in shard.loaded_columns}

    # -- TOC-served metadata (no decoding) --------------------------------------------

    def shard_ids(self) -> List[int]:
        return list(self._shards)

    def shard_count(self) -> int:
        return len(self._shards)

    def shard_provenance(self) -> List[Dict[str, object]]:
        return [{
            "shard_id": shard.shard_id,
            "thread_name": str(shard.entry.get("thread_name", "")),
            "thread_kind": str(shard.entry.get("thread_kind", "")),
        } for shard in self._shards.values()]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for shard in self._shards.values():
            for metric in shard.column_names():
                if metric not in names:
                    names.append(metric)
        return names

    def stored_node_count(self) -> int:
        """Nodes across all shards per the TOC (no decode; shard roots each
        count, exactly like the sharded tree's collection-side number)."""
        return sum(int(shard.entry.get("nodes", 0))
                   for shard in self._shards.values())

    @property
    def insertions(self) -> int:
        if self._hydrated is not None:
            return self._hydrated.insertions
        return sum(int(shard.entry.get("insertions", 0))
                   for shard in self._shards.values())

    # -- lazy query fast paths -----------------------------------------------------------

    def total_metric(self, metric: str) -> float:
        """Whole-profile metric total from the column blocks alone.

        Memoized behind the decoded shards' generation signature (the same
        key ``aggregate_by_name`` uses), so mutations made through a
        ``shard_tree()`` handle invalidate totals and aggregations alike.
        """
        if self._hydrated is not None:
            return self._hydrated.total_metric(metric)
        signature = self._generation_signature()
        cached = self._total_cache.get(metric)
        if cached is not None and cached[0] == signature:
            return cached[1]
        total = sum(shard.column_sum_total(metric)
                    for shard in self._shards.values())
        self._total_cache[metric] = (signature, total)
        return total

    def _generation_signature(self) -> Tuple:
        return tuple(shard._tree._generation if shard._tree is not None else -1
                     for shard in self._shards.values())

    def aggregate_by_name(self, kind: Optional[FrameKind] = None,
                          metric: str = "gpu_time") -> Dict[str, float]:
        """Cross-shard bottom-up aggregation without building a merged tree.

        Per-shard aggregations (frame table + one metric column each) sum by
        name into the same rows a merged tree would produce: a merged node's
        aggregate is the Welford merge of its per-shard contributions, and
        sums are additive.
        """
        if self._hydrated is not None:
            return self._hydrated.aggregate_by_name(kind=kind, metric=metric)
        key = (kind, metric)
        cached = self._aggregate_cache.get(key)
        signature = self._generation_signature()
        if cached is not None and cached[0] == signature:
            return dict(cached[1])
        totals: Dict[str, float] = {}
        for shard in self._shards.values():
            for name, value in shard.aggregate_by_name(kind, metric).items():
                totals[name] = totals.get(name, 0.0) + value
        self._aggregate_cache[key] = (self._generation_signature(), totals)
        return dict(totals)

    def column_aggregate_by_name(self, kind: Optional[FrameKind] = None,
                                 metric: str = "gpu_time") -> Dict[str, float]:
        """``aggregate_by_name`` without decoding trees at all.

        Per shard, the metric column is walked against a partial frames-block
        decode (names and kind codes only) — no ``Frame`` objects, no nodes.
        Produces bit-for-bit the same rows as :meth:`aggregate_by_name` (the
        per-shard fast path sums in the same order the tree path would) and
        shares its memoization, but leaves ``decoded_shard_ids`` untouched:
        nothing structural was materialized.  This is the fleet aggregator's
        gear for cross-run rollups over many profiles at once; per-shard
        state that is already decoded is reused rather than re-read.
        """
        if self._hydrated is not None:
            return self._hydrated.aggregate_by_name(kind=kind, metric=metric)
        key = (kind, metric)
        cached = self._aggregate_cache.get(key)
        signature = self._generation_signature()
        if cached is not None and cached[0] == signature:
            return dict(cached[1])
        totals: Dict[str, float] = {}
        for shard in self._shards.values():
            for name, value in shard.aggregate_by_name_columns(kind,
                                                               metric).items():
                totals[name] = totals.get(name, 0.0) + value
        self._aggregate_cache[key] = (self._generation_signature(), totals)
        return dict(totals)

    def column_name_states(self, metric: str) -> Dict[Tuple[int, str], Tuple]:
        """Whole-profile per-name Welford states from the raw blocks.

        Per-shard :meth:`_LazyShard.name_states_columns` results fold in
        shard order with :func:`accumulate_name_state`, mirroring the
        cross-shard sum accumulation of :meth:`column_aggregate_by_name`
        exactly — for any kind code (including :data:`ALL_KINDS`), the
        ``sum`` fields here equal that method's values bit for bit.  Not
        memoized (the fleet index computes it once per metric at ingest;
        query-time callers cache at their own layer) and deliberately
        independent of decode caches: it reads the sealed bytes even when a
        hydrated tree is warm.
        """
        totals: Dict[Tuple[int, str], Tuple] = {}
        for shard in self._shards.values():
            for key, state in shard.name_states_columns(metric).items():
                accumulate_name_state(totals, key, *state)
        return totals

    def shard_aggregate_by_name(self, shard_id: int,
                                kind: Optional[FrameKind] = None,
                                metric: str = "gpu_time") -> Dict[str, float]:
        """Single-shard aggregation: decodes only that shard's frame table
        and the one requested metric column."""
        shard = self._shards.get(shard_id)
        if shard is None:
            raise KeyError(f"profile has no shard {shard_id!r}; "
                           f"available: {sorted(self._shards)}")
        return shard.aggregate_by_name(kind, metric)

    def shard_tree(self, shard_id: int) -> CallingContextTree:
        """One shard fully decoded (structure plus every metric column)."""
        shard = self._shards.get(shard_id)
        if shard is None:
            raise KeyError(f"profile has no shard {shard_id!r}; "
                           f"available: {sorted(self._shards)}")
        return shard.full_tree()

    # -- full materialization ---------------------------------------------------------

    def hydrate(self) -> Union[CallingContextTree, ShardedCallingContextTree]:
        """Decode everything into an eager tree (cached).

        Sharded profiles hydrate into a :class:`ShardedCallingContextTree`
        (provenance preserved); profiles saved from a single tree hydrate
        back into a plain :class:`CallingContextTree`.
        """
        if self._hydrated is None:
            if self._tree_kind == "single" and len(self._shards) == 1:
                (shard,) = self._shards.values()
                self._hydrated = shard.full_tree()
            else:
                tree = ShardedCallingContextTree(self.program_name)
                for tid, shard in self._shards.items():
                    tree._shards[tid] = shard.full_tree()
                    tree._provenance[tid] = {
                        "shard_id": tid,
                        "thread_name": str(shard.entry.get("thread_name", "")),
                        "thread_kind": str(shard.entry.get("thread_kind", "")),
                    }
                self._hydrated = tree
        return self._hydrated

    def merged(self) -> CallingContextTree:
        """The queryable union tree (hydrates on first use)."""
        hydrated = self.hydrate()
        if isinstance(hydrated, ShardedCallingContextTree):
            return hydrated.merged()
        return hydrated

    # -- eager read API (delegates to the hydrated tree) -------------------------------

    @property
    def root(self) -> CCTNode:
        return self.merged().root

    def nodes(self):
        return self.merged().nodes()

    def bfs(self):
        return self.merged().bfs()

    def all_nodes(self) -> List[CCTNode]:
        return self.merged().all_nodes()

    def leaves(self):
        return self.merged().leaves()

    def find(self, predicate) -> List[CCTNode]:
        return self.merged().find(predicate)

    def nodes_of_kind(self, kind: FrameKind) -> List[CCTNode]:
        return self.merged().nodes_of_kind(kind)

    @property
    def kernels(self) -> List[CCTNode]:
        return self.merged().kernels

    @property
    def operators(self) -> List[CCTNode]:
        return self.merged().operators

    @property
    def scopes(self) -> List[CCTNode]:
        return self.merged().scopes

    def node_count(self) -> int:
        return self.merged().node_count()

    def max_depth(self) -> int:
        return self.merged().max_depth()

    def ensure_inclusive(self) -> None:
        self.merged().ensure_inclusive()

    @property
    def generation(self) -> int:
        """0 while the view is an immutable mapping; the hydrated tree's
        counter afterwards (hydrated trees are mutable)."""
        return self._hydrated.generation if self._hydrated is not None else 0

    def approximate_size_bytes(self) -> int:
        """Footprint of what has actually been decoded (the mapping itself is
        file-backed and pages in/out on demand)."""
        if self._hydrated is not None:
            return self._hydrated.approximate_size_bytes()
        total = 2048
        for shard in self._shards.values():
            if shard.structure_decoded:
                total += shard.tree().approximate_size_bytes()
        return total

    def to_dict(self) -> Dict:
        return self.hydrate().to_dict()

    def to_columnar(self) -> Dict:
        return self.hydrate().to_columnar()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LazyProfileView({self.path!r}, shards={len(self._shards)}, "
                f"decoded={len(self.decoded_shard_ids())}, "
                f"hydrated={self.hydrated})")


class BinaryV1Backend(StorageBackend):
    """The mmap-backed binary columnar format (``cct-binary-v1``)."""

    name = FORMAT_BINARY_V1
    aliases = ("binary",)
    supports_compression = True

    def sniff(self, head: bytes) -> bool:
        return head.startswith(BINARY_MAGIC)

    # -- save ---------------------------------------------------------------------------

    def save(self, database: ProfileDatabase, path: str,
             compression: Optional[str] = None,
             checksums: bool = True) -> str:
        codec = check_compression(compression)
        shards, provenance, tree_kind, program = self._shard_map(database.tree)

        def write(temp_path: str) -> None:
            with open(temp_path, "wb") as handle:
                handle.write(BINARY_MAGIC)
                offset = len(BINARY_MAGIC)

                def emit(block: bytes, compress: bool = False) -> Dict[str, int]:
                    nonlocal offset
                    block, descriptor = pack_block(block, offset, codec,
                                                   compress,
                                                   checksum=checksums)
                    handle.write(block)
                    offset += len(block)
                    return descriptor

                meta_block = emit(json.dumps({
                    "metadata": database.metadata.as_dict(),
                    "dlmonitor_stats": dict(database.dlmonitor_stats),
                    "issues": list(database.issues),
                }).encode("utf-8"))

                shard_entries: List[Dict] = []
                for origin, (_tid, shard) in zip(provenance, shards.items()):
                    entry: Dict[str, object] = dict(origin)
                    entry["insertions"] = shard.insertions
                    entry["nodes"] = shard.node_count()
                    entry["frames"] = emit(_encode_frames_block(shard),
                                           compress=True)
                    columns: Dict[str, Dict] = {}
                    for metric, column in self._columns(shard).items():
                        descriptor = emit(_encode_column_block(column),
                                          compress=True)
                        descriptor["entries"] = len(column)
                        columns[metric] = descriptor
                    entry["columns"] = columns
                    shard_entries.append(entry)

                document = {
                    "format": FORMAT_BINARY_V1,
                    "version": 1,
                    "tree_kind": tree_kind,
                    "program": program,
                    "meta": meta_block,
                    "shards": shard_entries,
                }
                if checksums:
                    # TOC-level flag: every descriptor in this seal carries a
                    # CRC-32.  Readers that predate it ignore the key.
                    document["checksum"] = "crc32"
                toc = json.dumps(document).encode("utf-8")
                toc_offset = offset
                handle.write(toc)
                handle.write(_TAIL.pack(toc_offset, len(toc), BINARY_MAGIC))

        return _atomic_write(path, write)

    @staticmethod
    def _shard_map(tree) -> Tuple[Dict[int, CallingContextTree],
                                  List[Dict[str, object]], str, str]:
        if isinstance(tree, LazyProfileView):
            tree = tree.hydrate()
        if isinstance(tree, ShardedCallingContextTree):
            return (tree.shards(), tree.shard_provenance(), "sharded",
                    tree.program_name)
        provenance = [{"shard_id": DEFAULT_SHARD_ID, "thread_name": "",
                       "thread_kind": ""}]
        return ({DEFAULT_SHARD_ID: tree}, provenance, "single",
                tree.root.frame.name)

    @staticmethod
    def _columns(shard: CallingContextTree) -> Dict[str, List[Tuple[int, Tuple]]]:
        """Per-metric ``(node index, aggregate state)`` columns of one shard.

        Count-0 zombie aggregates are skipped, the same policy the JSON
        encodings apply (``MetricSet.as_dict``): they mean "nothing observed"
        and would round-trip as spurious rows.
        """
        columns: Dict[str, List[Tuple[int, Tuple]]] = {}
        for index, node in enumerate(shard.all_nodes()):
            for metric, aggregate in node.exclusive.items():
                if aggregate.count <= 0:
                    continue
                columns.setdefault(metric, []).append((index, aggregate.state()))
        return columns

    # -- load ---------------------------------------------------------------------------

    def load(self, path: str) -> ProfileDatabase:
        return self._database_from_view(self.open(path))

    @staticmethod
    def _database_from_view(view: LazyProfileView) -> ProfileDatabase:
        meta = view._meta
        database = ProfileDatabase(
            tree=view,
            metadata=ProfileMetadata.from_dict(meta.get("metadata", {})),
            dlmonitor_stats=dict(meta.get("dlmonitor_stats", {})),
        )
        database.issues = list(meta.get("issues", []))
        return database

    @staticmethod
    def _parse_toc(mm, toc_offset: int, toc_length: int) -> Optional[Dict]:
        """The TOC at ``(offset, length)`` if it parses and self-identifies,
        else None (never raises — the recovery scan probes candidates)."""
        try:
            toc = json.loads(bytes(mm[toc_offset:toc_offset + toc_length])
                             .decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if isinstance(toc, dict) and toc.get("format") == FORMAT_BINARY_V1:
            return toc
        return None

    @classmethod
    def _find_seal(cls, mm, path: str) -> Tuple[Dict, int]:
        """Scan backwards from EOF for the last intact seal.

        A seal is a 24-byte tail — ``u64 toc_offset · u64 toc_length ·
        magic`` — whose TOC bounds are self-consistent and whose TOC parses
        as a ``cct-binary-v1`` table of contents.  An arbitrarily truncated
        tail (crash mid-append) simply fails these checks and the scan moves
        to the previous candidate.  Returns ``(toc, seal_end)`` where
        ``seal_end`` is the end offset of the tail (every byte beyond it is
        unsealed garbage).
        """
        magic_length = len(BINARY_MAGIC)
        search_end = len(mm)
        while True:
            found = mm.rfind(BINARY_MAGIC, magic_length, search_end)
            if found < 0:
                raise ProfileFormatError(
                    f"{path!r} contains no intact sealed checkpoint (crash "
                    f"before the first seal completed, or not a streamed "
                    f"{FORMAT_BINARY_V1} profile)")
            tail_start = found - 16
            if tail_start >= magic_length:
                toc_offset, toc_length = struct.unpack_from("<QQ", mm,
                                                            tail_start)
                if (toc_offset >= magic_length
                        and toc_offset + toc_length == tail_start):
                    toc = cls._parse_toc(mm, toc_offset, toc_length)
                    if toc is not None:
                        return toc, found + magic_length
            search_end = found + magic_length - 1

    def open(self, path: str, recover: bool = False) -> LazyProfileView:
        """Map the file and read the TOC; no shard or column is decoded.

        With ``recover=True`` the file is scanned backwards for the last
        intact seal instead of requiring one at exactly EOF, so truncated
        crash leftovers and still-growing streams open at their newest
        sealed checkpoint.
        """
        handle = open(path, "rb")
        try:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            handle.close()
            raise ProfileFormatError(
                f"{path!r} is empty (0 bytes): not a {FORMAT_BINARY_V1} "
                f"profile") from None
        except BaseException:
            handle.close()
            raise
        try:
            if len(mm) < len(BINARY_MAGIC) + _TAIL.size:
                raise ProfileFormatError(
                    f"{path!r} is too short ({len(mm)} bytes) to be a "
                    f"{FORMAT_BINARY_V1} profile")
            if mm[:len(BINARY_MAGIC)] != BINARY_MAGIC:
                raise ProfileFormatError(
                    f"{path!r} does not start with the {FORMAT_BINARY_V1} "
                    f"magic")
            if recover:
                toc, seal_end = self._find_seal(mm, path)
            else:
                seal_end = len(mm)
                toc_offset, toc_length, tail_magic = _TAIL.unpack(mm[-_TAIL.size:])
                if tail_magic != BINARY_MAGIC:
                    raise ProfileFormatError(
                        f"{path!r} is truncated or corrupt: trailing "
                        f"{FORMAT_BINARY_V1} magic missing (file cut "
                        f"mid-block or mid-seal; recover_profile() reopens "
                        f"the last sealed checkpoint of a streamed profile)")
                toc = self._parse_toc(mm, toc_offset, toc_length)
                if toc is None:
                    raise ProfileFormatError(
                        f"{path!r} is truncated or corrupt: the trailing "
                        f"table of contents does not parse as a "
                        f"{FORMAT_BINARY_V1} TOC")
            meta_descriptor = toc.get("meta", {})
            meta_offset = int(meta_descriptor.get("offset", 0))
            meta_length = int(meta_descriptor.get("length", 0))
            meta_bytes = bytes(mm[meta_offset:meta_offset + meta_length])
            expected_crc = meta_descriptor.get("crc32")
            if meta_length and expected_crc is not None:
                actual_crc = zlib.crc32(meta_bytes) & 0xFFFFFFFF
                if actual_crc != int(expected_crc):
                    raise ProfileCorruptionError(
                        f"{path!r}: meta block at offset {meta_offset} "
                        f"(length {meta_length}) failed CRC-32 verification "
                        f"(stored 0x{int(expected_crc):08x}, computed "
                        f"0x{actual_crc:08x}); the block's bytes changed "
                        f"after sealing")
            try:
                meta = (json.loads(meta_bytes.decode("utf-8"))
                        if meta_length else {})
            except (UnicodeDecodeError, ValueError) as error:
                raise ProfileCorruptionError(
                    f"{path!r}: meta block at offset {meta_offset} does not "
                    f"parse as JSON ({error})") from None
        except BaseException:
            mm.close()
            handle.close()
            raise
        if TELEMETRY.enabled:
            TELEMETRY.count("storage.views_opened")
        return LazyProfileView(path, handle, mm, toc, meta, seal_end=seal_end)


# ---------------------------------------------------------------------------
# Default registry
# ---------------------------------------------------------------------------

register_backend(JsonBackend())
register_backend(ColumnarJsonBackend())
register_backend(BinaryV1Backend())
