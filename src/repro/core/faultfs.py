"""Deterministic fault injection for profile file I/O.

The durability guarantees this codebase makes — every sealed prefix is a
valid profile, recovery always lands on the last intact seal, a corrupt
block is *detected*, never silently aggregated — are only worth anything if
the failure paths are actually exercised.  This module is the harness that
exercises them: a :class:`FaultInjector` wraps ``builtins.open`` for files
under one directory, and a scripted :class:`FaultPlan` decides which write
or read trips which fault:

* **crash** — the nth write raises :class:`InjectedCrash` before any byte
  lands and the "process" is dead: every later I/O call on an injected file
  raises too, exactly like a killed writer;
* **torn** — the nth write lands only its first ``keep`` bytes, then the
  process dies (the classic half-written block a power cut leaves behind);
* **enospc** — the nth write lands ``keep`` bytes and raises
  ``OSError(ENOSPC)``; the process *survives*, modelling a full disk the
  caller may retry after;
* **short** — the nth read returns at most ``keep`` bytes regardless of the
  request (a reader racing a truncation).

Faults are matched by a deterministic per-operation counter, so a test can
sweep "crash at write #k" over every k and assert the recovery property at
each point.  With an empty plan every call passes straight through — the
wrapper adds one counter increment per operation, which is what the CI
overhead smoke pins down.

Bit rot is injected after the fact, not through the plan:
:func:`flip_bit` / :func:`truncate_file` mutate a finished file directly.

Everything here is test/validation machinery: production code never imports
it, and it never monkeypatches anything outside the ``with`` block.
"""

from __future__ import annotations

import builtins
import errno
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "InjectedCrash",
    "crash_at_write",
    "torn_write",
    "enospc_at_write",
    "short_read",
    "flip_bit",
    "truncate_file",
]


class InjectedCrash(OSError):
    """A scripted process death at an I/O call.

    Subclasses ``OSError`` so code that treats I/O failure generically (and
    the streaming writer's best-effort rewind) handles it like the real
    thing, while tests can still catch it by name.
    """


#: Fault modes a plan may script.
MODE_CRASH = "crash"
MODE_TORN = "torn"
MODE_ENOSPC = "enospc"
MODE_SHORT = "short"

_WRITE_MODES = (MODE_CRASH, MODE_TORN, MODE_ENOSPC)
_READ_MODES = (MODE_SHORT,)


@dataclass
class Fault:
    """One scripted fault: trip on the ``at``-th matching operation.

    ``op`` is ``"write"`` or ``"read"``; ``at`` is 1-based and counts — per
    fault — every matching operation on injected files, in program order,
    which is what makes a plan deterministic for a deterministic workload.
    ``match`` narrows matching to paths containing the substring ("" matches
    every injected file), so a fault can target e.g. only the catalog temp
    file while profile writes pass untouched.  ``keep`` is how many bytes
    still land (torn/enospc writes) or may be returned (short reads).
    """

    op: str
    at: int
    mode: str
    keep: int = 0
    match: str = ""
    #: How many matching operations this fault has seen (advances even after
    #: it fired, harmlessly).
    seen: int = 0

    def __post_init__(self) -> None:
        valid = _WRITE_MODES if self.op == "write" else _READ_MODES
        if self.op not in ("write", "read"):
            raise ValueError(f"unknown fault op {self.op!r}: "
                             f"expected 'write' or 'read'")
        if self.mode not in valid:
            raise ValueError(f"fault mode {self.mode!r} does not apply to "
                             f"op {self.op!r}; valid: {valid}")
        if self.at < 1:
            raise ValueError(f"fault position must be 1-based, got {self.at}")


def crash_at_write(at: int, match: str = "") -> Fault:
    return Fault(op="write", at=at, mode=MODE_CRASH, match=match)


def torn_write(at: int, keep: int, match: str = "") -> Fault:
    return Fault(op="write", at=at, mode=MODE_TORN, keep=keep, match=match)


def enospc_at_write(at: int, keep: int = 0, match: str = "") -> Fault:
    return Fault(op="write", at=at, mode=MODE_ENOSPC, keep=keep, match=match)


def short_read(at: int, keep: int, match: str = "") -> Fault:
    return Fault(op="read", at=at, mode=MODE_SHORT, keep=keep, match=match)


@dataclass
class FaultPlan:
    """The scripted faults plus the deterministic operation counters.

    A plan is single-use: counters only ever advance.  ``tripped`` records
    every fault that actually fired (tests assert on it so a plan that never
    matched is a test bug, not a silent pass); ``dead`` goes True once a
    crash-class fault fired, after which every injected I/O call raises
    :class:`InjectedCrash` — a dead process does not keep writing.
    ``counts`` tracks every operation on injected files regardless of plan
    contents, so a dry run with an empty plan measures how many writes a
    workload performs (the domain a crash sweep then covers).
    """

    faults: List[Fault] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    tripped: List[Fault] = field(default_factory=list)
    dead: bool = False

    def next_fault(self, op: str, path: str) -> Optional[Fault]:
        """Advance the counters; the fault scheduled at this operation."""
        self.counts[op] = self.counts.get(op, 0) + 1
        hit: Optional[Fault] = None
        for fault in self.faults:
            if fault.op != op or (fault.match and fault.match not in path):
                continue
            fault.seen += 1
            if fault.seen == fault.at and hit is None:
                self.tripped.append(fault)
                hit = fault
        return hit


class _FaultyFile:
    """Proxy around a real file object that routes I/O through the plan."""

    def __init__(self, raw, plan: FaultPlan, path: str) -> None:
        self._raw = raw
        self._plan = plan
        self._path = path

    # -- faulted operations ----------------------------------------------------------

    def _check_dead(self) -> None:
        if self._plan.dead:
            raise InjectedCrash(
                "injected crash: the simulated process is dead; no further "
                "I/O may land")

    def write(self, data):
        self._check_dead()
        fault = self._plan.next_fault("write", self._path)
        if fault is None:
            return self._raw.write(data)
        if fault.mode == MODE_CRASH:
            self._plan.dead = True
            raise InjectedCrash(
                f"injected crash at write #{fault.at}: no bytes landed")
        if fault.mode == MODE_TORN:
            self._raw.write(bytes(data)[:fault.keep])
            self._raw.flush()
            self._plan.dead = True
            raise InjectedCrash(
                f"injected torn write at write #{fault.at}: only the first "
                f"{fault.keep} of {len(data)} bytes landed, then the "
                f"process died")
        if fault.mode == MODE_ENOSPC:
            if fault.keep:
                self._raw.write(bytes(data)[:fault.keep])
                self._raw.flush()
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC at write #{fault.at}: no space "
                          f"left on device")
        raise AssertionError(f"unhandled write fault mode {fault.mode!r}")

    def read(self, size: int = -1):
        self._check_dead()
        fault = self._plan.next_fault("read", self._path)
        if fault is not None and fault.mode == MODE_SHORT:
            size = fault.keep if size < 0 else min(size, fault.keep)
        return self._raw.read(size)

    # -- pass-through surface the storage/streaming code touches ----------------------

    def flush(self):
        self._check_dead()
        return self._raw.flush()

    def truncate(self, size=None):
        self._check_dead()
        return (self._raw.truncate() if size is None
                else self._raw.truncate(size))

    def seek(self, offset, whence=0):
        self._check_dead()
        return self._raw.seek(offset, whence)

    def close(self):
        # Closing is always allowed: even a dead process's descriptors close.
        return self._raw.close()

    def __getattr__(self, name):
        return getattr(self._raw, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __iter__(self):
        return iter(self._raw)


class FaultInjector:
    """Patch ``builtins.open`` so files under ``root`` obey a fault plan.

    Only paths under ``root`` (after ``abspath``) are wrapped; every other
    ``open`` — pytest internals, imports, unrelated temp files — passes
    through untouched, which keeps the patch safe to hold across a whole
    profiler run.  Use as a context manager::

        plan = FaultPlan([crash_at_write(7)])
        with FaultInjector(tmp_path, plan):
            ...drive the writer until InjectedCrash...
        recovered = recover_profile(path)   # outside: real I/O again

    The injector is re-entrant-unsafe on purpose (one at a time): nesting
    would make the operation counters ambiguous.
    """

    def __init__(self, root, plan: FaultPlan) -> None:
        self.root = os.path.abspath(os.fspath(root))
        self.plan = plan
        self._real_open = None

    def _matches(self, file) -> bool:
        if not isinstance(file, (str, bytes, os.PathLike)):
            return False  # descriptor-based opens are never wrapped
        try:
            path = os.path.abspath(os.fsdecode(os.fspath(file)))
        except (TypeError, ValueError):
            return False
        return path == self.root or path.startswith(self.root + os.sep)

    def __enter__(self) -> "FaultInjector":
        if self._real_open is not None:
            raise RuntimeError("FaultInjector is already active")
        real_open = builtins.open
        self._real_open = real_open

        def faulted_open(file, *args, **kwargs):
            handle = real_open(file, *args, **kwargs)
            if self._matches(file):
                path = os.path.abspath(os.fsdecode(os.fspath(file)))
                return _FaultyFile(handle, self.plan, path)
            return handle

        # This is the canonical sanctioned monkeypatch (see docs/LINT.md):
        # the injector is a scoped context manager that restores the real
        # `open` in __exit__, and it is the only way to exercise I/O fault
        # paths without a kernel-level fault filesystem.
        builtins.open = faulted_open  # repro-lint: disable=RL007 scoped fault harness; restored in __exit__
        return self

    def __exit__(self, *exc_info) -> None:
        builtins.open = self._real_open  # repro-lint: disable=RL007 restores the real open patched in __enter__
        self._real_open = None


# ---------------------------------------------------------------------------
# Post-hoc corruption helpers (bit rot, truncation)
# ---------------------------------------------------------------------------

def flip_bit(path: str, byte_offset: int, bit: int = 0) -> None:
    """Flip one bit in place — the minimal possible on-disk corruption."""
    if not 0 <= bit <= 7:
        raise ValueError(f"bit must be 0..7, got {bit}")
    # In-place mutation is the whole point: tests corrupt an already-sealed
    # artifact to prove the readers detect it.  Grandfathered in
    # lint-baseline.json rather than fixed.
    with open(path, "r+b") as handle:
        handle.seek(byte_offset)
        original = handle.read(1)
        if len(original) != 1:
            raise ValueError(
                f"{path!r}: byte offset {byte_offset} is past EOF "
                f"({os.path.getsize(path)} bytes)")
        handle.seek(byte_offset)
        handle.write(bytes([original[0] ^ (1 << bit)]))


def truncate_file(path: str, size: int) -> None:
    """Cut a file to ``size`` bytes (a crash that lost its tail)."""
    with open(path, "r+b") as handle:
        handle.truncate(size)
