"""DeepContext profiler core: CCT, metrics, collectors, profile database."""

from .cct import CallingContextTree, CCTNode, ShardedCallingContextTree
from .config import ProfilerConfig
from .correlation import CorrelationRegistry, PendingCorrelation
from .cpu_collector import CpuMetricCollector
from .database import ProfileDatabase, ProfileMetadata
from .gpu_collector import GpuMetricCollector
from .metrics import (
    METRIC_ALLOCATED_BYTES,
    METRIC_BLOCKS,
    METRIC_CPU_TIME,
    METRIC_GPU_TIME,
    METRIC_INSTRUCTION_SAMPLES,
    METRIC_KERNEL_COUNT,
    METRIC_MEMCPY_BYTES,
    METRIC_OP_COUNT,
    METRIC_REAL_TIME,
    METRIC_REGISTERS,
    METRIC_SHARED_MEMORY,
    METRIC_STALL_SAMPLES,
    METRIC_THREADS_PER_BLOCK,
    STANDARD_METRICS,
    MetricAggregate,
    MetricDescriptor,
    MetricSet,
)
from .profiler import DeepContextProfiler

__all__ = [
    "DeepContextProfiler",
    "ProfilerConfig",
    "CallingContextTree",
    "CCTNode",
    "ShardedCallingContextTree",
    "CorrelationRegistry",
    "PendingCorrelation",
    "GpuMetricCollector",
    "CpuMetricCollector",
    "ProfileDatabase",
    "ProfileMetadata",
    "MetricAggregate",
    "MetricSet",
    "MetricDescriptor",
    "STANDARD_METRICS",
    "METRIC_GPU_TIME",
    "METRIC_CPU_TIME",
    "METRIC_REAL_TIME",
    "METRIC_KERNEL_COUNT",
    "METRIC_MEMCPY_BYTES",
    "METRIC_ALLOCATED_BYTES",
    "METRIC_BLOCKS",
    "METRIC_THREADS_PER_BLOCK",
    "METRIC_REGISTERS",
    "METRIC_SHARED_MEMORY",
    "METRIC_STALL_SAMPLES",
    "METRIC_INSTRUCTION_SAMPLES",
    "METRIC_OP_COUNT",
]
