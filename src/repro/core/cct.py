"""The calling context tree (CCT).

The CCT is built by inserting unified call paths from DLMonitor and collapsing
frames that refer to the same location (paper Figure 5).  Each node keeps two
metric sets:

* ``exclusive`` — observations attributed directly to this node (e.g. the GPU
  time of a kernel whose call path ends here);
* ``inclusive`` — a *lazily materialized* view of the same observations rolled
  up from every descendant, so any frame can answer "how much time was spent
  underneath me".

Attribution is O(1) per observation: ``attribute``/``attribute_many`` only
touch the target node's exclusive aggregates, record the node in a dirty set
and bump the tree's generation counter.  The inclusive view is (re)built on
first access: the first materialization is a single bottom-up pass over the
tree (a parallel Welford merge per edge); subsequent refreshes are
*incremental* — only the dirty nodes and their ancestor chains are recombined
(each from its children's still-valid cached inclusives), so a handful of
attributions between queries costs O(depth) instead of O(tree).  The view
stays valid until the next insert or attribution.  This keeps the cost of online
aggregation bounded by the number of *distinct calling contexts* — the
property the paper's overhead claims (Figure 6a–d) rest on — instead of
paying an O(depth) ancestor walk on every observation.

The tree additionally maintains kind-indexed node registries (kernels,
operators, scopes, per-``FrameKind`` lists) updated at insertion time, so the
query layer and the analyzers never need a full pre-order scan for the common
"all nodes of kind X" lookups, and every node stores its depth at
construction.  Serialization is iterative (no recursion limit on deep traces)
and a compact columnar encoding that omits the recomputable inclusive view is
available through :meth:`CallingContextTree.to_columnar`.

For multi-thread collection the module provides
:class:`ShardedCallingContextTree`: each simulated CPU thread owns a private
``CallingContextTree`` shard, collectors attribute into the shard of the
launching/observing thread with no cross-thread coordination, and queries run
against a merged tree that is materialized lazily — keyed by the shards'
generation counters — by structurally unioning the shards on
``Frame.identity()`` (:meth:`CallingContextTree.merge_from`) and combining
metrics with ``MetricSet.merge``.  A sharded tree with a single shard is
byte-for-byte equivalent to the plain single-tree model.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

from ..dlmonitor.callpath import CallPath, Frame, FrameKind, root_frame
from .metrics import MetricAggregate, MetricSet

_node_ids = itertools.count(1)

COLUMNAR_TREE_FORMAT = "cct-columnar-v1"


class CCTNode:
    """One node of the calling context tree."""

    __slots__ = ("node_id", "frame", "parent", "children", "depth",
                 "exclusive", "_inclusive", "tree")

    def __init__(self, frame: Frame, parent: Optional["CCTNode"] = None,
                 tree: Optional["CallingContextTree"] = None) -> None:
        self.node_id = next(_node_ids)
        self.frame = frame
        self.parent = parent
        self.depth = parent.depth + 1 if parent is not None else 0
        self.tree = tree if tree is not None else (parent.tree if parent is not None else None)
        self.children: Dict[Tuple, "CCTNode"] = {}
        self.exclusive = MetricSet()
        self._inclusive = MetricSet()

    # -- structure ----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.frame.name

    @property
    def kind(self) -> FrameKind:
        return self.frame.kind

    @property
    def inclusive(self) -> MetricSet:
        """Rolled-up metrics of this node's subtree (materialized on demand).

        Accessing this property refreshes the lazy view if the tree changed.
        A held ``MetricSet`` reference keeps its identity across refreshes,
        but is only guaranteed current as of the last ``inclusive`` access on
        *some* node — hold the node and re-read ``node.inclusive`` after
        mutations instead of caching the set across them.
        """
        tree = self.tree
        if tree is not None:
            tree.ensure_inclusive()
        return self._inclusive

    def child_for(self, frame: Frame) -> "CCTNode":
        """Find or create the child that collapses with ``frame``."""
        key = frame.identity()
        child = self.children.get(key)
        if child is None:
            child = CCTNode(frame, parent=self)
            self.children[key] = child
            if self.tree is not None:
                self.tree._register_node(child)
        return child

    def ancestors(self) -> Iterator["CCTNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> List["CCTNode"]:
        nodes = [self]
        nodes.extend(self.ancestors())
        nodes.reverse()
        return nodes

    def callpath(self) -> CallPath:
        return CallPath.of(node.frame for node in self.path_from_root())

    # -- metrics --------------------------------------------------------------------

    def gpu_time(self) -> float:
        return self.inclusive.sum("gpu_time")

    def cpu_time(self) -> float:
        return self.inclusive.sum("cpu_time")

    def kernel_count(self) -> int:
        return int(self.inclusive.sum("kernel_count"))

    def metric(self, name: str, inclusive: bool = True) -> float:
        metric_set = self.inclusive if inclusive else self.exclusive
        return metric_set.sum(name)

    def __repr__(self) -> str:
        return f"CCTNode(#{self.node_id} {self.frame.label()!r}, children={len(self.children)})"


class CallingContextTree:
    """The profile's calling context tree with online metric aggregation."""

    #: True on trees built by ``ShardedCallingContextTree.merged()`` — such
    #: trees are discardable query caches and must never be attributed into.
    is_merged_view = False

    def __init__(self, program_name: str = "program") -> None:
        self.insertions = 0
        #: Node→parent merges performed by inclusive-view materializations.
        self.propagations = 0
        self._generation = 0
        self._inclusive_generation = -1
        #: Every node in registration order; parents always precede children.
        self._registry: List[CCTNode] = []
        self._by_kind: Dict[FrameKind, List[CCTNode]] = {}
        self._operator_index: List[CCTNode] = []
        self._scope_index: List[CCTNode] = []
        self._max_depth = 0
        self._size_cache: Tuple[Tuple[int, int], int] = ((-1, -1), 0)
        #: Nodes whose exclusive metrics changed since the last inclusive
        #: materialization (id → node); consumed by the incremental refresh.
        self._dirty: Dict[int, CCTNode] = {}
        #: Memoized ``aggregate_by_name`` results keyed by (kind, metric),
        #: each entry stamped with the generation it was computed at.
        self._aggregate_cache: Dict[Tuple, Tuple[int, Dict[str, float]]] = {}
        #: Memoized ``total_metric`` sums (generation-stamped).
        self._total_cache: Dict[str, Tuple[int, float]] = {}
        self.root = CCTNode(root_frame(program_name), tree=self)
        self._register_node(self.root)

    # -- construction --------------------------------------------------------------

    def _register_node(self, node: CCTNode) -> None:
        """Index a freshly created node and invalidate derived views."""
        self._registry.append(node)
        kind = node.frame.kind
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = []
        bucket.append(node)
        if kind == FrameKind.FRAMEWORK:
            if node.frame.tag == "scope":
                self._scope_index.append(node)
            else:
                self._operator_index.append(node)
        if node.depth > self._max_depth:
            self._max_depth = node.depth
        self._generation += 1

    def insert(self, callpath: CallPath) -> CCTNode:
        """Insert a call path, collapsing frames that refer to the same location.

        The call path's own root frame (kind ``ROOT``) collapses with the tree
        root; remaining frames create or reuse children level by level.
        Returns the leaf node.
        """
        node = self.root
        for frame in callpath:
            if frame.kind == FrameKind.ROOT:
                continue
            node = node.child_for(frame)
        self.insertions += 1
        return node

    def attribute(self, node: CCTNode, metric: str, value: float) -> None:
        """Fold one observation into ``node``'s exclusive aggregates (O(1))."""
        node.exclusive.add(metric, value)
        self._dirty[id(node)] = node
        self._generation += 1

    def attribute_many(self, node: CCTNode, metrics: Mapping[str, float]) -> None:
        """Fold several metrics of one record into ``node`` in a single call."""
        node.exclusive.add_many(metrics)
        self._dirty[id(node)] = node
        self._generation += 1

    def insert_and_attribute(self, callpath: CallPath, metrics: Mapping[str, float]) -> CCTNode:
        """Insert a call path and attribute several metrics to its leaf at once."""
        node = self.insert(callpath)
        self.attribute_many(node, metrics)
        return node

    # -- lazy inclusive view ---------------------------------------------------------

    def ensure_inclusive(self) -> None:
        """Materialize the inclusive view if any insert/attribute made it stale."""
        if self._inclusive_generation != self._generation:
            self._materialize_inclusive()
            self._inclusive_generation = self._generation

    def _materialize_inclusive(self) -> None:
        """Bring the inclusive view up to date, incrementally when possible.

        The first materialization (and any refresh where most of the tree is
        dirty) runs the full bottom-up pass.  Otherwise only the *affected*
        region — the dirty nodes plus their ancestor chains up to the root
        (equivalently, the subtrees hanging off the lowest dirty ancestors) —
        is recombined: each affected node is reset to its exclusive metrics
        and re-merged from its children, whose inclusives are either freshly
        recomputed (affected, deeper, processed first) or still-valid cached
        values.  Inserts alone never dirty anything: a new node's empty
        inclusive already equals its empty exclusive, and its ancestors'
        rollups are unchanged until the node is attributed into.
        """
        if self._inclusive_generation < 0:
            self._materialize_full()
            return
        dirty = self._dirty
        if not dirty:
            return  # structure-only changes: cached rollups are still exact
        registry = self._registry
        affected: Dict[int, CCTNode] = {}
        for node in dirty.values():
            while node is not None and id(node) not in affected:
                affected[id(node)] = node
                node = node.parent
        if 2 * len(affected) >= len(registry):
            self._materialize_full()
            return
        propagations = 0
        # Deeper nodes first: every affected child is recombined before the
        # parent that merges it (ancestors are strictly shallower).
        for node in sorted(affected.values(), key=lambda entry: -entry.depth):
            inclusive = node._inclusive
            inclusive.reset_to(node.exclusive)
            for child in node.children.values():
                inclusive.merge(child._inclusive)
                propagations += 1
        self.propagations += propagations
        dirty.clear()

    def _materialize_full(self) -> None:
        """One bottom-up pass: inclusive = exclusive + Σ children's inclusive.

        Each node's inclusive MetricSet (and its aggregates) is reset *in
        place* rather than rebound, so references obtained from an earlier
        ``node.inclusive`` keep reading current data after re-materialization.
        """
        registry = self._registry
        for node in registry:
            node._inclusive.reset_to(node.exclusive)
        propagations = 0
        # Parents precede children in the registry, so the reverse order visits
        # every child before its parent — a single linear merge pass.
        for node in reversed(registry):
            parent = node.parent
            if parent is not None:
                parent._inclusive.merge(node._inclusive)
                propagations += 1
        self.propagations += propagations
        self._dirty.clear()

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every insert/attribute (cache key)."""
        return self._generation

    # -- shard union -----------------------------------------------------------------

    def merge_from(self, other: "CallingContextTree") -> Dict[int, CCTNode]:
        """Structurally union ``other`` into this tree (shard merge primitive).

        Nodes are matched level by level on ``Frame.identity()`` — the same
        collapsing rule ``insert`` uses — creating missing children as needed,
        and every matched node's exclusive aggregates are combined with the
        parallel Welford ``MetricSet.merge``.  Because the lazy inclusive view
        is rebuilt from exclusive data only, merging shards in any order
        yields the same tree a single shared tree would have produced from the
        same observations (to floating-point accuracy).  ``other`` is not
        modified.  Returns the ``id(other node) → this tree's node`` mapping
        (one entry per node of ``other``, root included), which the sharded
        tree keeps to refresh merged metrics incrementally.
        """
        mapping: Dict[int, CCTNode] = {id(other.root): self.root}
        dirty = self._dirty
        self.root.exclusive.merge(other.root.exclusive)
        dirty[id(self.root)] = self.root
        # Parents precede children in the registry, so every node's parent is
        # already mapped when the node is visited — one linear pass, no
        # recursion, no per-node path reconstruction.
        for node in other._registry:
            if node is other.root:
                continue
            mine = mapping[id(node.parent)].child_for(node.frame)
            mine.exclusive.merge(node.exclusive)
            dirty[id(mine)] = mine
            mapping[id(node)] = mine
        self.insertions += other.insertions
        self._generation += 1  # metric merges above bypass attribute()
        return mapping

    # -- traversal --------------------------------------------------------------------

    def nodes(self) -> Iterator[CCTNode]:
        """Depth-first, pre-order traversal of every node (root included)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def bfs(self) -> Iterator[CCTNode]:
        """Breadth-first traversal (the order the analyzer's examples use)."""
        queue = deque((self.root,))
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children.values())

    def all_nodes(self) -> List[CCTNode]:
        """Every node in registration order (no traversal; parents first)."""
        return list(self._registry)

    def leaves(self) -> Iterator[CCTNode]:
        for node in self._registry:
            if not node.children:
                yield node

    def find(self, predicate: Callable[[CCTNode], bool]) -> List[CCTNode]:
        return [node for node in self._registry if predicate(node)]

    def nodes_of_kind(self, kind: FrameKind) -> List[CCTNode]:
        return list(self._by_kind.get(kind, ()))

    @property
    def kernels(self) -> List[CCTNode]:
        """All GPU-kernel nodes (the analyzer's ``call_tree.kernels``)."""
        return self.nodes_of_kind(FrameKind.GPU_KERNEL)

    @property
    def operators(self) -> List[CCTNode]:
        """All framework-operator nodes (excluding module scopes)."""
        return list(self._operator_index)

    @property
    def scopes(self) -> List[CCTNode]:
        """Module / semantic scope nodes (``loss_fn``, layer names, ...)."""
        return list(self._scope_index)

    def node_count(self) -> int:
        return len(self._registry)

    def max_depth(self) -> int:
        return self._max_depth

    # -- aggregation views ----------------------------------------------------------------

    def aggregate_by_name(self, kind: Optional[FrameKind] = None,
                          metric: str = "gpu_time") -> Dict[str, float]:
        """Sum an exclusive metric across all nodes sharing the same frame name.

        This is the bottom-up view's aggregation: the same kernel called from
        many contexts is folded into a single row.  With a ``kind`` the scan is
        restricted to that kind's index instead of the whole tree.

        Rows are gated on the observation *count*, not the metric sum: a
        kernel whose durations all round to 0.0 was still observed and must
        appear in bottom-up views instead of silently vanishing.

        Results are memoized behind the generation counter (the same
        invalidation scheme ``approximate_size_bytes`` uses), so the repeated
        bottom-up queries the GUI and analyzers issue between mutations cost
        one dict copy instead of a registry scan.
        """
        key = (kind, metric)
        cached = self._aggregate_cache.get(key)
        if cached is not None and cached[0] == self._generation:
            return dict(cached[1])
        nodes: Iterable[CCTNode]
        nodes = self._by_kind.get(kind, ()) if kind is not None else self._registry
        totals: Dict[str, float] = {}
        for node in nodes:
            aggregate = node.exclusive.get(metric)
            if aggregate is not None and aggregate.count > 0:
                totals[node.name] = totals.get(node.name, 0.0) + aggregate.total
        self._aggregate_cache[key] = (self._generation, totals)
        return dict(totals)

    def total_metric(self, metric: str) -> float:
        """Whole-profile total of ``metric`` (≡ the root's inclusive sum).

        Computed as the registry-order sum of exclusive aggregates (memoized
        behind the generation counter): summary probes — ``total_gpu_time``
        and friends — never force an inclusive materialization, and the
        summation order is identical for a live tree and for any reloaded
        encoding of it (registries round-trip in order), so totals and the
        fractions derived from them compare bit-for-bit across formats.
        """
        cached = self._total_cache.get(metric)
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        total = 0.0
        for node in self._registry:
            total += node.exclusive.sum(metric)
        self._total_cache[metric] = (self._generation, total)
        return total

    # -- serialization -----------------------------------------------------------------------

    @staticmethod
    def _encode_frame(frame: Frame) -> Dict:
        return {
            "name": frame.name,
            "kind": frame.kind.value,
            "file": frame.file,
            "line": frame.line,
            "library": frame.library,
            "pc": frame.pc,
            "tag": frame.tag,
        }

    @staticmethod
    def _decode_frame(node_data: Mapping) -> Frame:
        # Deliberately not interned: each loaded tree builds every frame once,
        # and interning here would pin frames of long-discarded profiles in
        # the process-global table (GUI/server processes load many profiles).
        return Frame(
            kind=FrameKind(node_data["kind"]),
            name=node_data["name"],
            file=node_data.get("file", ""),
            line=node_data.get("line", 0),
            library=node_data.get("library", ""),
            pc=node_data.get("pc", 0),
            tag=node_data.get("tag", ""),
        )

    def to_dict(self) -> Dict:
        """Nested-dict encoding (the original on-disk format), iteratively built.

        Each node additionally carries its registration index (``order``) so a
        reloaded tree's registries — and therefore every index-backed query —
        enumerate in the same order as the live tree's.
        """
        self.ensure_inclusive()
        order_of = {id(node): index for index, node in enumerate(self._registry)}

        def encode(node: CCTNode) -> Dict:
            entry = self._encode_frame(node.frame)
            entry["order"] = order_of[id(node)]
            entry["exclusive"] = node.exclusive.as_dict()
            entry["inclusive"] = node._inclusive.as_dict()
            entry["children"] = []
            return entry

        root_entry = encode(self.root)
        stack: List[Tuple[CCTNode, Dict]] = [(self.root, root_entry)]
        while stack:
            node, entry = stack.pop()
            children_out = entry["children"]
            for child in node.children.values():
                child_entry = encode(child)
                children_out.append(child_entry)
                stack.append((child, child_entry))
        return {"root": root_entry, "insertions": self.insertions}

    @classmethod
    def from_dict(cls, data: Dict) -> "CallingContextTree":
        tree = cls()
        tree._clear_indexes()
        # Iterative pre-order rebuild; pushing children reversed preserves
        # sibling order in each parent's (insertion-ordered) child dict.
        # Registration is deferred so the registries can be rebuilt in the
        # stored creation order (files without "order" fall back to pre-order,
        # which equally keeps parents ahead of their children).
        decoded: List[Tuple[int, int, CCTNode]] = []
        stack: List[Tuple[Dict, Optional[CCTNode]]] = [(data["root"], None)]
        while stack:
            node_data, parent = stack.pop()
            frame = cls._decode_frame(node_data)
            node = CCTNode(frame, parent=parent, tree=tree)
            node.exclusive = MetricSet.from_dict(node_data.get("exclusive", {}))
            node._inclusive = MetricSet.from_dict(node_data.get("inclusive", {}))
            position = len(decoded)
            decoded.append((node_data.get("order", position), position, node))
            if parent is None:
                tree.root = node
            else:
                parent.children[frame.identity()] = node
            children = node_data.get("children", [])
            for child_data in reversed(children):
                stack.append((child_data, node))
        decoded.sort()
        for _order, _position, node in decoded:
            tree._register_node(node)
        tree.insertions = data.get("insertions", 0)
        # The stored inclusive view is authoritative for what was saved; mark
        # it fresh so round-trips reproduce the input byte for byte.
        tree._inclusive_generation = tree._generation
        return tree

    def _clear_indexes(self) -> None:
        self._registry.clear()
        self._by_kind.clear()
        self._operator_index.clear()
        self._scope_index.clear()
        self._max_depth = 0
        self._size_cache = ((-1, -1), 0)
        self._dirty.clear()
        self._aggregate_cache.clear()
        self._total_cache.clear()

    # -- columnar serialization ---------------------------------------------------------------

    def to_columnar(self) -> Dict:
        """Compact columnar encoding: flat frame columns + exclusive metrics only.

        The inclusive view is omitted (it is recomputed lazily on load), which
        roughly halves the metric payload relative to :meth:`to_dict`.
        """
        registry = self._registry
        index_of = {id(node): index for index, node in enumerate(registry)}
        frames: Dict[str, List] = {
            "kind": [], "name": [], "file": [], "line": [],
            "library": [], "pc": [], "tag": [], "parent": [],
        }
        metric_columns: Dict[str, Dict[str, List[float]]] = {}
        for index, node in enumerate(registry):
            frame = node.frame
            frames["kind"].append(frame.kind.value)
            frames["name"].append(frame.name)
            frames["file"].append(frame.file)
            frames["line"].append(frame.line)
            frames["library"].append(frame.library)
            frames["pc"].append(frame.pc)
            frames["tag"].append(frame.tag)
            frames["parent"].append(index_of[id(node.parent)] if node.parent is not None else -1)
            for name, aggregate in node.exclusive.items():
                column = metric_columns.get(name)
                if column is None:
                    column = metric_columns[name] = {
                        "node": [], "count": [], "sum": [],
                        "min": [], "max": [], "mean": [], "m2": [],
                    }
                count, total, minimum, maximum, mean, m2 = aggregate.state()
                column["node"].append(index)
                column["count"].append(count)
                column["sum"].append(total)
                column["min"].append(minimum)
                column["max"].append(maximum)
                column["mean"].append(mean)
                column["m2"].append(m2)
        return {
            "format": COLUMNAR_TREE_FORMAT,
            "insertions": self.insertions,
            "nodes": frames,
            "exclusive": metric_columns,
        }

    @classmethod
    def build_from_columns(cls, kinds: Sequence, names: Sequence[str],
                           files: Sequence[str], lines: Sequence[int],
                           libraries: Sequence[str], pcs: Sequence[int],
                           tags: Sequence[str],
                           parents: Sequence[int]) -> Tuple["CallingContextTree", List[CCTNode]]:
        """Rebuild the tree structure from flat per-node columns.

        ``kinds`` entries may be :class:`FrameKind` members or their string
        values; ``parents`` holds registry indexes (-1 for the root).  Parents
        must precede children, the order both ``to_columnar`` and the binary
        profile backend guarantee.  Returns the tree and its node list (in
        column order) so callers can install metric columns afterwards —
        shared by :meth:`from_columnar` and the mmap-backed storage engine.
        """
        frames = []
        for index in range(len(kinds)):
            kind = kinds[index]
            # Not interned — see _decode_frame.
            frames.append(Frame(
                kind=kind if isinstance(kind, FrameKind) else FrameKind(kind),
                name=names[index], file=files[index], line=lines[index],
                library=libraries[index], pc=pcs[index], tag=tags[index],
            ))
        return cls.build_from_frames(frames, parents)

    @classmethod
    def build_from_frames(cls, frames: Sequence[Frame],
                          parents: Sequence[int]) -> Tuple["CallingContextTree", List[CCTNode]]:
        """Rebuild the tree from per-node frames and parent indexes.

        ``frames`` entries may be shared objects (the binary format's
        deduplicated frame table decodes each distinct frame once), which
        also shares their memoized ``identity()`` across nodes.
        """
        tree = cls()
        tree._clear_indexes()
        nodes: List[CCTNode] = []
        for index in range(len(frames)):
            frame = frames[index]
            parent = nodes[parents[index]] if parents[index] >= 0 else None
            node = CCTNode(frame, parent=parent, tree=tree)
            tree._register_node(node)
            if parent is None:
                tree.root = node
            else:
                parent.children[frame.identity()] = node
            nodes.append(node)
        return tree, nodes

    def install_exclusive_column(self, nodes: Sequence[CCTNode], metric: str,
                                 node_indexes: Sequence[int],
                                 counts: Sequence[int], sums: Sequence[float],
                                 minima: Sequence[float], maxima: Sequence[float],
                                 means: Sequence[float],
                                 m2s: Sequence[float]) -> None:
        """Install one metric's flat column onto ``nodes`` (decode hot path).

        Touched nodes are marked dirty and the generation is bumped once, so
        columns materialized *after* queries started (the lazy mmap view loads
        per column on demand) invalidate inclusive views and memoized
        aggregations exactly like live attribution would.
        """
        dirty = self._dirty
        from_state = MetricAggregate.from_state
        for node_index, count, total, minimum, maximum, mean, m2 in zip(
                node_indexes, counts, sums, minima, maxima, means, m2s):
            node = nodes[node_index]
            node.exclusive.put(metric, from_state(int(count), total, minimum,
                                                  maximum, mean, m2))
            dirty[id(node)] = node
        self._generation += 1

    @classmethod
    def from_columnar(cls, data: Mapping) -> "CallingContextTree":
        if data.get("format") != COLUMNAR_TREE_FORMAT:
            raise ValueError(f"not a {COLUMNAR_TREE_FORMAT} payload")
        frames = data["nodes"]
        tree, nodes = cls.build_from_columns(
            frames["kind"], frames["name"], frames["file"], frames["line"],
            frames["library"], frames["pc"], frames["tag"], frames["parent"])
        for name, column in data.get("exclusive", {}).items():
            tree.install_exclusive_column(
                nodes, name, column["node"], column["count"], column["sum"],
                column["min"], column["max"], column["mean"], column["m2"])
        tree.insertions = data.get("insertions", 0)
        return tree

    def approximate_size_bytes(self) -> int:
        """Rough in-memory footprint of the tree (nodes + metric aggregates).

        Reports the *current* footprint: a not-yet-materialized inclusive view
        occupies (almost) nothing and is counted as such — deliberately not
        forcing materialization, so overhead probes taken mid-collection stay
        cheap and don't perturb the propagation counters they report next to.
        Cached behind the generation counters so repeated overhead/summary
        queries between mutations cost O(1).
        """
        cache_key = (self._generation, self._inclusive_generation)
        cached_key, cached_total = self._size_cache
        if cached_key == cache_key:
            return cached_total
        total = 0
        for node in self._registry:
            total += 160  # node object, frame, child-dict overhead
            total += node.exclusive.approximate_size_bytes()
            total += node._inclusive.approximate_size_bytes()
        self._size_cache = (cache_key, total)
        return total


# ---------------------------------------------------------------------------
# Per-thread shards, merged at query time
# ---------------------------------------------------------------------------

#: Shard id used by the degenerate single-tree API (no thread routing).
DEFAULT_SHARD_ID = 0

SHARDED_TREE_FORMAT = "cct-columnar-sharded-v1"


class ShardedCallingContextTree:
    """Per-thread CCT shards with a lazily merged query-time view.

    Collection side: every simulated CPU thread gets its own private
    :class:`CallingContextTree` (``shard_for`` / ``shard_for_tid``), so the
    hot attribution path touches only thread-local state — no cross-thread
    coordination, and per-observation cost independent of how many threads
    are being profiled.  The handle is memoized on the ``ThreadContext``
    itself (``thread.cct_shard``) so the per-event lookup is one attribute
    read.

    Query side: the full single-tree read API (``root``, traversals, kind
    indexes, ``aggregate_by_name``, serialization) is served by a merged tree
    materialized on demand by unioning every shard with
    :meth:`CallingContextTree.merge_from`.  The merged view is cached behind
    the tuple of shard generation counters — the same invalidation scheme
    ``approximate_size_bytes`` uses — so repeated queries between mutations
    reuse one materialization, and node identities stay stable while no shard
    changes.  Nodes returned by queries belong to the merged tree; re-fetch
    them after mutations instead of caching across them (the same contract
    ``CCTNode.inclusive`` documents for metric sets).

    The single-tree mutator API (``insert``/``attribute``/...) remains
    available and routes to a default shard, making the unsharded profiler
    the degenerate one-shard case of this class.
    """

    def __init__(self, program_name: str = "program") -> None:
        self.program_name = program_name
        #: Shards keyed by owning thread id (creation order preserved).
        self._shards: Dict[int, CallingContextTree] = {}
        #: Per-shard provenance: which thread produced it (saved with profiles).
        self._provenance: Dict[int, Dict[str, object]] = {}
        self._merged: Optional[CallingContextTree] = None
        self._merged_key: Tuple = ()
        #: Per-shard ``id(shard node) → merged node`` mappings from the last
        #: full merge, and per-merged-node source-node lists — the index the
        #: incremental metric refresh recombines dirty nodes from.
        self._merge_mappings: Dict[int, Dict[int, CCTNode]] = {}
        self._merge_sources: Dict[int, List[CCTNode]] = {}
        #: Per-shard (generation, inclusive generation, node count) snapshot
        #: taken when the merged view last absorbed that shard.
        self._merge_records: Dict[int, Tuple[int, int, int]] = {}
        #: Propagations performed by merged views that have been discarded —
        #: keeps the ``propagations`` counter monotonic across rebuilds.
        self._retired_propagations = 0
        #: Merged-view materializations performed, full or incremental
        #: (observability/tests).
        self.merges = 0
        #: How many of those were in-place incremental refreshes.
        self.refreshes = 0

    # -- shard management -----------------------------------------------------------

    def shard_for(self, thread) -> CallingContextTree:
        """The shard owned by ``thread``, created on first use.

        The (owner, shard) handle is cached on the thread context so repeated
        per-event lookups cost one attribute read; the owner check keeps
        handles from a previous profiling session from leaking into this one.
        """
        handle = getattr(thread, "cct_shard", None)
        if handle is not None and handle[0] is self:
            return handle[1]
        shard = self.shard_for_tid(thread.tid, thread_name=thread.name,
                                   thread_kind=thread.kind)
        try:
            thread.cct_shard = (self, shard)
        except AttributeError:
            pass  # duck-typed thread without assignable attributes
        return shard

    def shard_for_tid(self, tid: int, thread_name: str = "",
                      thread_kind: str = "") -> CallingContextTree:
        """The shard for a thread id (used when only the tid is known)."""
        shard = self._shards.get(tid)
        if shard is None:
            shard = CallingContextTree(self.program_name)
            self._shards[tid] = shard
            self._provenance[tid] = {
                "shard_id": tid,
                "thread_name": thread_name,
                "thread_kind": thread_kind,
            }
        return shard

    @property
    def default_shard(self) -> CallingContextTree:
        """The shard behind the degenerate single-tree mutator API."""
        return self.shard_for_tid(DEFAULT_SHARD_ID, thread_name="unsharded")

    def shards(self) -> Dict[int, CallingContextTree]:
        return dict(self._shards)

    def shard_count(self) -> int:
        return len(self._shards)

    def shard_provenance(self) -> List[Dict[str, object]]:
        """Per-shard origin records in shard creation order."""
        return [dict(self._provenance[tid]) for tid in self._shards]

    # -- single-tree mutator API (degenerate one-shard case) --------------------------

    def insert(self, callpath: CallPath) -> CCTNode:
        return self.default_shard.insert(callpath)

    def _owning_tree(self, node: CCTNode) -> CallingContextTree:
        """The shard a mutation on ``node`` must target.

        Nodes obtained from the read API belong to a *merged cache* — the
        current one, or an already-discarded earlier materialization —
        attributing into either would silently lose the observation, so they
        are rejected outright.
        """
        tree = node.tree
        if tree is None:
            return self.default_shard
        if tree.is_merged_view:
            raise ValueError(
                "node belongs to the merged query view, which is rebuilt (and "
                "discarded) when any shard changes; attribute through the "
                "owning shard (shard_for/shard_for_tid) or insert_and_attribute")
        return tree

    def attribute(self, node: CCTNode, metric: str, value: float) -> None:
        self._owning_tree(node).attribute(node, metric, value)

    def attribute_many(self, node: CCTNode, metrics: Mapping[str, float]) -> None:
        self._owning_tree(node).attribute_many(node, metrics)

    def insert_and_attribute(self, callpath: CallPath,
                             metrics: Mapping[str, float]) -> CCTNode:
        return self.default_shard.insert_and_attribute(callpath, metrics)

    # -- merged view -----------------------------------------------------------------

    def _merge_key(self) -> Tuple:
        return tuple((tid, shard._generation) for tid, shard in self._shards.items())

    def merged(self) -> CallingContextTree:
        """The union of every shard, materialized lazily at query time.

        The first materialization (and any after a *structural* shard change)
        unions every shard into a fresh tree and records, per shard, the
        shard-node → merged-node mapping plus each merged node's contributing
        source nodes.  When only attributions happened since — the common
        query-while-collecting pattern — the cached view is refreshed *in
        place*: just the merged nodes fed by dirty shard nodes are recombined
        from their sources, and the merged tree's own incremental inclusive
        materialization then propagates only those dirty subtrees instead of
        running a full bottom-up pass.  Node identities survive an in-place
        refresh; a structural rebuild still discards the old view.
        """
        key = self._merge_key()
        if self._merged is not None:
            if key == self._merged_key:
                return self._merged
            if self._refresh_merged():
                self._merged_key = key
                self.merges += 1
                self.refreshes += 1
                return self._merged
            self._retired_propagations += self._merged.propagations
        merged = CallingContextTree(self.program_name)
        merged.is_merged_view = True
        self._merge_mappings.clear()
        self._merge_sources.clear()
        self._merge_records.clear()
        sources = self._merge_sources
        for tid, shard in self._shards.items():
            mapping = merged.merge_from(shard)
            self._merge_mappings[tid] = mapping
            for source in shard._registry:
                target = mapping[id(source)]
                bucket = sources.get(id(target))
                if bucket is None:
                    bucket = sources[id(target)] = []
                bucket.append(source)
            self._merge_records[tid] = (shard._generation,
                                        shard._inclusive_generation,
                                        len(shard._registry))
        self._merged = merged
        self._merged_key = key
        self.merges += 1
        return self._merged

    def _refresh_merged(self) -> bool:
        """Try to bring the cached merged view up to date without a rebuild.

        Possible only when every changed shard saw *metric-only* mutations
        whose dirty records are still intact: same node count (no inserts),
        untouched shard-local inclusive view (materializing it clears the
        shard's dirty set, which this refresh depends on), and a non-empty
        dirty set covering the attributions.  Each merged node fed by a dirty
        shard node is zeroed in place and recombined from all of its source
        nodes (Welford merges are not invertible, so the contribution cannot
        be subtracted), then marked dirty on the merged tree so the next
        inclusive materialization propagates only those subtrees.  A shard's
        dirty set may predate the last full merge (it is only cleared by the
        shard's own materialization); recombining a superset is harmless.
        """
        if set(self._shards) != set(self._merge_records):
            return False
        recompute: Dict[int, CCTNode] = {}
        changed: List[int] = []
        for tid, shard in self._shards.items():
            generation, inclusive_generation, node_count = self._merge_records[tid]
            if shard._generation == generation:
                continue
            if (len(shard._registry) != node_count
                    or shard._inclusive_generation != inclusive_generation
                    or not shard._dirty):
                return False
            mapping = self._merge_mappings[tid]
            for source in shard._dirty.values():
                target = mapping.get(id(source))
                if target is None:
                    return False
                recompute[id(target)] = target
            changed.append(tid)
        merged = self._merged
        assert merged is not None
        for target in recompute.values():
            target.exclusive.zero()
            for source in self._merge_sources[id(target)]:
                target.exclusive.merge(source.exclusive)
            merged._dirty[id(target)] = target
        merged._generation += 1
        for tid in changed:
            shard = self._shards[tid]
            self._merge_records[tid] = (shard._generation,
                                        shard._inclusive_generation,
                                        len(shard._registry))
        return True

    def ensure_inclusive(self) -> None:
        self.merged().ensure_inclusive()

    @property
    def generation(self) -> int:
        """Sum of shard generation counters (cache key, monotonic)."""
        return sum(shard._generation for shard in self._shards.values())

    @property
    def insertions(self) -> int:
        return sum(shard.insertions for shard in self._shards.values())

    @property
    def propagations(self) -> int:
        """Total node→parent merges, monotonic across merged-view rebuilds."""
        merged = self._merged.propagations if self._merged is not None else 0
        return (self._retired_propagations + merged
                + sum(shard.propagations for shard in self._shards.values()))

    # -- read API (delegates to the merged view) ---------------------------------------

    @property
    def root(self) -> CCTNode:
        return self.merged().root

    def nodes(self) -> Iterator[CCTNode]:
        return self.merged().nodes()

    def bfs(self) -> Iterator[CCTNode]:
        return self.merged().bfs()

    def all_nodes(self) -> List[CCTNode]:
        return self.merged().all_nodes()

    def leaves(self) -> Iterator[CCTNode]:
        return self.merged().leaves()

    def find(self, predicate: Callable[[CCTNode], bool]) -> List[CCTNode]:
        return self.merged().find(predicate)

    def nodes_of_kind(self, kind: FrameKind) -> List[CCTNode]:
        return self.merged().nodes_of_kind(kind)

    @property
    def kernels(self) -> List[CCTNode]:
        return self.merged().kernels

    @property
    def operators(self) -> List[CCTNode]:
        return self.merged().operators

    @property
    def scopes(self) -> List[CCTNode]:
        return self.merged().scopes

    def node_count(self) -> int:
        return self.merged().node_count()

    def max_depth(self) -> int:
        return self.merged().max_depth()

    def aggregate_by_name(self, kind: Optional[FrameKind] = None,
                          metric: str = "gpu_time") -> Dict[str, float]:
        return self.merged().aggregate_by_name(kind=kind, metric=metric)

    def total_metric(self, metric: str) -> float:
        """Whole-profile total of ``metric`` across every shard.

        Always the shard-order sum of per-shard totals: summary probes
        neither force a merge nor clear the shard dirty records the
        incremental merged-view refresh relies on, and the summation order —
        hence the exact floating-point result — is stable across save/load
        round-trips (shard order is preserved by every format).
        """
        return sum(shard.total_metric(metric) for shard in self._shards.values())

    def approximate_size_bytes(self) -> int:
        """Footprint of every shard plus the merged view if materialized.

        Like the single-tree variant this reports the *current* footprint —
        an unmaterialized merged view costs (almost) nothing and is counted
        as such, so overhead probes taken mid-collection stay cheap.
        """
        total = self.stored_size_bytes()
        if self._merged is not None:
            total += self._merged.approximate_size_bytes()
        return total

    def stored_node_count(self) -> int:
        """Nodes held across the shards, without forcing a merge.

        Each shard counts its own root, so this slightly exceeds the merged
        view's ``node_count()`` (which unions them); it is the collection-side
        number overhead probes use so that probing mid-run neither pays for a
        materialization nor perturbs the footprint it is reporting.
        """
        return sum(shard.node_count() for shard in self._shards.values())

    def stored_size_bytes(self) -> int:
        """Shard-only footprint (excludes any materialized merged view)."""
        return sum(shard.approximate_size_bytes() for shard in self._shards.values())

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Nested-dict encoding of the *merged* view (flattens the shards).

        The nested JSON profile format predates sharding; it stores the union
        tree, which loads back as a plain single :class:`CallingContextTree`.
        Use :meth:`to_columnar` to preserve per-shard provenance.
        """
        return self.merged().to_dict()

    def to_columnar(self) -> Dict:
        """Multi-shard columnar encoding with per-shard provenance."""
        entries = []
        for tid, shard in self._shards.items():
            entry = dict(self._provenance[tid])
            entry["insertions"] = shard.insertions
            entry["generation"] = shard._generation
            entry["tree"] = shard.to_columnar()
            entries.append(entry)
        return {
            "format": SHARDED_TREE_FORMAT,
            "program": self.program_name,
            "shards": entries,
        }

    @classmethod
    def from_columnar(cls, data: Mapping) -> "ShardedCallingContextTree":
        if data.get("format") != SHARDED_TREE_FORMAT:
            raise ValueError(f"not a {SHARDED_TREE_FORMAT} payload")
        tree = cls(str(data.get("program", "program")))
        for entry in data.get("shards", []):
            tid = int(entry.get("shard_id", DEFAULT_SHARD_ID))
            tree._shards[tid] = CallingContextTree.from_columnar(entry["tree"])
            tree._provenance[tid] = {
                "shard_id": tid,
                "thread_name": str(entry.get("thread_name", "")),
                "thread_kind": str(entry.get("thread_kind", "")),
            }
        return tree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedCallingContextTree(shards={len(self._shards)}, "
                f"insertions={self.insertions})")
