"""The calling context tree (CCT).

The CCT is built by inserting unified call paths from DLMonitor and collapsing
frames that refer to the same location (paper Figure 5).  Each node keeps two
metric sets:

* ``exclusive`` — observations attributed directly to this node (e.g. the GPU
  time of a kernel whose call path ends here);
* ``inclusive`` — the same observations propagated to every ancestor up to the
  root, so any frame can answer "how much time was spent underneath me".
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..dlmonitor.callpath import CallPath, Frame, FrameKind, root_frame
from .metrics import MetricSet

_node_ids = itertools.count(1)


class CCTNode:
    """One node of the calling context tree."""

    __slots__ = ("node_id", "frame", "parent", "children", "exclusive", "inclusive")

    def __init__(self, frame: Frame, parent: Optional["CCTNode"] = None) -> None:
        self.node_id = next(_node_ids)
        self.frame = frame
        self.parent = parent
        self.children: Dict[Tuple, "CCTNode"] = {}
        self.exclusive = MetricSet()
        self.inclusive = MetricSet()

    # -- structure ----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.frame.name

    @property
    def kind(self) -> FrameKind:
        return self.frame.kind

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def child_for(self, frame: Frame) -> "CCTNode":
        """Find or create the child that collapses with ``frame``."""
        key = frame.identity()
        child = self.children.get(key)
        if child is None:
            child = CCTNode(frame, parent=self)
            self.children[key] = child
        return child

    def ancestors(self) -> Iterator["CCTNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> List["CCTNode"]:
        nodes = [self]
        nodes.extend(self.ancestors())
        nodes.reverse()
        return nodes

    def callpath(self) -> CallPath:
        return CallPath.of(node.frame for node in self.path_from_root())

    # -- metrics --------------------------------------------------------------------

    def gpu_time(self) -> float:
        return self.inclusive.sum("gpu_time")

    def cpu_time(self) -> float:
        return self.inclusive.sum("cpu_time")

    def kernel_count(self) -> int:
        return int(self.inclusive.sum("kernel_count"))

    def metric(self, name: str, inclusive: bool = True) -> float:
        metric_set = self.inclusive if inclusive else self.exclusive
        return metric_set.sum(name)

    def __repr__(self) -> str:
        return f"CCTNode(#{self.node_id} {self.frame.label()!r}, children={len(self.children)})"


class CallingContextTree:
    """The profile's calling context tree with online metric aggregation."""

    def __init__(self, program_name: str = "program") -> None:
        self.root = CCTNode(root_frame(program_name))
        self.insertions = 0
        self.propagations = 0

    # -- construction --------------------------------------------------------------

    def insert(self, callpath: CallPath) -> CCTNode:
        """Insert a call path, collapsing frames that refer to the same location.

        The call path's own root frame (kind ``ROOT``) collapses with the tree
        root; remaining frames create or reuse children level by level.
        Returns the leaf node.
        """
        node = self.root
        for frame in callpath:
            if frame.kind == FrameKind.ROOT:
                continue
            node = node.child_for(frame)
        self.insertions += 1
        return node

    def attribute(self, node: CCTNode, metric: str, value: float) -> None:
        """Add an observation at ``node`` and propagate it to every ancestor."""
        node.exclusive.add(metric, value)
        current: Optional[CCTNode] = node
        while current is not None:
            current.inclusive.add(metric, value)
            self.propagations += 1
            current = current.parent

    def insert_and_attribute(self, callpath: CallPath, metrics: Dict[str, float]) -> CCTNode:
        """Insert a call path and attribute several metrics to its leaf at once."""
        node = self.insert(callpath)
        for metric, value in metrics.items():
            self.attribute(node, metric, value)
        return node

    # -- traversal --------------------------------------------------------------------

    def nodes(self) -> Iterator[CCTNode]:
        """Depth-first, pre-order traversal of every node (root included)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def bfs(self) -> Iterator[CCTNode]:
        """Breadth-first traversal (the order the analyzer's examples use)."""
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            yield node
            queue.extend(node.children.values())

    def leaves(self) -> Iterator[CCTNode]:
        for node in self.nodes():
            if not node.children:
                yield node

    def find(self, predicate: Callable[[CCTNode], bool]) -> List[CCTNode]:
        return [node for node in self.nodes() if predicate(node)]

    def nodes_of_kind(self, kind: FrameKind) -> List[CCTNode]:
        return self.find(lambda node: node.kind == kind)

    @property
    def kernels(self) -> List[CCTNode]:
        """All GPU-kernel nodes (the analyzer's ``call_tree.kernels``)."""
        return self.nodes_of_kind(FrameKind.GPU_KERNEL)

    @property
    def operators(self) -> List[CCTNode]:
        """All framework-operator nodes (excluding module scopes)."""
        return self.find(lambda node: node.kind == FrameKind.FRAMEWORK and node.frame.tag != "scope")

    @property
    def scopes(self) -> List[CCTNode]:
        """Module / semantic scope nodes (``loss_fn``, layer names, ...)."""
        return self.find(lambda node: node.kind == FrameKind.FRAMEWORK and node.frame.tag == "scope")

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def max_depth(self) -> int:
        return max((node.depth for node in self.nodes()), default=0)

    # -- aggregation views ----------------------------------------------------------------

    def aggregate_by_name(self, kind: Optional[FrameKind] = None,
                          metric: str = "gpu_time") -> Dict[str, float]:
        """Sum an exclusive metric across all nodes sharing the same frame name.

        This is the bottom-up view's aggregation: the same kernel called from
        many contexts is folded into a single row.
        """
        totals: Dict[str, float] = {}
        for node in self.nodes():
            if kind is not None and node.kind != kind:
                continue
            value = node.exclusive.sum(metric)
            if value:
                totals[node.name] = totals.get(node.name, 0.0) + value
        return totals

    # -- serialization -----------------------------------------------------------------------

    def to_dict(self) -> Dict:
        def encode(node: CCTNode) -> Dict:
            return {
                "name": node.frame.name,
                "kind": node.frame.kind.value,
                "file": node.frame.file,
                "line": node.frame.line,
                "library": node.frame.library,
                "pc": node.frame.pc,
                "tag": node.frame.tag,
                "exclusive": node.exclusive.as_dict(),
                "inclusive": node.inclusive.as_dict(),
                "children": [encode(child) for child in node.children.values()],
            }

        return {"root": encode(self.root), "insertions": self.insertions}

    @classmethod
    def from_dict(cls, data: Dict) -> "CallingContextTree":
        tree = cls()

        def decode(node_data: Dict, parent: Optional[CCTNode]) -> CCTNode:
            frame = Frame(
                kind=FrameKind(node_data["kind"]),
                name=node_data["name"],
                file=node_data.get("file", ""),
                line=node_data.get("line", 0),
                library=node_data.get("library", ""),
                pc=node_data.get("pc", 0),
                tag=node_data.get("tag", ""),
            )
            node = CCTNode(frame, parent=parent)
            node.exclusive = MetricSet.from_dict(node_data.get("exclusive", {}))
            node.inclusive = MetricSet.from_dict(node_data.get("inclusive", {}))
            for child_data in node_data.get("children", []):
                child = decode(child_data, node)
                node.children[child.frame.identity()] = child
            return node

        tree.root = decode(data["root"], None)
        tree.insertions = data.get("insertions", 0)
        return tree

    def approximate_size_bytes(self) -> int:
        """Rough in-memory footprint of the tree (nodes + metric aggregates)."""
        total = 0
        for node in self.nodes():
            total += 160  # node object, frame, child-dict overhead
            total += node.exclusive.approximate_size_bytes()
            total += node.inclusive.approximate_size_bytes()
        return total
