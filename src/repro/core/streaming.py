"""Streaming profile collection: checkpointed append-then-reseal writing.

Long training runs cannot afford the seed pipeline's "hold everything in
memory, serialize once at the end" model — a crash at hour three loses the
whole profile.  :class:`StreamingProfileWriter` instead checkpoints a live
:class:`~repro.core.database.ProfileDatabase` into a single growing
``cct-binary-v1`` file:

* each **checkpoint** appends only the *dirty* shards' frame-table/column
  blocks (shard generation counters tell clean shards apart, and a shard
  whose node count is unchanged — metric-only mutation — reuses its sealed
  frame table and appends just columns), then **reseals** the file by
  appending a fresh meta block, a TOC whose entries point at the freshest
  block per shard, and the 24-byte tail;
* because sealed blocks are never rewritten, **every sealed prefix is a
  valid profile**: ``ProfileDatabase.load`` reads the newest seal at EOF,
  ``repro.core.storage.recover_profile`` finds the last intact seal of an
  arbitrarily truncated crash leftover, and ``LazyProfileView.attach`` /
  ``refresh`` let another process query the run in flight;
* the final :meth:`close` writes the closing seal and (by default)
  **compacts** the file — superseded blocks are dropped by copying only the
  live byte ranges into a fresh single-seal file, no re-encoding.

The profiler drives this through ``ProfilerConfig.checkpoint_path`` /
``checkpoint_interval_s``; the layout is specified in ``docs/FORMATS.md``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..obs import TELEMETRY
from .database import ProfileDatabase
from .storage import (BINARY_MAGIC, FORMAT_BINARY_V1, _TAIL, BinaryV1Backend,
                      _encode_column_block, _encode_frames_block,
                      check_compression, pack_block)

#: Sidecar suffix marking a streamed run as finished (see
#: :func:`completion_marker_path`).
DONE_SUFFIX = ".done"


def completion_marker_path(path: str) -> str:
    """The sidecar path marking the streamed profile at ``path`` complete."""
    return f"{path}{DONE_SUFFIX}"


def is_marked_complete(path: str) -> bool:
    """Whether the streamed profile at ``path`` carries a completion marker."""
    return os.path.exists(completion_marker_path(path))


@dataclass
class CheckpointStats:
    """What one checkpoint did (observability for tests and benchmarks)."""

    #: 0-based index of the seal this checkpoint wrote.
    seal: int
    #: Shards whose blocks were (at least partly) re-encoded and appended.
    dirty_shards: int
    #: Shards untouched since the previous seal: no bytes appended, their
    #: TOC entries carry the previous blocks forward.
    clean_shards: int
    #: Frame tables re-encoded (0 for metric-only checkpoints: an unchanged
    #: node count means an identical frame table, which is reused).
    frames_blocks: int
    #: Metric column blocks appended.
    column_blocks: int
    #: Bytes this checkpoint appended (blocks + meta + TOC + tail).
    bytes_appended: int
    #: Total file size after the seal.
    file_bytes: int
    #: Wall-clock seconds the checkpoint took.
    wall_seconds: float


class StreamingProfileWriter:
    """Incrementally persist a live profile as a resealable binary stream.

    The writer owns the file at ``path`` from construction until
    :meth:`close`, and appends *in place* between seals — the visible,
    growing file is the whole point: it is what crash recovery and live
    attach read.  Construction, however, never touches an existing file at
    ``path``: the stream starts in a sibling temp file that is atomically
    promoted over ``path`` when the first seal completes, so a previous
    (crashed) run's recoverable profile survives until this run has produced
    a valid profile of its own, and readers still mapping the old inode are
    never invalidated.  Call :meth:`checkpoint` as often as durability
    demands; the cost of each call is proportional to the shards that
    changed, not to the profile.

    ``database.tree`` may be a sharded or a plain tree (a plain tree streams
    as the degenerate single shard).  ``compression`` applies per appended
    block (``"zlib"`` or None) and may be changed between checkpoints —
    readers honour each block's own descriptor flag.
    """

    def __init__(self, database: ProfileDatabase, path: str,
                 compression: Optional[str] = None,
                 fsync: bool = False,
                 checksums: bool = True) -> None:
        self.database = database
        self.path = path
        self.compression = check_compression(compression)
        self._fsync = fsync
        self._checksums = checksums
        #: Until the first seal completes the stream lives here, keeping any
        #: existing (recoverable) profile at ``path`` intact; the first
        #: ``checkpoint`` promotes it with ``os.replace``.
        self._pending_path: Optional[str] = f"{path}.stream.tmp"
        self._handle = open(self._pending_path, "wb")
        self._handle.write(BINARY_MAGIC)
        self._offset = len(BINARY_MAGIC)
        #: File offset just past the last completed seal's tail: everything
        #: at or beyond it is unsealed and may be discarded by
        #: :meth:`_rewind` after a failed append.
        self._sealed_offset = self._offset
        #: Per-shard (generation, node count) snapshot at the last seal.
        self._shard_states: Dict[int, tuple] = {}
        #: Live (newest) block descriptors per shard.
        self._frames_blocks: Dict[int, Dict] = {}
        self._column_blocks: Dict[int, Dict[str, Dict]] = {}
        #: TOC of the newest seal (drives compaction).
        self._last_toc: Optional[Dict] = None
        #: Checkpoints sealed so far.
        self.checkpoints = 0
        #: Bytes occupied by superseded (no longer referenced) blocks.
        self.superseded_bytes = 0
        self.last_stats: Optional[CheckpointStats] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "StreamingProfileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    # -- checkpointing --------------------------------------------------------------

    def _emit(self, block: bytes, compress: bool = False) -> Dict:
        block, descriptor = pack_block(block, self._offset, self.compression,
                                       compress, checksum=self._checksums)
        self._handle.write(block)
        self._offset += len(block)
        return descriptor

    def checkpoint(self) -> CheckpointStats:
        """Append the dirty shards' blocks and reseal the file.

        Clean shards — generation counter unchanged since the last seal —
        contribute nothing but their (carried-forward) TOC entries.  Dirty
        shards append fresh column blocks, plus a fresh frame table only when
        the shard grew structurally; a metric-only change reuses the sealed
        frame table because shard registries are append-only, so an unchanged
        node count implies an identical encoding.  The live tree is only
        read: checkpointing never disturbs dirty sets, inclusive views or
        merged-view caches.

        A checkpoint that fails partway — ``ENOSPC``, an I/O error, a torn
        write — leaves the file recoverable at the previous seal and the
        writer retryable: the partial append is rolled back (seek + truncate
        to the last sealed offset, best-effort on a dead handle) and the
        writer's descriptor state is restored, so a later ``checkpoint()``
        after the condition clears seals cleanly with no corrupt gap.
        """
        if self._closed:
            raise RuntimeError(
                f"StreamingProfileWriter for {self.path!r} is closed")
        snapshot = (dict(self._frames_blocks),
                    {tid: dict(columns)
                     for tid, columns in self._column_blocks.items()},
                    dict(self._shard_states),
                    self.superseded_bytes)
        try:
            with TELEMETRY.span("streaming.seal", path=self.path,
                                seal=self.checkpoints):
                return self._checkpoint()
        except BaseException:
            (self._frames_blocks, self._column_blocks, self._shard_states,
             self.superseded_bytes) = snapshot
            self._rewind()
            raise

    def _rewind(self) -> None:
        """Discard unsealed bytes a failed checkpoint may have appended."""
        try:
            self._handle.seek(self._sealed_offset)
            self._handle.truncate()
        except (OSError, ValueError):
            # The handle itself may be dead (disk gone, simulated crash);
            # recovery-by-backward-scan ignores the partial tail anyway.
            pass
        self._offset = self._sealed_offset

    def _checkpoint(self) -> CheckpointStats:
        start = time.perf_counter()
        appended_from = self._offset
        shards, provenance, tree_kind, program = \
            BinaryV1Backend._shard_map(self.database.tree)

        old_meta = (self._last_toc or {}).get("meta")
        meta_block = self._emit(json.dumps({
            "metadata": self.database.metadata.as_dict(),
            "dlmonitor_stats": dict(self.database.dlmonitor_stats),
            "issues": list(self.database.issues),
        }).encode("utf-8"))
        if old_meta is not None:
            self.superseded_bytes += int(old_meta["length"])

        dirty = clean = frames_written = columns_written = 0
        shard_entries = []
        for origin, (tid, shard) in zip(provenance, shards.items()):
            entry: Dict[str, object] = dict(origin)
            entry["insertions"] = shard.insertions
            entry["nodes"] = shard.node_count()
            state = (shard.generation, shard.node_count())
            previous = self._shard_states.get(tid)
            if previous == state and tid in self._frames_blocks:
                clean += 1
            else:
                dirty += 1
                if (previous is not None and previous[1] == state[1]
                        and tid in self._frames_blocks):
                    pass  # metric-only change: the sealed frame table stands
                else:
                    if tid in self._frames_blocks:
                        self.superseded_bytes += \
                            int(self._frames_blocks[tid]["length"])
                    self._frames_blocks[tid] = self._emit(
                        _encode_frames_block(shard), compress=True)
                    frames_written += 1
                for descriptor in self._column_blocks.get(tid, {}).values():
                    self.superseded_bytes += int(descriptor["length"])
                columns: Dict[str, Dict] = {}
                for metric, column in BinaryV1Backend._columns(shard).items():
                    descriptor = self._emit(_encode_column_block(column),
                                            compress=True)
                    descriptor["entries"] = len(column)
                    columns[metric] = descriptor
                    columns_written += 1
                self._column_blocks[tid] = columns
                self._shard_states[tid] = state
            entry["frames"] = self._frames_blocks[tid]
            entry["columns"] = dict(self._column_blocks[tid])
            shard_entries.append(entry)

        toc = {
            "format": FORMAT_BINARY_V1,
            "version": 1,
            "tree_kind": tree_kind,
            "program": program,
            "seal": self.checkpoints,
            "meta": meta_block,
            "shards": shard_entries,
        }
        if self._checksums:
            toc["checksum"] = "crc32"
        encoded_toc = json.dumps(toc).encode("utf-8")
        toc_offset = self._offset
        self._handle.write(encoded_toc)
        self._offset += len(encoded_toc)
        self._handle.write(_TAIL.pack(toc_offset, len(encoded_toc),
                                      BINARY_MAGIC))
        self._offset += _TAIL.size
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._sealed_offset = self._offset
        if self._pending_path is not None:
            # First complete seal: promote the staged stream over ``path``.
            # The open handle follows the inode, so appends continue
            # seamlessly; a crash before this point left ``path`` untouched.
            os.replace(self._pending_path, self.path)
            self._pending_path = None
        # The previous seal's TOC + tail are now superseded bytes too.
        if self._last_toc is not None:
            self.superseded_bytes += \
                int(self._last_toc["_toc_length"]) + _TAIL.size
        toc["_toc_length"] = len(encoded_toc)
        self._last_toc = toc
        self.checkpoints += 1

        self.last_stats = CheckpointStats(
            seal=self.checkpoints - 1,
            dirty_shards=dirty,
            clean_shards=clean,
            frames_blocks=frames_written,
            column_blocks=columns_written,
            bytes_appended=self._offset - appended_from,
            file_bytes=self._offset,
            wall_seconds=time.perf_counter() - start,
        )
        if TELEMETRY.enabled:
            TELEMETRY.count("streaming.seals")
            TELEMETRY.count("streaming.dirty_shards", dirty)
            TELEMETRY.count("streaming.clean_shards", clean)
            TELEMETRY.count("streaming.bytes_appended",
                            self.last_stats.bytes_appended)
            TELEMETRY.observe("streaming.seal_seconds",
                              self.last_stats.wall_seconds)
        return self.last_stats

    # -- closing seal and compaction --------------------------------------------------

    def close(self, compact: bool = True, mark_complete: bool = False) -> str:
        """Write the closing seal, optionally compact, and release the file.

        The closing checkpoint always runs (it captures final metadata even
        when no shard changed).  Compaction rewrites the file with only the
        blocks the final TOC references — a byte-range copy into a sibling
        temp file swapped in with ``os.replace``, so readers attached to the
        old inode stay consistent and a crash mid-compaction loses nothing.

        With ``mark_complete`` a sidecar marker (``<path>.done``, see
        :func:`completion_marker_path`) is written after the final seal
        lands, telling a fleet watcher the run finished on purpose — the
        deterministic alternative to its has-the-file-gone-quiet heuristic.
        A crashed run never writes one, which is exactly the signal's value.
        """
        if self._closed:
            return self.path
        self.checkpoint()
        self._handle.close()
        if compact and self.superseded_bytes > 0:
            with TELEMETRY.span("streaming.compact", path=self.path):
                self._compact()
        if mark_complete:
            self._write_completion_marker()
        self._closed = True
        return self.path

    def _write_completion_marker(self) -> None:
        marker_path = completion_marker_path(self.path)
        payload = {
            "profile": os.path.basename(self.path),
            "checkpoints": self.checkpoints,
            "completed_at": time.time(),
        }
        temp_path = f"{marker_path}.{os.getpid()}.tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_path, marker_path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def _compact(self) -> None:
        """Drop superseded blocks by copying live byte ranges (no re-encode)."""
        toc = self._last_toc
        assert toc is not None
        if TELEMETRY.enabled:
            TELEMETRY.count("streaming.compactions")
            TELEMETRY.count("streaming.bytes_reclaimed",
                            self.superseded_bytes)
        temp_path = f"{self.path}.compact.tmp"
        try:
            with open(self.path, "rb") as source, \
                    open(temp_path, "wb") as target:
                target.write(BINARY_MAGIC)
                offset = len(BINARY_MAGIC)

                def copy(descriptor: Dict) -> Dict:
                    nonlocal offset
                    source.seek(int(descriptor["offset"]))
                    block = source.read(int(descriptor["length"]))
                    target.write(block)
                    moved = dict(descriptor)
                    moved["offset"] = offset
                    offset += len(block)
                    return moved

                compacted = {key: value for key, value in toc.items()
                             if key != "_toc_length"}
                compacted["meta"] = copy(toc["meta"])
                entries = []
                for entry in toc["shards"]:
                    moved = dict(entry)
                    moved["frames"] = copy(entry["frames"])
                    moved["columns"] = {metric: copy(descriptor)
                                        for metric, descriptor
                                        in entry["columns"].items()}
                    entries.append(moved)
                compacted["shards"] = entries
                encoded = json.dumps(compacted).encode("utf-8")
                target.write(encoded)
                target.write(_TAIL.pack(offset, len(encoded), BINARY_MAGIC))
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        os.replace(temp_path, self.path)
        self.superseded_bytes = 0
