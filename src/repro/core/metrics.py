"""Metric descriptors and online aggregation.

Unlike trace-based profilers that keep every event, DeepContext aggregates
metrics *online*: each calling-context-tree node keeps, per metric, a running
count, sum, minimum, maximum, mean and standard deviation (paper §4.2).  The
standard deviation uses Welford's algorithm so aggregation is single-pass and
numerically stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

# Canonical metric names used throughout the repository.
METRIC_GPU_TIME = "gpu_time"
METRIC_CPU_TIME = "cpu_time"
METRIC_REAL_TIME = "real_time"
METRIC_KERNEL_COUNT = "kernel_count"
METRIC_MEMCPY_BYTES = "memcpy_bytes"
METRIC_ALLOCATED_BYTES = "allocated_bytes"
METRIC_BLOCKS = "blocks"
METRIC_THREADS_PER_BLOCK = "threads_per_block"
METRIC_REGISTERS = "registers_per_thread"
METRIC_SHARED_MEMORY = "shared_memory_bytes"
METRIC_STALL_SAMPLES = "stall_samples"
METRIC_INSTRUCTION_SAMPLES = "instruction_samples"
METRIC_OP_COUNT = "op_count"


@dataclass(frozen=True)
class MetricDescriptor:
    """Static description of a metric: unit and how to read it."""

    name: str
    unit: str = ""
    description: str = ""
    #: "gpu", "cpu" or "framework" — which collector produces it.
    source: str = "gpu"


STANDARD_METRICS: Dict[str, MetricDescriptor] = {
    METRIC_GPU_TIME: MetricDescriptor(METRIC_GPU_TIME, "s", "GPU kernel/memcpy execution time", "gpu"),
    METRIC_CPU_TIME: MetricDescriptor(METRIC_CPU_TIME, "s", "CPU time from interval sampling", "cpu"),
    METRIC_REAL_TIME: MetricDescriptor(METRIC_REAL_TIME, "s", "Wall-clock time from interval sampling", "cpu"),
    METRIC_KERNEL_COUNT: MetricDescriptor(METRIC_KERNEL_COUNT, "", "Number of kernel launches", "gpu"),
    METRIC_MEMCPY_BYTES: MetricDescriptor(METRIC_MEMCPY_BYTES, "B", "Bytes moved by memory copies", "gpu"),
    METRIC_ALLOCATED_BYTES: MetricDescriptor(METRIC_ALLOCATED_BYTES, "B", "Device bytes allocated", "gpu"),
    METRIC_BLOCKS: MetricDescriptor(METRIC_BLOCKS, "", "CTAs per kernel launch", "gpu"),
    METRIC_THREADS_PER_BLOCK: MetricDescriptor(METRIC_THREADS_PER_BLOCK, "", "Threads per CTA", "gpu"),
    METRIC_REGISTERS: MetricDescriptor(METRIC_REGISTERS, "", "Registers per thread", "gpu"),
    METRIC_SHARED_MEMORY: MetricDescriptor(METRIC_SHARED_MEMORY, "B", "Static shared memory per CTA", "gpu"),
    METRIC_STALL_SAMPLES: MetricDescriptor(METRIC_STALL_SAMPLES, "", "Stalled instruction samples", "gpu"),
    METRIC_INSTRUCTION_SAMPLES: MetricDescriptor(METRIC_INSTRUCTION_SAMPLES, "", "All instruction samples", "gpu"),
    METRIC_OP_COUNT: MetricDescriptor(METRIC_OP_COUNT, "", "Framework operator invocations", "framework"),
}


class MetricAggregate:
    """Running statistics of one metric at one CCT node."""

    __slots__ = ("count", "total", "minimum", "maximum", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics (Welford update)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "MetricAggregate") -> None:
        """Fold another aggregate into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.minimum = other.minimum
            self.maximum = other.maximum
            self._mean = other._mean
            self._m2 = other._m2
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / combined
        self._mean = (self._mean * self.count + other._mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def sum(self) -> float:
        return self.total

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self.minimum if self.count else 0.0

    @property
    def max(self) -> float:
        return self.maximum if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "MetricAggregate":
        aggregate = cls()
        count = int(data.get("count", 0))
        if count == 0:
            return aggregate
        aggregate.count = count
        aggregate.total = float(data.get("sum", 0.0))
        aggregate.minimum = float(data.get("min", 0.0))
        aggregate.maximum = float(data.get("max", 0.0))
        aggregate._mean = float(data.get("mean", aggregate.total / count))
        std = float(data.get("std", 0.0))
        aggregate._m2 = std * std * count
        return aggregate

    def __repr__(self) -> str:
        return (f"MetricAggregate(count={self.count}, sum={self.total:.6g}, "
                f"mean={self.mean:.6g}, std={self.std:.6g})")


class MetricSet:
    """The per-node collection of metric aggregates."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricAggregate] = {}

    def add(self, name: str, value: float) -> None:
        aggregate = self._metrics.get(name)
        if aggregate is None:
            aggregate = MetricAggregate()
            self._metrics[name] = aggregate
        aggregate.add(value)

    def get(self, name: str) -> Optional[MetricAggregate]:
        return self._metrics.get(name)

    def sum(self, name: str) -> float:
        aggregate = self._metrics.get(name)
        return aggregate.total if aggregate is not None else 0.0

    def count(self, name: str) -> int:
        aggregate = self._metrics.get(name)
        return aggregate.count if aggregate is not None else 0

    def merge(self, other: "MetricSet") -> None:
        for name, aggregate in other.items():
            mine = self._metrics.get(name)
            if mine is None:
                mine = MetricAggregate()
                self._metrics[name] = mine
            mine.merge(aggregate)

    def names(self) -> Iterable[str]:
        return self._metrics.keys()

    def items(self):
        return self._metrics.items()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: aggregate.as_dict() for name, aggregate in self._metrics.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, float]]) -> "MetricSet":
        metric_set = cls()
        for name, aggregate_data in data.items():
            metric_set._metrics[name] = MetricAggregate.from_dict(aggregate_data)
        return metric_set

    def approximate_size_bytes(self) -> int:
        """Rough in-memory footprint used by the memory-overhead evaluation."""
        # One aggregate stores six floats/ints plus dict overhead.
        return 64 + len(self._metrics) * 96
