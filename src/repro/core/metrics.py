"""Metric descriptors and online aggregation.

Unlike trace-based profilers that keep every event, DeepContext aggregates
metrics *online*: each calling-context-tree node keeps, per metric, a running
count, sum, minimum, maximum, mean and standard deviation (paper §4.2).  The
standard deviation uses Welford's algorithm so aggregation is single-pass and
numerically stable.

Two aggregation paths exist: :meth:`MetricAggregate.add` folds one observation
into a node's *exclusive* statistics on the hot attribution path, while
:meth:`MetricAggregate.merge` (the parallel/Chan variant of Welford's update)
combines whole aggregates.  The CCT's lazily materialized inclusive view is
built entirely from ``merge`` — one node→parent combine per tree edge —
instead of replaying per-observation ancestor updates, so the two paths must
and do agree to floating-point accuracy (see the equivalence tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

# Field order of one serialized aggregate, shared by every flat encoding of
# metric columns (``CallingContextTree.to_columnar`` and the binary profile
# backend pack/unpack aggregates through ``MetricAggregate.state()`` in
# exactly this order).
AGGREGATE_STATE_FIELDS = ("count", "sum", "min", "max", "mean", "m2")

# Canonical metric names used throughout the repository.
METRIC_GPU_TIME = "gpu_time"
METRIC_CPU_TIME = "cpu_time"
METRIC_REAL_TIME = "real_time"
METRIC_KERNEL_COUNT = "kernel_count"
METRIC_MEMCPY_BYTES = "memcpy_bytes"
METRIC_ALLOCATED_BYTES = "allocated_bytes"
METRIC_BLOCKS = "blocks"
METRIC_THREADS_PER_BLOCK = "threads_per_block"
METRIC_REGISTERS = "registers_per_thread"
METRIC_SHARED_MEMORY = "shared_memory_bytes"
METRIC_STALL_SAMPLES = "stall_samples"
METRIC_INSTRUCTION_SAMPLES = "instruction_samples"
METRIC_OP_COUNT = "op_count"


@dataclass(frozen=True)
class MetricDescriptor:
    """Static description of a metric: unit and how to read it."""

    name: str
    unit: str = ""
    description: str = ""
    #: "gpu", "cpu" or "framework" — which collector produces it.
    source: str = "gpu"


STANDARD_METRICS: Dict[str, MetricDescriptor] = {
    METRIC_GPU_TIME: MetricDescriptor(METRIC_GPU_TIME, "s", "GPU kernel/memcpy execution time", "gpu"),
    METRIC_CPU_TIME: MetricDescriptor(METRIC_CPU_TIME, "s", "CPU time from interval sampling", "cpu"),
    METRIC_REAL_TIME: MetricDescriptor(METRIC_REAL_TIME, "s", "Wall-clock time from interval sampling", "cpu"),
    METRIC_KERNEL_COUNT: MetricDescriptor(METRIC_KERNEL_COUNT, "", "Number of kernel launches", "gpu"),
    METRIC_MEMCPY_BYTES: MetricDescriptor(METRIC_MEMCPY_BYTES, "B", "Bytes moved by memory copies", "gpu"),
    METRIC_ALLOCATED_BYTES: MetricDescriptor(METRIC_ALLOCATED_BYTES, "B", "Device bytes allocated", "gpu"),
    METRIC_BLOCKS: MetricDescriptor(METRIC_BLOCKS, "", "CTAs per kernel launch", "gpu"),
    METRIC_THREADS_PER_BLOCK: MetricDescriptor(METRIC_THREADS_PER_BLOCK, "", "Threads per CTA", "gpu"),
    METRIC_REGISTERS: MetricDescriptor(METRIC_REGISTERS, "", "Registers per thread", "gpu"),
    METRIC_SHARED_MEMORY: MetricDescriptor(METRIC_SHARED_MEMORY, "B", "Static shared memory per CTA", "gpu"),
    METRIC_STALL_SAMPLES: MetricDescriptor(METRIC_STALL_SAMPLES, "", "Stalled instruction samples", "gpu"),
    METRIC_INSTRUCTION_SAMPLES: MetricDescriptor(METRIC_INSTRUCTION_SAMPLES, "", "All instruction samples", "gpu"),
    METRIC_OP_COUNT: MetricDescriptor(METRIC_OP_COUNT, "", "Framework operator invocations", "framework"),
}


class MetricAggregate:
    """Running statistics of one metric at one CCT node."""

    __slots__ = ("count", "total", "minimum", "maximum", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics (Welford update)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "MetricAggregate") -> None:
        """Fold another aggregate into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.copy_from(other)
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / combined
        self._mean = (self._mean * self.count + other._mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def copy(self) -> "MetricAggregate":
        """An independent copy (used when seeding the lazy inclusive view)."""
        duplicate = MetricAggregate()
        duplicate.copy_from(self)
        return duplicate

    def copy_from(self, other: "MetricAggregate") -> None:
        """Overwrite this aggregate's state in place with ``other``'s."""
        self.count = other.count
        self.total = other.total
        self.minimum = other.minimum
        self.maximum = other.maximum
        self._mean = other._mean
        self._m2 = other._m2

    def reset(self) -> None:
        """Return to the freshly constructed (zero observations) state."""
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def state(self) -> Tuple[int, float, float, float, float, float]:
        """Exact internal state ``(count, sum, min, max, mean, m2)``.

        Unlike :meth:`as_dict` (which emits the derived ``std``), this is
        lossless — the columnar profile encoding round-trips through it.
        """
        return (self.count, self.total, self.minimum if self.count else 0.0,
                self.maximum if self.count else 0.0, self._mean, self._m2)

    @classmethod
    def from_state(cls, count: int, total: float, minimum: float,
                   maximum: float, mean: float, m2: float) -> "MetricAggregate":
        aggregate = cls()
        if count == 0:
            return aggregate
        aggregate.count = count
        aggregate.total = total
        aggregate.minimum = minimum
        aggregate.maximum = maximum
        aggregate._mean = mean
        aggregate._m2 = m2
        return aggregate

    @property
    def sum(self) -> float:
        return self.total

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self.minimum if self.count else 0.0

    @property
    def max(self) -> float:
        return self.maximum if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "MetricAggregate":
        aggregate = cls()
        count = int(data.get("count", 0))
        if count == 0:
            return aggregate
        aggregate.count = count
        aggregate.total = float(data.get("sum", 0.0))
        aggregate.minimum = float(data.get("min", 0.0))
        aggregate.maximum = float(data.get("max", 0.0))
        aggregate._mean = float(data.get("mean", aggregate.total / count))
        std = float(data.get("std", 0.0))
        aggregate._m2 = std * std * count
        return aggregate

    def __repr__(self) -> str:
        return (f"MetricAggregate(count={self.count}, sum={self.total:.6g}, "
                f"mean={self.mean:.6g}, std={self.std:.6g})")


class MetricSet:
    """The per-node collection of metric aggregates."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricAggregate] = {}

    def add(self, name: str, value: float) -> None:
        aggregate = self._metrics.get(name)
        if aggregate is None:
            aggregate = MetricAggregate()
            self._metrics[name] = aggregate
        aggregate.add(value)

    def add_many(self, values: Mapping[str, float]) -> None:
        """Fold one observation of several metrics in a single call."""
        metrics = self._metrics
        for name, value in values.items():
            aggregate = metrics.get(name)
            if aggregate is None:
                aggregate = MetricAggregate()
                metrics[name] = aggregate
            aggregate.add(value)

    def get(self, name: str) -> Optional[MetricAggregate]:
        return self._metrics.get(name)

    def put(self, name: str, aggregate: MetricAggregate) -> None:
        """Install a fully built aggregate (deserialization hot path)."""
        self._metrics[name] = aggregate

    def copy(self) -> "MetricSet":
        """An independent deep copy of every aggregate."""
        duplicate = MetricSet()
        duplicate._metrics = {name: aggregate.copy()
                              for name, aggregate in self._metrics.items()}
        return duplicate

    def zero(self) -> None:
        """Zero every aggregate in place, preserving object identities.

        Used when a node's exclusive metrics must be recomputed from scratch
        (the merged view's incremental refresh): held references keep reading
        current data, and the subsequent merges refill the same aggregates.
        """
        for aggregate in self._metrics.values():
            aggregate.reset()

    def reset_to(self, other: "MetricSet") -> None:
        """Make this set equal ``other`` while keeping object identities alive.

        Callers may hold references to this set (and its aggregates) across
        re-materializations of the lazy inclusive view; resetting in place
        keeps those references reading current data instead of a stale copy.
        """
        metrics = self._metrics
        for name, mine in metrics.items():
            if name not in other._metrics:
                # Zero rather than delete: a subsequent merge() refills the
                # same aggregate object, preserving identity for held refs.
                mine.reset()
        for name, source in other._metrics.items():
            mine = metrics.get(name)
            if mine is None:
                metrics[name] = source.copy()
            else:
                mine.copy_from(source)

    def sum(self, name: str) -> float:
        aggregate = self._metrics.get(name)
        return aggregate.total if aggregate is not None else 0.0

    def count(self, name: str) -> int:
        aggregate = self._metrics.get(name)
        return aggregate.count if aggregate is not None else 0

    def merge(self, other: "MetricSet") -> None:
        for name, aggregate in other.items():
            mine = self._metrics.get(name)
            if mine is None:
                mine = MetricAggregate()
                self._metrics[name] = mine
            mine.merge(aggregate)

    def names(self) -> Iterable[str]:
        return self._metrics.keys()

    def items(self):
        return self._metrics.items()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Serializable encoding of every *observed* metric.

        Count-0 aggregates are skipped: ``reset_to`` zeroes stale aggregates
        in place (instead of deleting them, to keep held references alive), so
        a long-lived inclusive view can carry zombie zero entries that mean
        "nothing observed" — serializing them would bloat the payload and
        round-trip as spurious metric rows.
        """
        return {name: aggregate.as_dict() for name, aggregate in self._metrics.items()
                if aggregate.count > 0}

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, float]]) -> "MetricSet":
        metric_set = cls()
        for name, aggregate_data in data.items():
            metric_set._metrics[name] = MetricAggregate.from_dict(aggregate_data)
        return metric_set

    def approximate_size_bytes(self) -> int:
        """Rough in-memory footprint used by the memory-overhead evaluation."""
        # One aggregate stores six floats/ints plus dict overhead.
        return 64 + len(self._metrics) * 96
