"""GPU metric collection.

The collector registers a GPU-domain callback through DLMonitor: at every
kernel launch / memory copy it emits the correlation ID, retrieves the unified
call path, inserts it into the CCT and remembers the association.  Device-side
measurements (kernel durations, launch configurations, instruction samples)
arrive later through asynchronous activity buffers and are linked back to
their nodes through the correlation registry (paper §4.2, "GPU Metrics").

With a :class:`~repro.core.cct.ShardedCallingContextTree` the collector
attributes into the private shard of the *launching* thread: the call path is
inserted into that shard at the launch callback, and because every CCT node
carries a back-reference to its owning tree, asynchronous deliveries
(activity records, instruction samples) are folded into the correct shard
without any lookup — contention-free multi-thread collection.

Correlation lifecycle: an activity record and the instruction-sample batch of
the same correlation ID arrive independently and in either order (the
activity buffer can flush mid-launch, before samples are delivered).  The
collector therefore never frees a correlation on first use: each consumer
marks its share attributed and releases the entry only when the counterpart
delivery has also been seen (or will never come — non-kernel records get no
samples), and ``stop()`` sweeps the remaining tombstones after the final
flush.  This keeps the registry bounded during the run without silently
dropping late samples as "unresolved".
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..dlmonitor.api import DLMonitor
from ..dlmonitor.callpath import gpu_instruction_frame
from ..dlmonitor.domains import DLMONITOR_GPU, PHASE_ENTER, GpuEvent
from ..gpu.activity import ActivityKind, ActivityRecord
from ..gpu.sampling import InstructionSample
from .cct import CallingContextTree, ShardedCallingContextTree
from .config import ProfilerConfig
from .correlation import CorrelationRegistry
from . import metrics as M


class GpuMetricCollector:
    """Collects coarse and fine-grained GPU metrics into the CCT."""

    def __init__(self, monitor: DLMonitor,
                 tree: Union[CallingContextTree, ShardedCallingContextTree],
                 correlations: CorrelationRegistry, config: ProfilerConfig) -> None:
        self.monitor = monitor
        self.tree = tree
        self.correlations = correlations
        self.config = config
        self._sources = config.callpath_sources()
        self._threads = monitor.engine.threads
        #: Kernel correlations whose activity arrived mid-launch (before the
        #: exit-time sample delivery); drained at the next GPU API callback.
        self._awaiting_samples: set = set()
        self._saved_buffer_size: Optional[int] = None
        self._running = False
        self.launches_seen = 0
        self.activities_attributed = 0
        self.samples_attributed = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        buffer_size = int(self.config.activity_buffer_size)
        if buffer_size <= 0:
            raise ValueError("activity_buffer_size must be positive")
        activity = self.monitor.tracing_api.runtime.activity
        self._saved_buffer_size = activity.buffer_size
        activity.buffer_size = buffer_size
        self.monitor.callback_register(DLMONITOR_GPU, self._on_gpu_event)
        self.monitor.tracing_api.activity_register_callbacks(self._on_activity)
        if self.config.pc_sampling:
            self.monitor.tracing_api.enable_pc_sampling(
                self._on_samples, sample_period_us=self.config.pc_sample_period_us)
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        self.monitor.tracing_api.activity_flush_all()
        self.monitor.callback_unregister(DLMONITOR_GPU, self._on_gpu_event)
        if self.config.pc_sampling:
            self.monitor.tracing_api.disable_pc_sampling()
        # Final flush done: free every correlation that was attributed but
        # kept alive for a counterpart delivery that can no longer arrive.
        self._awaiting_samples.clear()
        self.correlations.sweep_attributed()
        if self._saved_buffer_size is not None:
            self.monitor.tracing_api.runtime.activity.buffer_size = self._saved_buffer_size
            self._saved_buffer_size = None
        self._running = False

    # -- shard routing ----------------------------------------------------------

    def _shard_for_tid(self, tid: int) -> CallingContextTree:
        """The launching thread's shard (the tree itself when unsharded)."""
        tree = self.tree
        if not isinstance(tree, ShardedCallingContextTree):
            return tree
        thread = self._threads.find(tid)
        if thread is not None:
            return tree.shard_for(thread)
        return tree.shard_for_tid(tid)

    # -- callbacks ------------------------------------------------------------------

    def _drain_awaiting_samples(self) -> None:
        """Free tombstones whose sample delivery has provably completed.

        Samples are delivered synchronously right after a launch's exit
        callback, so by the time the *next* GPU API callback fires, an entry
        that has exited without its sample flag set received an empty batch
        and will never be completed by the sample path.
        """
        for correlation_id in list(self._awaiting_samples):
            pending = self.correlations.peek(correlation_id)
            if pending is None or pending.samples_attributed or pending.launch_exited:
                if pending is not None:
                    self.correlations.release(correlation_id)
                self._awaiting_samples.discard(correlation_id)

    def _on_gpu_event(self, event: GpuEvent) -> None:
        """Kernel-launch / memcpy / malloc callback on the launching CPU thread."""
        if event.phase != PHASE_ENTER:
            pending = self.correlations.peek(event.correlation_id)
            if pending is not None:
                pending.launch_exited = True
            return
        self._drain_awaiting_samples()
        self.launches_seen += 1
        callpath = self.monitor.callpath_get(sources=self._sources)
        shard = self._shard_for_tid(event.thread_tid)
        node = shard.insert(callpath)
        is_backward = False
        stack = self.monitor.shadow_stacks.for_thread(event.thread_tid)
        top = stack.top()
        if top is not None:
            is_backward = top.is_backward
        self.correlations.register(
            event.correlation_id, node, kernel_name=event.kernel_name,
            api_name=event.api_name, is_backward=is_backward,
        )
        if event.api_name.endswith("Malloc") and event.bytes:
            shard.attribute(node, M.METRIC_ALLOCATED_BYTES, event.bytes)

    def _on_activity(self, records: List[ActivityRecord]) -> None:
        """Asynchronous activity-buffer delivery: attribute device-side metrics.

        All metrics of one record are folded with a single ``attribute_many``
        call — one generation bump per record instead of one tree walk per
        metric as in the eager-propagation model.  Attribution targets the
        owning tree of the launch-site node, i.e. the launching thread's
        shard when collection is sharded.
        """
        for record in records:
            pending = self.correlations.resolve(record.correlation_id)
            if pending is None:
                continue
            node = pending.node
            tree = node.tree if node.tree is not None else self.tree
            expects_samples = False
            if record.kind == ActivityKind.KERNEL:
                expects_samples = self.config.pc_sampling
                metrics = {M.METRIC_GPU_TIME: record.duration, M.METRIC_KERNEL_COUNT: 1.0}
                if self.config.gpu_launch_metrics:
                    metrics[M.METRIC_BLOCKS] = record.grid_size
                    metrics[M.METRIC_THREADS_PER_BLOCK] = record.block_size
                    metrics[M.METRIC_REGISTERS] = record.registers_per_thread
                    metrics[M.METRIC_SHARED_MEMORY] = record.shared_memory_bytes
                tree.attribute_many(node, metrics)
            elif record.kind == ActivityKind.MEMCPY:
                tree.attribute_many(node, {M.METRIC_GPU_TIME: record.duration,
                                           M.METRIC_MEMCPY_BYTES: record.bytes})
            elif record.kind == ActivityKind.MALLOC:
                tree.attribute(node, M.METRIC_ALLOCATED_BYTES, record.bytes)
            self.activities_attributed += 1
            pending.activity_attributed = True
            if (expects_samples and not pending.samples_attributed
                    and not pending.launch_exited):
                # Mid-launch buffer flush: the exit-time sample delivery for
                # this correlation has not happened yet, so keep the entry
                # resolvable; the next GPU API callback drains it if the
                # sample batch turns out empty.
                self._awaiting_samples.add(record.correlation_id)
            else:
                # Samples already attributed, delivered empty (the launch has
                # exited), or never coming — nothing left to wait for.
                self.correlations.release(record.correlation_id)

    def _on_samples(self, samples: List[InstructionSample]) -> None:
        """Fine-grained instruction samples: extend the call path per instruction.

        A batch contains many samples of one correlation, so completed
        correlations are released only after the whole batch is attributed.
        """
        completed = set()
        for sample in samples:
            pending = self.correlations.resolve(sample.correlation_id)
            node = pending.node if pending is not None else None
            if node is None:
                continue
            instruction_node = node.child_for(
                gpu_instruction_frame(sample.kernel_name, sample.pc_offset, sample.stall_reason))
            tree = node.tree if node.tree is not None else self.tree
            metrics = {M.METRIC_INSTRUCTION_SAMPLES: sample.samples}
            if sample.is_stalled:
                metrics[M.METRIC_STALL_SAMPLES] = sample.samples
            tree.attribute_many(instruction_node, metrics)
            self.samples_attributed += 1
            pending.samples_attributed = True
            if pending.activity_attributed:
                completed.add(sample.correlation_id)
        for correlation_id in completed:
            self.correlations.release(correlation_id)
            self._awaiting_samples.discard(correlation_id)
