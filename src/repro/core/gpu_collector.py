"""GPU metric collection.

The collector registers a GPU-domain callback through DLMonitor: at every
kernel launch / memory copy it emits the correlation ID, retrieves the unified
call path, inserts it into the CCT and remembers the association.  Device-side
measurements (kernel durations, launch configurations, instruction samples)
arrive later through asynchronous activity buffers and are linked back to
their nodes through the correlation registry (paper §4.2, "GPU Metrics").
"""

from __future__ import annotations

from typing import List, Optional

from ..dlmonitor.api import DLMonitor
from ..dlmonitor.callpath import gpu_instruction_frame
from ..dlmonitor.domains import DLMONITOR_GPU, PHASE_ENTER, GpuEvent
from ..gpu.activity import ActivityKind, ActivityRecord
from ..gpu.sampling import InstructionSample
from .cct import CallingContextTree
from .config import ProfilerConfig
from .correlation import CorrelationRegistry
from . import metrics as M


class GpuMetricCollector:
    """Collects coarse and fine-grained GPU metrics into the CCT."""

    def __init__(self, monitor: DLMonitor, tree: CallingContextTree,
                 correlations: CorrelationRegistry, config: ProfilerConfig) -> None:
        self.monitor = monitor
        self.tree = tree
        self.correlations = correlations
        self.config = config
        self._sources = config.callpath_sources()
        self._running = False
        self.launches_seen = 0
        self.activities_attributed = 0
        self.samples_attributed = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self.monitor.callback_register(DLMONITOR_GPU, self._on_gpu_event)
        self.monitor.tracing_api.activity_register_callbacks(self._on_activity)
        if self.config.pc_sampling:
            self.monitor.tracing_api.enable_pc_sampling(
                self._on_samples, sample_period_us=self.config.pc_sample_period_us)
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        self.monitor.tracing_api.activity_flush_all()
        self.monitor.callback_unregister(DLMONITOR_GPU, self._on_gpu_event)
        if self.config.pc_sampling:
            self.monitor.tracing_api.disable_pc_sampling()
        self._running = False

    # -- callbacks ------------------------------------------------------------------

    def _on_gpu_event(self, event: GpuEvent) -> None:
        """Kernel-launch / memcpy / malloc callback on the launching CPU thread."""
        if event.phase != PHASE_ENTER:
            return
        self.launches_seen += 1
        callpath = self.monitor.callpath_get(sources=self._sources)
        node = self.tree.insert(callpath)
        is_backward = False
        stack = self.monitor.shadow_stacks.for_thread(event.thread_tid)
        top = stack.top()
        if top is not None:
            is_backward = top.is_backward
        self.correlations.register(
            event.correlation_id, node, kernel_name=event.kernel_name,
            api_name=event.api_name, is_backward=is_backward,
        )
        if event.api_name.endswith("Malloc") and event.bytes:
            self.tree.attribute(node, M.METRIC_ALLOCATED_BYTES, event.bytes)

    def _on_activity(self, records: List[ActivityRecord]) -> None:
        """Asynchronous activity-buffer delivery: attribute device-side metrics.

        All metrics of one record are folded with a single ``attribute_many``
        call — one generation bump per record instead of one tree walk per
        metric as in the eager-propagation model.
        """
        for record in records:
            pending = self.correlations.resolve(record.correlation_id)
            if pending is None:
                continue
            node = pending.node
            if record.kind == ActivityKind.KERNEL:
                metrics = {M.METRIC_GPU_TIME: record.duration, M.METRIC_KERNEL_COUNT: 1.0}
                if self.config.gpu_launch_metrics:
                    metrics[M.METRIC_BLOCKS] = record.grid_size
                    metrics[M.METRIC_THREADS_PER_BLOCK] = record.block_size
                    metrics[M.METRIC_REGISTERS] = record.registers_per_thread
                    metrics[M.METRIC_SHARED_MEMORY] = record.shared_memory_bytes
                self.tree.attribute_many(node, metrics)
            elif record.kind == ActivityKind.MEMCPY:
                self.tree.attribute_many(node, {M.METRIC_GPU_TIME: record.duration,
                                                M.METRIC_MEMCPY_BYTES: record.bytes})
            elif record.kind == ActivityKind.MALLOC:
                self.tree.attribute(node, M.METRIC_ALLOCATED_BYTES, record.bytes)
            self.activities_attributed += 1
            self.correlations.release(record.correlation_id)

    def _on_samples(self, samples: List[InstructionSample]) -> None:
        """Fine-grained instruction samples: extend the call path per instruction."""
        for sample in samples:
            pending = self.correlations.resolve(sample.correlation_id)
            node = pending.node if pending is not None else None
            if node is None:
                continue
            instruction_node = node.child_for(
                gpu_instruction_frame(sample.kernel_name, sample.pc_offset, sample.stall_reason))
            metrics = {M.METRIC_INSTRUCTION_SAMPLES: sample.samples}
            if sample.is_stalled:
                metrics[M.METRIC_STALL_SAMPLES] = sample.samples
            self.tree.attribute_many(instruction_node, metrics)
            self.samples_attributed += 1
