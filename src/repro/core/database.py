"""The profile database.

Everything a profiling session produces: the calling context tree with its
aggregated metrics, run metadata, DLMonitor statistics and (optionally) the
analyzer's findings.  Because metrics are aggregated online the database's
size is bounded by the number of *distinct calling contexts*, not by the
number of iterations — the property the memory-overhead evaluation of
Figure 6(c,d) relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cct import CallingContextTree
from . import metrics as M


@dataclass
class ProfileMetadata:
    """Run-level information stored alongside the CCT."""

    program: str = "program"
    framework: str = "pytorch"
    execution_mode: str = "eager"
    device: str = ""
    vendor: str = ""
    iterations: int = 0
    workload: str = ""
    elapsed_virtual_seconds: float = 0.0
    profiler_wall_seconds: float = 0.0
    config: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "framework": self.framework,
            "execution_mode": self.execution_mode,
            "device": self.device,
            "vendor": self.vendor,
            "iterations": self.iterations,
            "workload": self.workload,
            "elapsed_virtual_seconds": self.elapsed_virtual_seconds,
            "profiler_wall_seconds": self.profiler_wall_seconds,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileMetadata":
        return cls(
            program=str(data.get("program", "program")),
            framework=str(data.get("framework", "pytorch")),
            execution_mode=str(data.get("execution_mode", "eager")),
            device=str(data.get("device", "")),
            vendor=str(data.get("vendor", "")),
            iterations=int(data.get("iterations", 0)),
            workload=str(data.get("workload", "")),
            elapsed_virtual_seconds=float(data.get("elapsed_virtual_seconds", 0.0)),
            profiler_wall_seconds=float(data.get("profiler_wall_seconds", 0.0)),
            config=dict(data.get("config", {})),
        )


class ProfileDatabase:
    """The persistent result of one profiling session."""

    def __init__(self, tree: CallingContextTree,
                 metadata: Optional[ProfileMetadata] = None,
                 dlmonitor_stats: Optional[Dict[str, int]] = None) -> None:
        self.tree = tree
        self.metadata = metadata if metadata is not None else ProfileMetadata()
        self.dlmonitor_stats = dict(dlmonitor_stats or {})
        self.issues: List[Dict[str, object]] = []

    # -- summaries ------------------------------------------------------------------

    def total_gpu_time(self) -> float:
        return self.tree.root.inclusive.sum(M.METRIC_GPU_TIME)

    def total_cpu_time(self) -> float:
        return self.tree.root.inclusive.sum(M.METRIC_CPU_TIME)

    def total_kernel_launches(self) -> int:
        return int(self.tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT))

    def node_count(self) -> int:
        return self.tree.node_count()

    def summary(self) -> Dict[str, float]:
        """The headline numbers printed by the examples and benchmarks."""
        return {
            "gpu_time_seconds": self.total_gpu_time(),
            "cpu_time_seconds": self.total_cpu_time(),
            "kernel_launches": float(self.total_kernel_launches()),
            "cct_nodes": float(self.node_count()),
            "elapsed_virtual_seconds": self.metadata.elapsed_virtual_seconds,
        }

    def top_kernels(self, k: int = 10) -> List[Dict[str, object]]:
        """The ``k`` most expensive kernels aggregated across all contexts."""
        from ..dlmonitor.callpath import FrameKind

        totals = self.tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
        ranked = sorted(totals.items(), key=lambda item: -item[1])[:k]
        total_gpu = self.total_gpu_time() or 1.0
        return [
            {"kernel": name, "gpu_time": value, "fraction": value / total_gpu}
            for name, value in ranked
        ]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the profile (for Figure 6c/d)."""
        return self.tree.approximate_size_bytes() + 2048

    # -- persistence ----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "metadata": self.metadata.as_dict(),
            "dlmonitor_stats": dict(self.dlmonitor_stats),
            "issues": list(self.issues),
            "tree": self.tree.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileDatabase":
        database = cls(
            tree=CallingContextTree.from_dict(data["tree"]),
            metadata=ProfileMetadata.from_dict(data.get("metadata", {})),
            dlmonitor_stats=dict(data.get("dlmonitor_stats", {})),
        )
        database.issues = list(data.get("issues", []))
        return database

    def save(self, path: str) -> str:
        """Serialise to JSON on disk; returns the path written."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        return path

    @classmethod
    def load(cls, path: str) -> "ProfileDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
