"""The profile database.

Everything a profiling session produces: the calling context tree with its
aggregated metrics, run metadata, DLMonitor statistics and (optionally) the
analyzer's findings.  Because metrics are aggregated online the database's
size is bounded by the number of *distinct calling contexts*, not by the
number of iterations — the property the memory-overhead evaluation of
Figure 6(c,d) relies on.

Persistence is delegated to the pluggable storage engine
(:mod:`repro.core.storage`): ``save`` dispatches to a registered backend by
format name, ``load`` sniffs the on-disk format (binary magic bytes, then a
JSON probe) instead of assuming one.  A profile loaded from the mmap-backed
binary format arrives as a ``LazyProfileView`` — the same read API as the
eager trees, decoding shards and metric columns only as queries touch them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from .cct import SHARDED_TREE_FORMAT, CallingContextTree, ShardedCallingContextTree
from . import metrics as M

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from .storage import LazyProfileView

#: Anything that serves the profile-tree read API.
ProfileTree = Union[CallingContextTree, ShardedCallingContextTree,
                    "LazyProfileView"]


@dataclass
class ProfileMetadata:
    """Run-level information stored alongside the CCT."""

    program: str = "program"
    framework: str = "pytorch"
    execution_mode: str = "eager"
    device: str = ""
    vendor: str = ""
    iterations: int = 0
    workload: str = ""
    elapsed_virtual_seconds: float = 0.0
    profiler_wall_seconds: float = 0.0
    config: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "framework": self.framework,
            "execution_mode": self.execution_mode,
            "device": self.device,
            "vendor": self.vendor,
            "iterations": self.iterations,
            "workload": self.workload,
            "elapsed_virtual_seconds": self.elapsed_virtual_seconds,
            "profiler_wall_seconds": self.profiler_wall_seconds,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileMetadata":
        return cls(
            program=str(data.get("program", "program")),
            framework=str(data.get("framework", "pytorch")),
            execution_mode=str(data.get("execution_mode", "eager")),
            device=str(data.get("device", "")),
            vendor=str(data.get("vendor", "")),
            iterations=int(data.get("iterations", 0)),
            workload=str(data.get("workload", "")),
            elapsed_virtual_seconds=float(data.get("elapsed_virtual_seconds", 0.0)),
            profiler_wall_seconds=float(data.get("profiler_wall_seconds", 0.0)),
            config=dict(data.get("config", {})),
        )


class ProfileDatabase:
    """The persistent result of one profiling session."""

    def __init__(self, tree: ProfileTree,
                 metadata: Optional[ProfileMetadata] = None,
                 dlmonitor_stats: Optional[Dict[str, int]] = None) -> None:
        self.tree = tree
        self.metadata = metadata if metadata is not None else ProfileMetadata()
        self.dlmonitor_stats = dict(dlmonitor_stats or {})
        self.issues: List[Dict[str, object]] = []
        self._top_kernels_cache: Optional[Tuple[Tuple, List[Dict[str, object]]]] = None

    # -- summaries ------------------------------------------------------------------

    def total_gpu_time(self) -> float:
        return self.tree.total_metric(M.METRIC_GPU_TIME)

    def total_cpu_time(self) -> float:
        return self.tree.total_metric(M.METRIC_CPU_TIME)

    def total_kernel_launches(self) -> int:
        return int(self.tree.total_metric(M.METRIC_KERNEL_COUNT))

    def node_count(self) -> int:
        return self.tree.node_count()

    def summary(self) -> Dict[str, float]:
        """The headline numbers printed by the examples and benchmarks."""
        return {
            "gpu_time_seconds": self.total_gpu_time(),
            "cpu_time_seconds": self.total_cpu_time(),
            "kernel_launches": float(self.total_kernel_launches()),
            "cct_nodes": float(self.node_count()),
            "elapsed_virtual_seconds": self.metadata.elapsed_virtual_seconds,
        }

    def top_kernels(self, k: int = 10) -> List[Dict[str, object]]:
        """The ``k`` most expensive kernels aggregated across all contexts.

        Memoized behind the tree's generation counter (the same invalidation
        scheme ``approximate_size_bytes`` uses): dashboards and reports call
        this repeatedly between mutations.  On a lazy mmap-backed view this
        decodes only the frame tables plus the GPU-time column — no merged
        tree is materialized.
        """
        from ..dlmonitor.callpath import FrameKind

        key = (getattr(self.tree, "generation", 0), k)
        cached = self._top_kernels_cache
        if cached is not None and cached[0] == key:
            return [dict(row) for row in cached[1]]
        totals = self.tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
        ranked = sorted(totals.items(), key=lambda item: -item[1])[:k]
        total_gpu = self.total_gpu_time() or 1.0
        rows = [
            {"kernel": name, "gpu_time": value, "fraction": value / total_gpu}
            for name, value in ranked
        ]
        self._top_kernels_cache = (key, rows)
        return [dict(row) for row in rows]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the profile (for Figure 6c/d)."""
        return self.tree.approximate_size_bytes() + 2048

    # -- persistence ----------------------------------------------------------------------

    # Canonical storage-backend names (see repro.core.storage); "columnar"
    # remains accepted as a legacy alias for the columnar JSON backend.
    FORMAT_JSON = "json"
    FORMAT_COLUMNAR = "columnar-json"
    FORMAT_BINARY = "cct-binary-v1"

    def to_dict(self, format: str = FORMAT_JSON) -> Dict[str, object]:
        """Plain-dict encoding of the whole profile (JSON-family formats).

        ``format="json"`` nests the tree node by node (the original format);
        ``format="columnar-json"`` stores flat frame/metric columns and omits
        the recomputable inclusive view, which roughly halves the payload.

        A sharded tree keeps one columnar block per shard together with its
        provenance (owning thread id/name/kind) in the columnar format; the
        nested JSON format flattens it to the merged view.
        """
        data: Dict[str, object] = {
            "metadata": self.metadata.as_dict(),
            "dlmonitor_stats": dict(self.dlmonitor_stats),
            "issues": list(self.issues),
        }
        if format in (self.FORMAT_COLUMNAR, "columnar"):
            data["tree_columnar"] = self.tree.to_columnar()
        elif format == self.FORMAT_JSON:
            data["tree"] = self.tree.to_dict()
        else:
            raise ValueError(f"unknown profile dict format {format!r} "
                             f"(binary formats do not have a dict encoding)")
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileDatabase":
        """Rebuild a profile from any encoding (auto-detected).

        Columnar payloads may be single-tree or sharded (per-thread shards
        with provenance); sharded profiles load back as
        :class:`ShardedCallingContextTree` so shard identity survives a
        save/load round-trip.
        """
        tree: Union[CallingContextTree, ShardedCallingContextTree]
        if "tree_columnar" in data:
            payload = data["tree_columnar"]
            if isinstance(payload, dict) and payload.get("format") == SHARDED_TREE_FORMAT:
                tree = ShardedCallingContextTree.from_columnar(payload)
            else:
                tree = CallingContextTree.from_columnar(payload)
        else:
            tree = CallingContextTree.from_dict(data["tree"])
        database = cls(
            tree=tree,
            metadata=ProfileMetadata.from_dict(data.get("metadata", {})),
            dlmonitor_stats=dict(data.get("dlmonitor_stats", {})),
        )
        database.issues = list(data.get("issues", []))
        return database

    def default_format(self) -> str:
        """The format ``save`` uses when none is given: the profiler
        configuration's ``profile_format`` if this profile carries one,
        otherwise the legacy nested JSON format."""
        configured = self.metadata.config.get("profile_format")
        return str(configured) if configured else self.FORMAT_JSON

    def default_compression(self) -> Optional[str]:
        """The per-block compression ``save`` applies when none is given: the
        profiler configuration's ``profile_compression`` if this profile
        carries one, otherwise no compression."""
        configured = self.metadata.config.get("profile_compression")
        return str(configured) if configured else None

    def save(self, path: str, format: Optional[str] = None,
             compression: Optional[str] = None) -> str:
        """Serialise to disk through a storage backend; returns the path.

        ``format`` names a registered backend ("json", "columnar-json",
        "cct-binary-v1", or an alias); ``None`` falls back to
        :meth:`default_format`.  ``compression`` ("zlib") compresses each
        block of the binary format independently — transparent on the lazy
        read path.  An *explicit* compression argument is rejected by the
        JSON backends; the session-wide :meth:`default_compression` only
        applies to backends that support it, so ``profile_compression``
        combined with a JSON ``profile_format`` saves plain JSON instead of
        failing after the run.  Every file loads transparently through
        :meth:`load`, which sniffs the format.  The nested JSON format
        inherits the stdlib encoder's recursion limit (~1000 nesting levels);
        deeper traces must use a flat format.
        """
        from .storage import backend_for

        backend = backend_for(format or self.default_format())
        if compression is None and backend.supports_compression:
            compression = self.default_compression()
        if compression:
            return backend.save(self, path, compression=compression)
        return backend.save(self, path)

    @classmethod
    def load(cls, path: str, format: Optional[str] = None) -> "ProfileDatabase":
        """Load a profile, sniffing the on-disk format.

        The format is detected from the file itself (binary magic bytes,
        then a JSON probe) — never assumed.  Passing ``format`` asserts the
        expectation: a mismatch raises ``ValueError`` naming the *detected*
        format.  Binary profiles come back with a lazily decoded
        ``LazyProfileView`` as ``tree``.
        """
        from .storage import load_profile

        return load_profile(path, expected_format=format)
