"""The profile database.

Everything a profiling session produces: the calling context tree with its
aggregated metrics, run metadata, DLMonitor statistics and (optionally) the
analyzer's findings.  Because metrics are aggregated online the database's
size is bounded by the number of *distinct calling contexts*, not by the
number of iterations — the property the memory-overhead evaluation of
Figure 6(c,d) relies on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .cct import SHARDED_TREE_FORMAT, CallingContextTree, ShardedCallingContextTree
from . import metrics as M


@dataclass
class ProfileMetadata:
    """Run-level information stored alongside the CCT."""

    program: str = "program"
    framework: str = "pytorch"
    execution_mode: str = "eager"
    device: str = ""
    vendor: str = ""
    iterations: int = 0
    workload: str = ""
    elapsed_virtual_seconds: float = 0.0
    profiler_wall_seconds: float = 0.0
    config: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "framework": self.framework,
            "execution_mode": self.execution_mode,
            "device": self.device,
            "vendor": self.vendor,
            "iterations": self.iterations,
            "workload": self.workload,
            "elapsed_virtual_seconds": self.elapsed_virtual_seconds,
            "profiler_wall_seconds": self.profiler_wall_seconds,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileMetadata":
        return cls(
            program=str(data.get("program", "program")),
            framework=str(data.get("framework", "pytorch")),
            execution_mode=str(data.get("execution_mode", "eager")),
            device=str(data.get("device", "")),
            vendor=str(data.get("vendor", "")),
            iterations=int(data.get("iterations", 0)),
            workload=str(data.get("workload", "")),
            elapsed_virtual_seconds=float(data.get("elapsed_virtual_seconds", 0.0)),
            profiler_wall_seconds=float(data.get("profiler_wall_seconds", 0.0)),
            config=dict(data.get("config", {})),
        )


class ProfileDatabase:
    """The persistent result of one profiling session."""

    def __init__(self, tree: Union[CallingContextTree, ShardedCallingContextTree],
                 metadata: Optional[ProfileMetadata] = None,
                 dlmonitor_stats: Optional[Dict[str, int]] = None) -> None:
        self.tree = tree
        self.metadata = metadata if metadata is not None else ProfileMetadata()
        self.dlmonitor_stats = dict(dlmonitor_stats or {})
        self.issues: List[Dict[str, object]] = []

    # -- summaries ------------------------------------------------------------------

    def total_gpu_time(self) -> float:
        return self.tree.root.inclusive.sum(M.METRIC_GPU_TIME)

    def total_cpu_time(self) -> float:
        return self.tree.root.inclusive.sum(M.METRIC_CPU_TIME)

    def total_kernel_launches(self) -> int:
        return int(self.tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT))

    def node_count(self) -> int:
        return self.tree.node_count()

    def summary(self) -> Dict[str, float]:
        """The headline numbers printed by the examples and benchmarks."""
        return {
            "gpu_time_seconds": self.total_gpu_time(),
            "cpu_time_seconds": self.total_cpu_time(),
            "kernel_launches": float(self.total_kernel_launches()),
            "cct_nodes": float(self.node_count()),
            "elapsed_virtual_seconds": self.metadata.elapsed_virtual_seconds,
        }

    def top_kernels(self, k: int = 10) -> List[Dict[str, object]]:
        """The ``k`` most expensive kernels aggregated across all contexts."""
        from ..dlmonitor.callpath import FrameKind

        totals = self.tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
        ranked = sorted(totals.items(), key=lambda item: -item[1])[:k]
        total_gpu = self.total_gpu_time() or 1.0
        return [
            {"kernel": name, "gpu_time": value, "fraction": value / total_gpu}
            for name, value in ranked
        ]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the profile (for Figure 6c/d)."""
        return self.tree.approximate_size_bytes() + 2048

    # -- persistence ----------------------------------------------------------------------

    FORMAT_JSON = "json"
    FORMAT_COLUMNAR = "columnar"

    def to_dict(self, format: str = FORMAT_JSON) -> Dict[str, object]:
        """Plain-dict encoding of the whole profile.

        ``format="json"`` nests the tree node by node (the original format);
        ``format="columnar"`` stores flat frame/metric columns and omits the
        recomputable inclusive view, which roughly halves the payload.

        A sharded tree keeps one columnar block per shard together with its
        provenance (owning thread id/name/kind) in the columnar format; the
        nested JSON format flattens it to the merged view.
        """
        data: Dict[str, object] = {
            "metadata": self.metadata.as_dict(),
            "dlmonitor_stats": dict(self.dlmonitor_stats),
            "issues": list(self.issues),
        }
        if format == self.FORMAT_COLUMNAR:
            data["tree_columnar"] = self.tree.to_columnar()
        elif format == self.FORMAT_JSON:
            data["tree"] = self.tree.to_dict()
        else:
            raise ValueError(f"unknown profile format {format!r}")
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileDatabase":
        """Rebuild a profile from any encoding (auto-detected).

        Columnar payloads may be single-tree or sharded (per-thread shards
        with provenance); sharded profiles load back as
        :class:`ShardedCallingContextTree` so shard identity survives a
        save/load round-trip.
        """
        tree: Union[CallingContextTree, ShardedCallingContextTree]
        if "tree_columnar" in data:
            payload = data["tree_columnar"]
            if isinstance(payload, dict) and payload.get("format") == SHARDED_TREE_FORMAT:
                tree = ShardedCallingContextTree.from_columnar(payload)
            else:
                tree = CallingContextTree.from_columnar(payload)
        else:
            tree = CallingContextTree.from_dict(data["tree"])
        database = cls(
            tree=tree,
            metadata=ProfileMetadata.from_dict(data.get("metadata", {})),
            dlmonitor_stats=dict(data.get("dlmonitor_stats", {})),
        )
        database.issues = list(data.get("issues", []))
        return database

    def save(self, path: str, format: str = FORMAT_JSON) -> str:
        """Serialise to disk as JSON text; returns the path written.

        ``format="columnar"`` selects the compact columnar tree encoding.
        Either file loads transparently through :meth:`load`.  The default
        nested format inherits the stdlib JSON encoder's recursion limit
        (~1000 nesting levels); traces deeper than that must use the flat
        columnar format.
        """
        data = self.to_dict(format=format)
        # Stream into a sibling temp file and rename over the target, so
        # neither an encoding failure (deep nested trees) nor a mid-write
        # crash/disk-full can truncate an existing profile at ``path``.
        temp_path = f"{path}.tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
        except RecursionError:
            os.unlink(temp_path)
            raise ValueError(
                f"trace too deep for the nested {self.FORMAT_JSON!r} encoding "
                f"(stdlib json recursion limit); save with "
                f"format={self.FORMAT_COLUMNAR!r} instead") from None
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        os.replace(temp_path, path)
        return path

    @classmethod
    def load(cls, path: str) -> "ProfileDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
