"""Profiler configuration.

``ProfilerConfig`` controls which call-path sources are integrated, which
metrics are collected and at what granularity — mirroring the knobs the paper
evaluates (with vs without native call paths, coarse vs fine-grained GPU
metrics, CPU sampling on or off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..dlmonitor.integration import CallPathSources


@dataclass
class ProfilerConfig:
    """All user-visible knobs of :class:`repro.core.profiler.DeepContextProfiler`."""

    #: Integrate the Python call path.
    collect_python: bool = True
    #: Integrate framework operator / scope frames.
    collect_framework: bool = True
    #: Integrate native C/C++ frames (the costly option of Figure 6).
    collect_native: bool = True
    #: Intercept GPU APIs and collect GPU metrics.
    collect_gpu: bool = True
    #: Sample CPU_TIME on every thread.
    collect_cpu_time: bool = True
    #: Sample REAL_TIME on the main thread.
    collect_real_time: bool = False
    #: CPU sampling period in seconds.
    cpu_sample_period: float = 0.001
    #: Collect fine-grained instruction samples (stall reasons).
    pc_sampling: bool = False
    #: Instruction-sampling period in microseconds.
    pc_sample_period_us: float = 2.0
    #: Enable DLMonitor's call-path cache.
    callpath_cache: bool = True
    #: Collect into per-thread CCT shards merged lazily at query time
    #: (contention-free attribution); off = one shared tree for every thread.
    sharded_cct: bool = True
    #: Extra coarse GPU metrics (blocks, registers, shared memory, ...).
    gpu_launch_metrics: bool = True
    #: Perf-event counters to collect (names from :mod:`repro.cpu.perf_events`).
    perf_events: List[str] = field(default_factory=list)
    #: Activity-buffer size (records per asynchronous delivery).
    activity_buffer_size: int = 512
    #: Program name stored in profiles and shown at the CCT root.
    program_name: str = "program"
    #: Default on-disk format ``ProfileDatabase.save`` uses for profiles from
    #: this session: any registered storage backend — "json" (legacy nested),
    #: "columnar-json", or the mmap-backed "cct-binary-v1".
    profile_format: str = "json"
    #: Per-block compression for binary profiles ("" = uncompressed, "zlib").
    #: Applies to ``ProfileDatabase.save`` defaults and to streamed
    #: checkpoints alike; the lazy read path is transparent either way.
    profile_compression: str = ""
    #: Stream checkpoints of the live profile to this ``cct-binary-v1`` file
    #: during collection ("" = off).  The file is sealed after every
    #: checkpoint, so a crash loses at most the work since the last seal and
    #: an analyzer can attach to it while the run is still going.
    checkpoint_path: str = ""
    #: Minimum wall-clock seconds between the automatic checkpoints driven by
    #: ``mark_iteration`` (0 = only the initial and closing seals, plus any
    #: explicit ``DeepContextProfiler.checkpoint()`` calls).
    checkpoint_interval_s: float = 0.0
    #: Enable the self-telemetry layer (``repro.obs``) for this session:
    #: ``start()`` turns the process-wide registry on, so the storage /
    #: streaming / fleet seams record counters and spans while the profiler
    #: runs.  Off by default — disabled telemetry costs one attribute check
    #: per instrumented seam (see docs/OBSERVABILITY.md).
    telemetry: bool = False
    #: Write a Chrome ``trace_event`` JSON of the recorded telemetry spans
    #: here at ``stop()`` ("" = no export).  A sibling
    #: ``<trace_path>.metrics.json`` snapshot is written alongside it.
    #: Loads in Perfetto / ``chrome://tracing``.
    trace_path: str = ""

    def callpath_sources(self) -> CallPathSources:
        """The DLMonitor source selection implied by this configuration."""
        return CallPathSources(
            python=self.collect_python,
            framework=self.collect_framework,
            native=self.collect_native,
            gpu=self.collect_gpu,
        )

    @classmethod
    def full(cls) -> "ProfilerConfig":
        """Everything on — the "DeepContext Native" configuration of Figure 6."""
        return cls(collect_native=True, pc_sampling=True)

    @classmethod
    def without_native(cls) -> "ProfilerConfig":
        """The default "DeepContext" configuration of Figure 6 (no C/C++ frames)."""
        return cls(collect_native=False)

    @classmethod
    def coarse(cls) -> "ProfilerConfig":
        """Coarse GPU metrics only, no CPU sampling (minimum overhead)."""
        return cls(collect_native=False, collect_cpu_time=False, pc_sampling=False)
