"""CPU metric collection.

DeepContext registers an interval timer for ``CPU_TIME`` / ``REAL_TIME``; at
every sample it asks DLMonitor for the current call path and attributes the
interval to it (paper §4.2, "CPU Metrics").  Hardware-counter metrics from
perf events / PAPI are derived from the same sampling stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..cpu.perf_events import PerfEventGroup
from ..cpu.sampler import CPU_TIME, REAL_TIME, IntervalSampler, Sample
from ..dlmonitor.api import DLMonitor
from ..framework.eager import EagerEngine
from ..framework.threads import ThreadContext
from .cct import CallingContextTree, ShardedCallingContextTree
from .config import ProfilerConfig
from . import metrics as M


class CpuMetricCollector:
    """Samples CPU_TIME / REAL_TIME on every thread and attributes the intervals.

    With a :class:`~repro.core.cct.ShardedCallingContextTree` each sample is
    attributed into the private shard of the thread whose timer fired, so
    samplers on different threads never touch shared tree state.
    """

    def __init__(self, monitor: DLMonitor,
                 tree: Union[CallingContextTree, ShardedCallingContextTree],
                 engine: EagerEngine, config: ProfilerConfig) -> None:
        self.monitor = monitor
        self.tree = tree
        self.engine = engine
        self.config = config
        self._sources = config.callpath_sources()
        self._samplers: List[IntervalSampler] = []
        self._running = False
        self.samples_attributed = 0
        self.perf_group: Optional[PerfEventGroup] = None
        self._perf_last: Dict[str, float] = {}

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self._running or not self.config.collect_cpu_time:
            self._running = True
            return
        for thread in self.engine.threads:
            self._install_for_thread(thread)
        self.engine.threads.on_thread_created(self._on_thread_created)
        if self.config.collect_real_time:
            sampler = IntervalSampler(self.engine.machine.real_time, REAL_TIME,
                                      self.config.cpu_sample_period)
            sampler.install(lambda sample: self._on_sample(sample, self.engine.threads.main))
            self._samplers.append(sampler)
        if self.config.perf_events:
            self.perf_group = PerfEventGroup()
            for event_name in self.config.perf_events:
                self.perf_group.open(event_name)
            self.perf_group.enable()
        self._running = True

    def stop(self) -> None:
        for sampler in self._samplers:
            sampler.uninstall()
        self._samplers.clear()
        if self.perf_group is not None:
            self.perf_group.disable()
        self._running = False

    # -- internals --------------------------------------------------------------------

    def _install_for_thread(self, thread: ThreadContext) -> None:
        sampler = IntervalSampler(thread.cpu_clock, CPU_TIME, self.config.cpu_sample_period)
        sampler.install(lambda sample, t=thread: self._on_sample(sample, t))
        self._samplers.append(sampler)

    def _on_thread_created(self, thread: ThreadContext) -> None:
        if self._running and self.config.collect_cpu_time:
            self._install_for_thread(thread)

    def _on_sample(self, sample: Sample, thread: ThreadContext) -> None:
        """Timer fired: attribute the elapsed interval to the current call path.

        The timer metric and any perf-event deltas of this sample are folded
        into the leaf with one ``attribute_many`` call.
        """
        callpath = self.monitor.callpath_get(sources=self._sources, thread=thread)
        tree = self.tree
        if isinstance(tree, ShardedCallingContextTree):
            tree = tree.shard_for(thread)
        node = tree.insert(callpath)
        metric = M.METRIC_CPU_TIME if sample.event == CPU_TIME else M.METRIC_REAL_TIME
        metrics = {metric: sample.interval}
        if self.perf_group is not None and sample.event == CPU_TIME:
            self.perf_group.accumulate(sample.interval)
            for name, value in self.perf_group.read_all().items():
                delta = value - self._perf_last.get(name, 0.0)
                self._perf_last[name] = value
                if delta:
                    metrics[f"perf::{name}"] = delta
        tree.attribute_many(node, metrics)
        self.samples_attributed += 1

    @property
    def total_samples(self) -> int:
        return sum(sampler.samples_fired for sampler in self._samplers)
