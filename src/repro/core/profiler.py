"""The DeepContext profiler: session orchestration.

``DeepContextProfiler`` ties the pieces together exactly as Figure 2 of the
paper lays them out: it initialises DLMonitor, registers callbacks for the
framework and GPU domains, attaches the CUPTI/RocTracer activity and sampling
consumers, starts CPU interval sampling, and aggregates every metric online
into a single calling context tree.  Stopping the session flushes outstanding
activity buffers and packages everything into a :class:`ProfileDatabase`.

With ``ProfilerConfig.checkpoint_path`` set the session additionally streams
sealed checkpoints of the live profile to disk (append-then-reseal, see
:mod:`repro.core.streaming`): an initial seal right at ``start()``, automatic
reseals from ``mark_iteration`` every ``checkpoint_interval_s`` wall seconds,
and the closing seal plus compaction at ``stop()`` — so a crash loses at most
the work since the last seal, and an analyzer process can attach to the file
while the run is still going.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Optional

from ..dlmonitor.api import DLMonitor, dlmonitor_init
from ..dlmonitor.domains import DLMONITOR_FRAMEWORK, PHASE_ENTER, FrameworkEvent
from ..framework.eager import EagerEngine
from ..framework.jit import JitCompiler
from .cct import CallingContextTree, ShardedCallingContextTree
from .config import ProfilerConfig
from .correlation import CorrelationRegistry
from .cpu_collector import CpuMetricCollector
from .database import ProfileDatabase, ProfileMetadata
from ..obs import TELEMETRY
from .gpu_collector import GpuMetricCollector
from .streaming import CheckpointStats, StreamingProfileWriter
from . import metrics as M


class DeepContextProfiler:
    """Context-aware, cross-platform, cross-framework profiler (the paper's tool)."""

    def __init__(self, engine: EagerEngine, config: Optional[ProfilerConfig] = None,
                 jit_compiler: Optional[JitCompiler] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ProfilerConfig()
        self.jit_compiler = jit_compiler
        self.monitor: Optional[DLMonitor] = None
        # Sharded collection (the default) gives every simulated thread its
        # own contention-free CCT shard; queries and the profile database see
        # the lazily merged union through the same tree API.
        self.tree = (ShardedCallingContextTree(self.config.program_name)
                     if self.config.sharded_cct
                     else CallingContextTree(self.config.program_name))
        self.correlations = CorrelationRegistry()
        self.gpu_collector: Optional[GpuMetricCollector] = None
        self.cpu_collector: Optional[CpuMetricCollector] = None
        self.stream_writer: Optional[StreamingProfileWriter] = None
        self._last_checkpoint_wall = 0.0
        self._database: Optional[ProfileDatabase] = None
        self._running = False
        self._wall_start = 0.0
        self._wall_seconds = 0.0
        self._virtual_start = 0.0
        self.framework_ops_seen = 0
        self.iterations = 0
        #: Whether this session turned the telemetry registry on (and so is
        #: responsible for turning it off at ``stop()``).  A registry the
        #: caller enabled before ``start()`` is left exactly as found.
        self._owns_telemetry = False

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> "DeepContextProfiler":
        """Begin profiling: install every interception and collector."""
        if self._running:
            return self
        if self.config.telemetry and not TELEMETRY.enabled:
            TELEMETRY.reset()
            TELEMETRY.enable()
            self._owns_telemetry = True
        self._wall_start = time.perf_counter()
        self._virtual_start = self.engine.elapsed_real_time()
        self.monitor = dlmonitor_init(
            self.engine,
            jit_compiler=self.jit_compiler,
            program_name=self.config.program_name,
            enable_callpath_cache=self.config.callpath_cache,
        )
        self.monitor.callback_register(DLMONITOR_FRAMEWORK, self._on_framework_event)
        if self.config.collect_gpu:
            self.gpu_collector = GpuMetricCollector(self.monitor, self.tree,
                                                    self.correlations, self.config)
            self.gpu_collector.start()
        self.cpu_collector = CpuMetricCollector(self.monitor, self.tree, self.engine, self.config)
        self.cpu_collector.start()
        self._running = True
        if self.config.checkpoint_path:
            self.stream_writer = StreamingProfileWriter(
                ProfileDatabase(self.tree, self._metadata_snapshot()),
                self.config.checkpoint_path,
                compression=self.config.profile_compression or None)
            # Seal 0: the file is a valid (empty-ish) profile from the very
            # start, so live attach and crash recovery work immediately.
            self.stream_writer.checkpoint()
            self._last_checkpoint_wall = time.perf_counter()
        return self

    def stop(self) -> ProfileDatabase:
        """End profiling, flush buffers, and build the profile database."""
        if not self._running:
            if self._database is None:
                raise RuntimeError("profiler was never started")
            return self._database
        if self.gpu_collector is not None:
            self.gpu_collector.stop()
        if self.cpu_collector is not None:
            self.cpu_collector.stop()
        assert self.monitor is not None
        stats = self.monitor.stats.as_dict()
        self.monitor.finalize()
        self._wall_seconds = time.perf_counter() - self._wall_start
        self._running = False

        metadata = self._metadata_snapshot()
        if self.stream_writer is not None:
            # The streamed file and the returned database are the same
            # object graph: refresh the provisional metadata, write the
            # closing seal, and compact away superseded checkpoint blocks.
            database = self.stream_writer.database
            database.metadata = metadata
            database.dlmonitor_stats = stats
            self.stream_writer.close(compact=True)
            self._database = database
        else:
            self._database = ProfileDatabase(self.tree, metadata,
                                             dlmonitor_stats=stats)
        if self.config.trace_path and TELEMETRY.enabled:
            TELEMETRY.export_trace(self.config.trace_path)
            TELEMETRY.export_snapshot(f"{self.config.trace_path}.metrics.json")
        if self._owns_telemetry:
            TELEMETRY.disable()
            self._owns_telemetry = False
        return self._database

    @contextlib.contextmanager
    def profile(self):
        """``with profiler.profile(): run_workload()`` convenience wrapper."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def mark_iteration(self) -> None:
        """Record that one training/inference iteration completed.

        Iteration boundaries also drive the automatic streamed checkpoints
        (cheap wall-clock test; a seal only happens when
        ``checkpoint_interval_s`` has elapsed since the last one).
        """
        self.iterations += 1
        self.maybe_checkpoint()

    # -- streamed checkpoints ---------------------------------------------------------

    def maybe_checkpoint(self) -> Optional[CheckpointStats]:
        """Seal a checkpoint if the configured interval has elapsed."""
        if (self.stream_writer is None or not self._running
                or self.config.checkpoint_interval_s <= 0):
            return None
        now = time.perf_counter()
        if now - self._last_checkpoint_wall < self.config.checkpoint_interval_s:
            return None
        return self.checkpoint()

    def checkpoint(self) -> CheckpointStats:
        """Force a streamed checkpoint right now.

        Pending GPU activity buffers are flushed first (the mid-run
        ``activity_flush_all`` the correlation lifecycle already supports),
        so the seal captures kernels whose records were still sitting in a
        partially filled buffer — otherwise a crash would lose everything
        the asynchronous delivery hadn't handed over yet, which on a short
        interval is most of the GPU story.  Metadata is refreshed so live
        attach sees current iteration counts.
        """
        if self.stream_writer is None:
            raise RuntimeError(
                "no streamed checkpointing configured: set "
                "ProfilerConfig.checkpoint_path before start()")
        if (self._running and self.gpu_collector is not None
                and self.monitor is not None):
            self.monitor.tracing_api.activity_flush_all()
        database = self.stream_writer.database
        database.metadata = self._metadata_snapshot()
        if self.monitor is not None:
            database.dlmonitor_stats = self.monitor.stats.as_dict()
        stats = self.stream_writer.checkpoint()
        self._last_checkpoint_wall = time.perf_counter()
        return stats

    @property
    def checkpoints_written(self) -> int:
        return self.stream_writer.checkpoints if self.stream_writer else 0

    # -- results --------------------------------------------------------------------------

    @property
    def database(self) -> ProfileDatabase:
        if self._database is None:
            raise RuntimeError("profiling session has not been stopped yet")
        return self._database

    @property
    def running(self) -> bool:
        return self._running

    def overhead_statistics(self) -> Dict[str, float]:
        """Profiler-side bookkeeping used by the Figure-6 overhead harness."""
        tree = self.tree
        if isinstance(tree, ShardedCallingContextTree):
            # Collection-side numbers: probing must not force a merged-view
            # materialization mid-run (it would be O(total nodes) per probe
            # and would then show up in the very footprint being reported).
            stats: Dict[str, float] = {
                "profiler_wall_seconds": self._wall_seconds,
                "cct_nodes": float(tree.stored_node_count()),
                "cct_size_bytes": float(tree.stored_size_bytes()),
                "cct_shards": float(tree.shard_count()),
            }
        else:
            stats = {
                "profiler_wall_seconds": self._wall_seconds,
                "cct_nodes": float(tree.node_count()),
                "cct_size_bytes": float(tree.approximate_size_bytes()),
            }
        if self.monitor is not None:
            stats["cache_hit_rate"] = self.monitor.cache.hit_rate
            stats["unwind_steps"] = float(self.monitor.unwinder.steps)
        if self.stream_writer is not None:
            stats["profile_checkpoints"] = float(self.stream_writer.checkpoints)
        return stats

    # -- internals -----------------------------------------------------------------------------

    def _metadata_snapshot(self) -> ProfileMetadata:
        """Current run metadata (streamed seals carry a live snapshot)."""
        wall = (time.perf_counter() - self._wall_start if self._running
                else self._wall_seconds)
        return ProfileMetadata(
            program=self.config.program_name,
            framework=self.engine.framework_name,
            execution_mode=self.engine.execution_mode,
            device=self.engine.device.name,
            vendor=self.engine.device.vendor,
            iterations=self.iterations,
            elapsed_virtual_seconds=self.engine.elapsed_real_time() - self._virtual_start,
            profiler_wall_seconds=wall,
            config=self._config_snapshot(),
        )

    def _on_framework_event(self, event: FrameworkEvent) -> None:
        """Framework-domain callback: count operator invocations per context."""
        if event.phase != PHASE_ENTER or event.kind != "operator":
            return
        self.framework_ops_seen += 1

    def _config_snapshot(self) -> Dict[str, object]:
        return {
            "collect_python": self.config.collect_python,
            "collect_framework": self.config.collect_framework,
            "collect_native": self.config.collect_native,
            "collect_gpu": self.config.collect_gpu,
            "collect_cpu_time": self.config.collect_cpu_time,
            "cpu_sample_period": self.config.cpu_sample_period,
            "pc_sampling": self.config.pc_sampling,
            "callpath_cache": self.config.callpath_cache,
            "sharded_cct": self.config.sharded_cct,
            "profile_format": self.config.profile_format,
            "profile_compression": self.config.profile_compression,
            "checkpoint_interval_s": self.config.checkpoint_interval_s,
        }
