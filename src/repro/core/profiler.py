"""The DeepContext profiler: session orchestration.

``DeepContextProfiler`` ties the pieces together exactly as Figure 2 of the
paper lays them out: it initialises DLMonitor, registers callbacks for the
framework and GPU domains, attaches the CUPTI/RocTracer activity and sampling
consumers, starts CPU interval sampling, and aggregates every metric online
into a single calling context tree.  Stopping the session flushes outstanding
activity buffers and packages everything into a :class:`ProfileDatabase`.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Optional

from ..dlmonitor.api import DLMonitor, dlmonitor_init
from ..dlmonitor.domains import DLMONITOR_FRAMEWORK, PHASE_ENTER, FrameworkEvent
from ..framework.eager import EagerEngine
from ..framework.jit import JitCompiler
from .cct import CallingContextTree, ShardedCallingContextTree
from .config import ProfilerConfig
from .correlation import CorrelationRegistry
from .cpu_collector import CpuMetricCollector
from .database import ProfileDatabase, ProfileMetadata
from .gpu_collector import GpuMetricCollector
from . import metrics as M


class DeepContextProfiler:
    """Context-aware, cross-platform, cross-framework profiler (the paper's tool)."""

    def __init__(self, engine: EagerEngine, config: Optional[ProfilerConfig] = None,
                 jit_compiler: Optional[JitCompiler] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ProfilerConfig()
        self.jit_compiler = jit_compiler
        self.monitor: Optional[DLMonitor] = None
        # Sharded collection (the default) gives every simulated thread its
        # own contention-free CCT shard; queries and the profile database see
        # the lazily merged union through the same tree API.
        self.tree = (ShardedCallingContextTree(self.config.program_name)
                     if self.config.sharded_cct
                     else CallingContextTree(self.config.program_name))
        self.correlations = CorrelationRegistry()
        self.gpu_collector: Optional[GpuMetricCollector] = None
        self.cpu_collector: Optional[CpuMetricCollector] = None
        self._database: Optional[ProfileDatabase] = None
        self._running = False
        self._wall_start = 0.0
        self._wall_seconds = 0.0
        self._virtual_start = 0.0
        self.framework_ops_seen = 0
        self.iterations = 0

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> "DeepContextProfiler":
        """Begin profiling: install every interception and collector."""
        if self._running:
            return self
        self._wall_start = time.perf_counter()
        self._virtual_start = self.engine.elapsed_real_time()
        self.monitor = dlmonitor_init(
            self.engine,
            jit_compiler=self.jit_compiler,
            program_name=self.config.program_name,
            enable_callpath_cache=self.config.callpath_cache,
        )
        self.monitor.callback_register(DLMONITOR_FRAMEWORK, self._on_framework_event)
        if self.config.collect_gpu:
            self.gpu_collector = GpuMetricCollector(self.monitor, self.tree,
                                                    self.correlations, self.config)
            self.gpu_collector.start()
        self.cpu_collector = CpuMetricCollector(self.monitor, self.tree, self.engine, self.config)
        self.cpu_collector.start()
        self._running = True
        return self

    def stop(self) -> ProfileDatabase:
        """End profiling, flush buffers, and build the profile database."""
        if not self._running:
            if self._database is None:
                raise RuntimeError("profiler was never started")
            return self._database
        if self.gpu_collector is not None:
            self.gpu_collector.stop()
        if self.cpu_collector is not None:
            self.cpu_collector.stop()
        assert self.monitor is not None
        stats = self.monitor.stats.as_dict()
        self.monitor.finalize()
        self._wall_seconds = time.perf_counter() - self._wall_start
        self._running = False

        metadata = ProfileMetadata(
            program=self.config.program_name,
            framework=self.engine.framework_name,
            execution_mode=self.engine.execution_mode,
            device=self.engine.device.name,
            vendor=self.engine.device.vendor,
            iterations=self.iterations,
            elapsed_virtual_seconds=self.engine.elapsed_real_time() - self._virtual_start,
            profiler_wall_seconds=self._wall_seconds,
            config=self._config_snapshot(),
        )
        self._database = ProfileDatabase(self.tree, metadata, dlmonitor_stats=stats)
        return self._database

    @contextlib.contextmanager
    def profile(self):
        """``with profiler.profile(): run_workload()`` convenience wrapper."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def mark_iteration(self) -> None:
        """Record that one training/inference iteration completed."""
        self.iterations += 1

    # -- results --------------------------------------------------------------------------

    @property
    def database(self) -> ProfileDatabase:
        if self._database is None:
            raise RuntimeError("profiling session has not been stopped yet")
        return self._database

    @property
    def running(self) -> bool:
        return self._running

    def overhead_statistics(self) -> Dict[str, float]:
        """Profiler-side bookkeeping used by the Figure-6 overhead harness."""
        tree = self.tree
        if isinstance(tree, ShardedCallingContextTree):
            # Collection-side numbers: probing must not force a merged-view
            # materialization mid-run (it would be O(total nodes) per probe
            # and would then show up in the very footprint being reported).
            stats: Dict[str, float] = {
                "profiler_wall_seconds": self._wall_seconds,
                "cct_nodes": float(tree.stored_node_count()),
                "cct_size_bytes": float(tree.stored_size_bytes()),
                "cct_shards": float(tree.shard_count()),
            }
        else:
            stats = {
                "profiler_wall_seconds": self._wall_seconds,
                "cct_nodes": float(tree.node_count()),
                "cct_size_bytes": float(tree.approximate_size_bytes()),
            }
        if self.monitor is not None:
            stats["cache_hit_rate"] = self.monitor.cache.hit_rate
            stats["unwind_steps"] = float(self.monitor.unwinder.steps)
        return stats

    # -- internals -----------------------------------------------------------------------------

    def _on_framework_event(self, event: FrameworkEvent) -> None:
        """Framework-domain callback: count operator invocations per context."""
        if event.phase != PHASE_ENTER or event.kind != "operator":
            return
        self.framework_ops_seen += 1

    def _config_snapshot(self) -> Dict[str, object]:
        return {
            "collect_python": self.config.collect_python,
            "collect_framework": self.config.collect_framework,
            "collect_native": self.config.collect_native,
            "collect_gpu": self.config.collect_gpu,
            "collect_cpu_time": self.config.collect_cpu_time,
            "cpu_sample_period": self.config.cpu_sample_period,
            "pc_sampling": self.config.pc_sampling,
            "callpath_cache": self.config.callpath_cache,
            "sharded_cct": self.config.sharded_cct,
            "profile_format": self.config.profile_format,
        }
