"""Analysis 1 — hotspot identification.

Flags every GPU kernel (and, one level up, every operator/scope) whose share
of total GPU time exceeds a threshold, and returns their call paths.  The GUI
highlights these call paths in both flame-graph views; several other analyses
(e.g. fine-grained stalls) start from this one's results.
"""

from __future__ import annotations

from typing import List

from ..core import metrics as M
from ..core.cct import CallingContextTree, CCTNode
from .base import Analysis
from .issues import Issue, IssueCollector, Severity


class HotspotAnalysis(Analysis):
    """``n.time / total_time > hotspot_threshold`` over kernel nodes."""

    name = "hotspot"
    client_id = 1
    description = "Kernels and operators consuming a large share of total GPU time"

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        threshold = self.threshold("hotspot_threshold", 0.10)
        total_time = tree.root.inclusive.sum(M.METRIC_GPU_TIME)
        if total_time <= 0:
            return []
        issues: List[Issue] = []
        for node in tree.kernels:
            fraction = node.inclusive.sum(M.METRIC_GPU_TIME) / total_time
            if fraction > threshold:
                issues.append(collector.flag(
                    analysis=self.name,
                    node=node,
                    message=(f"kernel takes {fraction:.1%} of total GPU time "
                             f"({node.inclusive.sum(M.METRIC_GPU_TIME):.4f}s)"),
                    severity=Severity.CRITICAL if fraction > 2 * threshold else Severity.WARNING,
                    suggestion="inspect the highlighted call path; consider algorithmic or "
                               "kernel-level optimisation of this hotspot",
                    metrics={"gpu_time": node.inclusive.sum(M.METRIC_GPU_TIME),
                             "fraction": fraction},
                ))
        return issues

    def hotspots(self, tree: CallingContextTree) -> List[CCTNode]:
        """Just the hotspot kernel nodes (used by the stall analysis)."""
        return [issue.node for issue in self.analyze(tree) if issue.node is not None]
