"""Surfacing fleet durability events — quarantines, degraded queries — as Issues.

The analyzer's :class:`Issue` stream is where operators already look for
"something is wrong with this run", so store-level durability events land in
the same stream: a run quarantined by ``ProfileStore.scrub`` (or demoted
mid-query by a :class:`~repro.fleet.aggregate.FleetAggregator`) becomes a
WARNING issue naming the run, the workload and the precise corruption, and a
fleet query that had to proceed without some of its runs reports each of
them.  Unlike the tree analyses these functions take the store/aggregator
state directly — there is no tree to walk when the problem is a rotten file
— which is why they are free functions rather than ``Analysis`` subclasses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping

from .issues import Issue, Severity
from .report import AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..fleet.store import ProfileStore

#: The ``Issue.analysis`` name durability events are filed under.
ANALYSIS_STORE_DURABILITY = "store_durability"

_SUGGESTION = ("restore the profile file from a replica and re-run "
               "ProfileStore.scrub() to lift the quarantine, or remove() the "
               "run if its bytes are gone for good")


def quarantine_issues(store: "ProfileStore") -> List[Issue]:
    """One WARNING issue per quarantined run in the store's catalog."""
    issues: List[Issue] = []
    for record in store.quarantined():
        issues.append(Issue(
            analysis=ANALYSIS_STORE_DURABILITY,
            node=None,
            message=(f"run {record.run_id} (workload {record.workload!r}) is "
                     f"quarantined: {record.quarantine_reason}"),
            severity=Severity.WARNING,
            suggestion=_SUGGESTION,
            metrics={"quarantined_at": record.quarantined_at},
        ))
    return issues


def degradation_issues(report: Mapping) -> List[Issue]:
    """Issues for a :meth:`FleetAggregator.degradation_report` mapping.

    Empty when the report says ``degraded: False`` — a clean fleet query
    files nothing.
    """
    issues: List[Issue] = []
    for entry in report.get("degraded_runs", []):
        issues.append(Issue(
            analysis=ANALYSIS_STORE_DURABILITY,
            node=None,
            message=(f"fleet query proceeded without run "
                     f"{entry.get('run_id')} (dropped at the "
                     f"{entry.get('stage')} stage): {entry.get('reason')}"),
            severity=Severity.WARNING,
            suggestion=_SUGGESTION,
        ))
    return issues


def attach_issues(report: AnalysisReport, issues: List[Issue]) -> AnalysisReport:
    """Fold durability issues into an existing analyzer report (in place)."""
    for issue in issues:
        report.issues.append(issue)
        report.per_analysis.setdefault(issue.analysis, []).append(issue)
    return report
