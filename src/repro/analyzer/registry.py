"""The automated performance analyzer: runs analyses and produces reports."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..core.cct import CallingContextTree
from ..core.database import ProfileDatabase
from .base import Analysis
from .cpu_latency import CpuLatencyAnalysis
from .forward_backward import ForwardBackwardAnalysis
from .hotspot import HotspotAnalysis
from .issues import Issue, IssueCollector
from .kernel_fusion import KernelFusionAnalysis
from .report import AnalysisReport
from .stalls import StallAnalysis

#: The example analyses of paper §4.3, in client-ID order.
DEFAULT_ANALYSES: Sequence[Type[Analysis]] = (
    HotspotAnalysis,
    KernelFusionAnalysis,
    ForwardBackwardAnalysis,
    StallAnalysis,
    CpuLatencyAnalysis,
)


class PerformanceAnalyzer:
    """Runs a configurable set of analyses over a profile."""

    def __init__(self, analyses: Optional[Sequence[Analysis]] = None,
                 thresholds: Optional[Dict[str, Dict[str, float]]] = None) -> None:
        thresholds = thresholds or {}
        if analyses is None:
            analyses = [cls(**thresholds.get(cls.name, {})) for cls in DEFAULT_ANALYSES]
        self._analyses: List[Analysis] = list(analyses)

    # -- configuration ------------------------------------------------------------

    def register(self, analysis: Analysis) -> None:
        """Add a custom user analysis (the paper's flexible analysis API)."""
        self._analyses.append(analysis)

    def remove(self, name: str) -> None:
        self._analyses = [analysis for analysis in self._analyses if analysis.name != name]

    @property
    def analyses(self) -> List[Analysis]:
        return list(self._analyses)

    def analysis(self, name: str) -> Analysis:
        for analysis in self._analyses:
            if analysis.name == name:
                return analysis
        raise KeyError(f"no analysis named {name!r}")

    # -- execution ------------------------------------------------------------------

    def analyze_tree(self, tree: CallingContextTree) -> AnalysisReport:
        collector = IssueCollector()
        per_analysis: Dict[str, List[Issue]] = {}
        for analysis in self._analyses:
            before = len(collector)
            analysis.run(tree, collector)
            per_analysis[analysis.name] = collector.issues[before:]
        return AnalysisReport(issues=collector.issues, per_analysis=per_analysis)

    def analyze(self, database: ProfileDatabase) -> AnalysisReport:
        """Analyze a profile database and attach the findings to it."""
        report = self.analyze_tree(database.tree)
        database.issues = [issue.as_dict() for issue in report.issues]
        return report
