"""Call-path search and pattern matching over the calling context tree.

The paper's analysis API is organised around three steps: *call path search*
(traverse the CCT and match semantic nodes or structural patterns), *metrics
analysis* (query and filter the metric data of matched nodes) and
*visualization* (flag issues for the GUI).  This module implements the first
two as a small query layer usable both by the bundled analyses and by custom
user analyses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.cct import CallingContextTree, CCTNode, ShardedCallingContextTree
from ..dlmonitor.callpath import FrameKind

# Semantic node categories the call-path search recognises.
SEMANTIC_FORWARD = "forward"
SEMANTIC_BACKWARD = "backward"
SEMANTIC_LOSS = "loss"
SEMANTIC_OPTIMIZER = "optimizer"
SEMANTIC_DATA = "data"
SEMANTIC_MEMCPY = "memcpy"
SEMANTIC_EVALUATION = "evaluation"

_LOSS_PATTERN = re.compile(r"loss|nll|cross_entropy|mse", re.IGNORECASE)
_OPTIMIZER_PATTERN = re.compile(r"optim|sgd|adam|zero_grad", re.IGNORECASE)
_DATA_PATTERN = re.compile(r"data_selection|dataloader|data_load|input_pipeline", re.IGNORECASE)
_MEMCPY_PATTERN = re.compile(r"memcpy", re.IGNORECASE)
_EVAL_PATTERN = re.compile(r"eval|validation|inference", re.IGNORECASE)


def semantic_of(node: CCTNode) -> List[str]:
    """The semantic categories a CCT node belongs to.

    Categories depend only on the node's immutable frame, so they are memoized
    on the frame itself (frames are interned during live profiling, so many
    nodes share one cache entry) — analyzers call this for every node of every
    query, and the regex battery dominated their runtime before caching.
    """
    frame = node.frame
    cached = frame.__dict__.get("_semantic") if hasattr(frame, "__dict__") else None
    if cached is not None:
        return list(cached)  # fresh list: callers must not mutate the cache
    categories: List[str] = []
    name = frame.name
    if node.kind == FrameKind.FRAMEWORK:
        categories.append(SEMANTIC_BACKWARD if frame.tag == "backward" else SEMANTIC_FORWARD)
    if _LOSS_PATTERN.search(name):
        categories.append(SEMANTIC_LOSS)
    if _OPTIMIZER_PATTERN.search(name):
        categories.append(SEMANTIC_OPTIMIZER)
    if _DATA_PATTERN.search(name):
        categories.append(SEMANTIC_DATA)
    if _MEMCPY_PATTERN.search(name):
        categories.append(SEMANTIC_MEMCPY)
    if _EVAL_PATTERN.search(name):
        categories.append(SEMANTIC_EVALUATION)
    try:
        object.__setattr__(frame, "_semantic", tuple(categories))
    except (AttributeError, TypeError):
        pass  # duck-typed frames without a __dict__
    return categories


@dataclass(frozen=True)
class CallPathPattern:
    """A declarative pattern matched against CCT nodes.

    All specified constraints must hold: frame kind, a regular expression on
    the frame name or file, a semantic category, a metric threshold, and an
    optional constraint on an ancestor (``within``) to express "a kernel under
    ``loss_fn``"-style structural patterns.

    Patterns are immutable: the regexes are compiled once at construction, so
    derive variants with ``dataclasses.replace`` instead of assignment.
    """

    kind: Optional[FrameKind] = None
    name_regex: Optional[str] = None
    file_regex: Optional[str] = None
    semantic: Optional[str] = None
    min_metric: Dict[str, float] = field(default_factory=dict)
    within: Optional["CallPathPattern"] = None

    def __post_init__(self) -> None:
        # Own copy of the threshold dict so dataclasses.replace-derived
        # variants don't share (and mutate) one mapping.
        object.__setattr__(self, "min_metric", dict(self.min_metric))
        # Regexes are compiled once per pattern, not once per matched node.
        object.__setattr__(self, "_name_re",
                           re.compile(self.name_regex) if self.name_regex is not None else None)
        object.__setattr__(self, "_file_re",
                           re.compile(self.file_regex) if self.file_regex is not None else None)

    def matches(self, node: CCTNode) -> bool:
        if self.kind is not None and node.kind != self.kind:
            return False
        if self._name_re is not None and not self._name_re.search(node.frame.name):
            return False
        if self._file_re is not None and not self._file_re.search(node.frame.file or ""):
            return False
        if self.semantic is not None and self.semantic not in semantic_of(node):
            return False
        for metric, threshold in self.min_metric.items():
            if node.inclusive.sum(metric) < threshold:
                return False
        if self.within is not None:
            if not any(self.within.matches(ancestor) for ancestor in node.ancestors()):
                return False
        return True


class CCTQuery:
    """Fluent query interface over a calling context tree.

    Accepts a plain :class:`CallingContextTree`, a
    :class:`ShardedCallingContextTree`, or a lazily decoded profile view from
    the mmap-backed storage engine — anything exposing ``merged()`` is
    resolved to its queryable union tree, re-read through ``self.tree`` per
    query, so results stay current after further attribution without the
    caller ever handling shards or decode state.
    """

    def __init__(self, tree: Union[CallingContextTree, ShardedCallingContextTree]) -> None:
        self._tree = tree

    @property
    def tree(self) -> CallingContextTree:
        """The queryable tree (a sharded tree's or lazy view's merged union)."""
        tree = self._tree
        merged = getattr(tree, "merged", None)
        if merged is not None:
            return merged()
        return tree

    # -- structural search ----------------------------------------------------------

    def match(self, pattern: CallPathPattern) -> List[CCTNode]:
        """All nodes matching a declarative pattern.

        A pattern with a frame kind is evaluated against that kind's index
        instead of scanning the whole tree.
        """
        if pattern.kind is not None:
            candidates = self.tree.nodes_of_kind(pattern.kind)
        else:
            candidates = self.tree.all_nodes()
        return [node for node in candidates if pattern.matches(node)]

    def find(self, predicate: Callable[[CCTNode], bool]) -> List[CCTNode]:
        return self.tree.find(predicate)

    def kernels(self) -> List[CCTNode]:
        return self.tree.kernels

    def operators(self) -> List[CCTNode]:
        return self.tree.operators

    def scopes(self, name_regex: Optional[str] = None) -> List[CCTNode]:
        nodes = self.tree.scopes
        if name_regex is None:
            return nodes
        compiled = re.compile(name_regex)
        return [node for node in nodes if compiled.search(node.frame.name)]

    def semantic_nodes(self, category: str) -> List[CCTNode]:
        """Nodes belonging to a semantic category (loss, optimizer, data, ...)."""
        return [node for node in self.tree.all_nodes() if category in semantic_of(node)]

    def python_frames(self, file_regex: Optional[str] = None) -> List[CCTNode]:
        nodes = self.tree.nodes_of_kind(FrameKind.PYTHON)
        if file_regex is None:
            return nodes
        compiled = re.compile(file_regex)
        return [node for node in nodes if compiled.search(node.frame.file or "")]

    # -- metric helpers --------------------------------------------------------------

    def total(self, metric: str) -> float:
        return self.tree.root.inclusive.sum(metric)

    def top_by_metric(self, nodes: Sequence[CCTNode], metric: str, k: int = 10,
                      inclusive: bool = True) -> List[CCTNode]:
        def value(node: CCTNode) -> float:
            metric_set = node.inclusive if inclusive else node.exclusive
            return metric_set.sum(metric)

        return sorted(nodes, key=value, reverse=True)[:k]

    def fraction_of_total(self, node: CCTNode, metric: str) -> float:
        total = self.total(metric)
        return node.inclusive.sum(metric) / total if total else 0.0

    def aggregate_kernels_by_name(self, metric: str = "gpu_time") -> Dict[str, float]:
        return self.tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=metric)
