"""Issue model for the automated performance analyzer.

Every analysis flags :class:`Issue` objects: a node in the calling context
tree, a severity, a human-readable message and an optimisation suggestion.
The GUI colour-codes issues; EXPERIMENTS.md and the case-study benchmarks read
them programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..core.cct import CCTNode


class Severity(Enum):
    """How urgent an issue is (drives GUI colour coding)."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass
class Issue:
    """One flagged performance problem."""

    analysis: str
    node: Optional[CCTNode]
    message: str
    severity: Severity = Severity.WARNING
    suggestion: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def node_name(self) -> str:
        return self.node.frame.label() if self.node is not None else "<program>"

    def as_dict(self) -> Dict[str, object]:
        return {
            "analysis": self.analysis,
            "node": self.node_name,
            "severity": self.severity.value,
            "message": self.message,
            "suggestion": self.suggestion,
            "metrics": dict(self.metrics),
        }

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.analysis}: {self.node_name} — {self.message}"


class IssueCollector:
    """Accumulates issues during an analysis run."""

    def __init__(self) -> None:
        self._issues: List[Issue] = []

    def flag(self, analysis: str, node: Optional[CCTNode], message: str,
             severity: Severity = Severity.WARNING, suggestion: str = "",
             metrics: Optional[Dict[str, float]] = None) -> Issue:
        issue = Issue(analysis=analysis, node=node, message=message, severity=severity,
                      suggestion=suggestion, metrics=dict(metrics or {}))
        self._issues.append(issue)
        return issue

    @property
    def issues(self) -> List[Issue]:
        return list(self._issues)

    def by_analysis(self, analysis: str) -> List[Issue]:
        return [issue for issue in self._issues if issue.analysis == analysis]

    def by_severity(self, severity: Severity) -> List[Issue]:
        return [issue for issue in self._issues if issue.severity == severity]

    def __len__(self) -> int:
        return len(self._issues)

    def __iter__(self):
        return iter(self._issues)
