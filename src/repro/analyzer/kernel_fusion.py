"""Analysis 2 — kernel fusion opportunities.

Detects frames that launch many kernels whose average GPU execution time is
small: the fixed launch and scheduling overhead dominates, and fusing the
kernels (e.g. with ``torch.compile`` or by hand, as in case study 6.3) would
recover the time.  Register usage of the involved kernels is reported so users
can judge whether fusion risks register pressure.
"""

from __future__ import annotations

from typing import List

from ..core import metrics as M
from ..core.cct import CallingContextTree
from ..dlmonitor.callpath import FrameKind
from .base import Analysis
from .issues import Issue, IssueCollector, Severity


class KernelFusionAnalysis(Analysis):
    """``n.gpu_time / n.count < gpu_threshold`` over frames with many kernels."""

    name = "kernel_fusion"
    client_id = 2
    description = "Frames launching many small kernels that could be fused"

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        gpu_threshold = self.threshold("gpu_threshold_seconds", 50e-6)
        min_kernels = int(self.threshold("min_kernels", 3))
        issues: List[Issue] = []
        for node in tree.bfs():
            if node.kind not in (FrameKind.FRAMEWORK, FrameKind.PYTHON):
                continue
            count = node.inclusive.sum(M.METRIC_KERNEL_COUNT)
            if count < min_kernels:
                continue
            gpu_time = node.inclusive.sum(M.METRIC_GPU_TIME)
            mean_kernel_time = gpu_time / count if count else 0.0
            if mean_kernel_time >= gpu_threshold:
                continue
            # Avoid flagging every ancestor of the same small-kernel region:
            # only flag nodes none of whose ancestors already qualified.
            if any(self._qualifies(a, gpu_threshold, min_kernels) for a in node.ancestors()):
                continue
            registers = node.inclusive.get(M.METRIC_REGISTERS)
            mean_registers = registers.mean if registers is not None else 0.0
            issues.append(collector.flag(
                analysis=self.name,
                node=node,
                message=(f"Small GPU kernels: {int(count)} launches averaging "
                         f"{mean_kernel_time * 1e6:.1f} us of GPU time each"),
                severity=Severity.WARNING,
                suggestion="fuse these kernels (torch.compile / manual fusion); "
                           f"mean register usage is {mean_registers:.0f} per thread, "
                           "so fusion is unlikely to hurt occupancy"
                           if mean_registers < 64 else
                           "fuse with care: register usage is already high",
                metrics={"kernel_count": count, "gpu_time": gpu_time,
                         "mean_kernel_seconds": mean_kernel_time,
                         "mean_registers": mean_registers},
            ))
        return issues

    @staticmethod
    def _qualifies(node, gpu_threshold: float, min_kernels: int) -> bool:
        if node.kind not in (FrameKind.FRAMEWORK, FrameKind.PYTHON):
            return False
        count = node.inclusive.sum(M.METRIC_KERNEL_COUNT)
        if count < min_kernels:
            return False
        gpu_time = node.inclusive.sum(M.METRIC_GPU_TIME)
        return (gpu_time / count if count else 0.0) < gpu_threshold
