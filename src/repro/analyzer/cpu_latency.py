"""Analysis 5 — CPU latency analysis.

Walks the calling context tree top-down looking for frames whose CPU time is
much higher than their GPU time: the GPU is idle while the CPU does work,
which usually indicates input-pipeline bottlenecks, over-subscribed worker
threads (case study 6.4) or synchronization problems.
"""

from __future__ import annotations

from typing import List

from ..core import metrics as M
from ..core.cct import CallingContextTree
from ..dlmonitor.callpath import FrameKind
from .base import Analysis
from .issues import Issue, IssueCollector, Severity


class CpuLatencyAnalysis(Analysis):
    """``n.cpu_time / n.gpu_time > cpu_threshold`` over frames, top-down."""

    name = "cpu_latency"
    client_id = 5
    description = "Frames where the CPU dominates and the GPU sits idle"

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        cpu_threshold = self.threshold("cpu_threshold", 3.0)
        min_cpu_seconds = self.threshold("min_cpu_seconds", 0.05)
        issues: List[Issue] = []
        flagged_ids = set()
        for node in tree.bfs():
            if node.kind not in (FrameKind.PYTHON, FrameKind.FRAMEWORK, FrameKind.THREAD):
                continue
            if any(ancestor.node_id in flagged_ids for ancestor in node.ancestors()):
                continue  # report only the outermost offending frame
            cpu_time = node.inclusive.sum(M.METRIC_CPU_TIME)
            if cpu_time < min_cpu_seconds:
                continue
            gpu_time = node.inclusive.sum(M.METRIC_GPU_TIME)
            ratio = cpu_time / gpu_time if gpu_time > 0 else float("inf")
            if ratio <= cpu_threshold:
                continue
            flagged_ids.add(node.node_id)
            total_cpu = tree.root.inclusive.sum(M.METRIC_CPU_TIME) or cpu_time
            issues.append(collector.flag(
                analysis=self.name,
                node=node,
                message=(f"CPU time abnormality: {cpu_time:.3f}s of CPU time "
                         f"({cpu_time / total_cpu:.0%} of total) vs {gpu_time:.3f}s of GPU time"),
                severity=Severity.WARNING if ratio < 10 else Severity.CRITICAL,
                suggestion="check the input pipeline / thread configuration under this frame; "
                           "match worker threads to physical CPU cores and overlap data loading "
                           "with GPU compute",
                metrics={"cpu_time": cpu_time, "gpu_time": gpu_time, "ratio": ratio},
            ))
        return issues
