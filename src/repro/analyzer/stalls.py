"""Analysis 4 — fine-grained stall analysis.

Starts from the hotspot kernels, looks at the instruction samples collected
underneath them (one CCT child per sampled program counter, tagged with the
stall reason) and reports the dominant stall reasons, as in case study 6.7
where ``torch.to`` conversion kernels stall on constant-memory loads and math
dependencies.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import metrics as M
from ..core.cct import CallingContextTree, CCTNode
from ..dlmonitor.callpath import FrameKind
from .base import Analysis
from .hotspot import HotspotAnalysis
from .issues import Issue, IssueCollector, Severity

_STALL_SUGGESTIONS = {
    "constant_memory_dependency": "minimise per-CTA constant loads; load the minimum bytes "
                                  "needed to use vectorised conversion instructions",
    "math_dependency": "use vectorised data-type conversion instructions or fuse the conversion "
                       "with neighbouring operators",
    "long_scoreboard": "improve memory coalescing or reduce global memory traffic",
    "atomic_contention": "reduce collisions on atomically updated locations",
    "execution_dependency": "break serialized dependency chains (e.g. deterministic scatters)",
    "barrier": "rebalance work between block-level reductions to shorten barrier waits",
}


class StallAnalysis(Analysis):
    """Top stall reasons inside hotspot kernels, from instruction samples."""

    name = "stalls"
    client_id = 4
    description = "Dominant warp-stall reasons inside hotspot kernels"

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        stall_threshold = self.threshold("stall_threshold", 8.0)
        top_k = int(self.threshold("top_k", 3))
        hotspot_threshold = self.threshold("hotspot_threshold", 0.05)
        issues: List[Issue] = []
        hotspots = HotspotAnalysis(hotspot_threshold=hotspot_threshold).hotspots(tree)
        for kernel_node in hotspots:
            stalled_children = [
                child for child in kernel_node.children.values()
                if child.kind == FrameKind.GPU_INSTRUCTION
                and child.inclusive.sum(M.METRIC_STALL_SAMPLES) > stall_threshold
            ]
            if not stalled_children:
                continue
            reasons = self._top_reasons(stalled_children, top_k)
            top_names = ", ".join(reasons)
            total_stalls = sum(child.inclusive.sum(M.METRIC_STALL_SAMPLES)
                               for child in stalled_children)
            suggestion = "; ".join(_STALL_SUGGESTIONS.get(reason, "") for reason in reasons
                                   if reason in _STALL_SUGGESTIONS)
            issues.append(collector.flag(
                analysis=self.name,
                node=kernel_node,
                message=f"Kernel is mainly stalled by {top_names}",
                severity=Severity.WARNING,
                suggestion=suggestion or "inspect the sampled instructions of this kernel",
                metrics={"stall_samples": total_stalls,
                         "stalled_pcs": float(len(stalled_children))},
            ))
        return issues

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _top_reasons(stalled_children: List[CCTNode], top_k: int) -> List[str]:
        by_reason: Dict[str, float] = {}
        for child in stalled_children:
            reason = child.frame.tag
            by_reason[reason] = by_reason.get(reason, 0.0) + child.inclusive.sum(M.METRIC_STALL_SAMPLES)
        ranked = sorted(by_reason.items(), key=lambda item: (-item[1], item[0]))
        return [reason for reason, _count in ranked[:top_k]]

    def stall_breakdown(self, tree: CallingContextTree) -> Dict[str, float]:
        """Total stall samples per reason across the whole profile."""
        totals: Dict[str, float] = {}
        for node in tree.nodes_of_kind(FrameKind.GPU_INSTRUCTION):
            samples = node.inclusive.sum(M.METRIC_STALL_SAMPLES)
            if samples:
                totals[node.frame.tag] = totals.get(node.frame.tag, 0.0) + samples
        return totals
