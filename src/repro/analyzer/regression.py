"""Cross-run regression detection against a baseline profile.

Unlike the single-profile analyses, :class:`RegressionAnalysis` is
parameterised by a *baseline* — a prior run's tree, lazy profile view or
database (anything :func:`repro.fleet.differential.resolve_tree` accepts).
Running it aligns the analyzed tree against that baseline with a
:class:`~repro.fleet.differential.DifferentialProfile` and flags the
significance-ranked regressions as :class:`Issue` objects, so a fleet diff
lands in the same ``AnalysisReport`` (and colour-coded GUI) as the paper's
built-in analyses.  Issues are flagged in rank order: the first
``regression`` issue of a report *is* the top-ranked regression.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import metrics as M
from ..core.cct import CallingContextTree
from ..fleet.differential import STATUS_NEW, DifferentialProfile
from .base import Analysis
from .issues import Issue, IssueCollector, Severity


class RegressionAnalysis(Analysis):
    """Flags contexts whose metric regressed relative to a baseline run.

    Thresholds:

    * ``min_delta`` — absolute metric increase a context must show (default
      0.0: any increase qualifies);
    * ``min_z`` — Welch significance gate (default 0.0; deterministic
      changes always pass — they saturate the z-score);
    * ``top_k`` — how many ranked regressions to flag (default 10);
    * ``critical_fraction`` — a regression worth at least this fraction of
      the baseline's whole-profile total is CRITICAL instead of WARNING
      (default 0.10);
    * ``report_vanished`` — non-zero to also flag vanished kernels as INFO
      (default 1.0: on).
    """

    name = "regression"
    client_id = 0
    description = "Cross-run regression detection against a baseline profile"

    def __init__(self, baseline=None, metric: str = M.METRIC_GPU_TIME,
                 **thresholds: float) -> None:
        super().__init__(**thresholds)
        self.baseline = baseline
        self.metric = metric

    def differential(self, tree: CallingContextTree) -> Optional[DifferentialProfile]:
        """The baseline↔tree differential this analysis judges (None without
        a baseline — the analysis is a no-op then, not an error, so it can sit
        in a default analyzer pipeline that only sometimes has a baseline)."""
        if self.baseline is None:
            return None
        return DifferentialProfile(self.baseline, tree, metric=self.metric)

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        diff = self.differential(tree)
        if diff is None:
            return []
        min_delta = self.threshold("min_delta", 0.0)
        min_z = self.threshold("min_z", 0.0)
        top_k = int(self.threshold("top_k", 10))
        critical_fraction = self.threshold("critical_fraction", 0.10)
        baseline_total = diff.baseline_total or 1.0

        issues: List[Issue] = []
        ranked = diff.regressions(min_delta=min_delta, min_z=min_z)
        for rank, delta in enumerate(ranked[:top_k], start=1):
            fraction = delta.delta_sum / baseline_total
            severity = (Severity.CRITICAL if fraction >= critical_fraction
                        else Severity.WARNING)
            if delta.status == STATUS_NEW:
                message = (f"new context costs {delta.candidate_sum:.6g} "
                           f"{self.metric} ({fraction:.1%} of the baseline "
                           f"total) that the baseline never spent")
                suggestion = ("check what this run executes that the baseline "
                              "did not (new op, changed fusion, fallback path)")
            else:
                message = (f"{self.metric} grew {delta.baseline_sum:.6g} → "
                           f"{delta.candidate_sum:.6g} "
                           f"({delta.delta_sum:+.6g}, {fraction:+.1%} of the "
                           f"baseline total; z={delta.z_score:.3g})")
                suggestion = ("bisect what changed between the runs for this "
                              "call path (code, config, input shapes, library "
                              "versions)")
            issues.append(collector.flag(
                self.name, delta.node, message, severity=severity,
                suggestion=suggestion,
                metrics={
                    "rank": float(rank),
                    "baseline_sum": delta.baseline_sum,
                    "candidate_sum": delta.candidate_sum,
                    "delta_sum": delta.delta_sum,
                    "delta_fraction": fraction,
                    "z_score": delta.z_score,
                }))
        if len(ranked) > top_k:
            issues.append(collector.flag(
                self.name, None,
                f"{len(ranked) - top_k} further regressed context(s) below "
                f"the top {top_k} (raise top_k to see them)",
                severity=Severity.INFO))
        if self.threshold("report_vanished", 1.0):
            for name in diff.vanished_kernels:
                issues.append(collector.flag(
                    self.name, None,
                    f"kernel {name!r} ran in the baseline but not in this run",
                    severity=Severity.INFO,
                    suggestion="confirm the kernel was fused/eliminated on "
                               "purpose rather than silently skipped"))
        return issues
