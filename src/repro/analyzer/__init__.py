"""Automated performance analyzer of DeepContext (paper §4.3)."""

from .base import Analysis
from .cpu_latency import CpuLatencyAnalysis
from .durability import (
    ANALYSIS_STORE_DURABILITY,
    attach_issues,
    degradation_issues,
    quarantine_issues,
)
from .forward_backward import ForwardBackwardAnalysis
from .hotspot import HotspotAnalysis
from .issues import Issue, IssueCollector, Severity
from .kernel_fusion import KernelFusionAnalysis
from .query import (
    SEMANTIC_BACKWARD,
    SEMANTIC_DATA,
    SEMANTIC_EVALUATION,
    SEMANTIC_FORWARD,
    SEMANTIC_LOSS,
    SEMANTIC_MEMCPY,
    SEMANTIC_OPTIMIZER,
    CallPathPattern,
    CCTQuery,
    semantic_of,
)
from .registry import DEFAULT_ANALYSES, PerformanceAnalyzer
from .regression import RegressionAnalysis
from .report import AnalysisReport
from .stalls import StallAnalysis

__all__ = [
    "Analysis",
    "PerformanceAnalyzer",
    "DEFAULT_ANALYSES",
    "AnalysisReport",
    "Issue",
    "IssueCollector",
    "Severity",
    "HotspotAnalysis",
    "KernelFusionAnalysis",
    "ForwardBackwardAnalysis",
    "StallAnalysis",
    "CpuLatencyAnalysis",
    "RegressionAnalysis",
    "ANALYSIS_STORE_DURABILITY",
    "quarantine_issues",
    "degradation_issues",
    "attach_issues",
    "CCTQuery",
    "CallPathPattern",
    "semantic_of",
    "SEMANTIC_FORWARD",
    "SEMANTIC_BACKWARD",
    "SEMANTIC_LOSS",
    "SEMANTIC_OPTIMIZER",
    "SEMANTIC_DATA",
    "SEMANTIC_MEMCPY",
    "SEMANTIC_EVALUATION",
]
