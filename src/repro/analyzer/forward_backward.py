"""Analysis 3 — forward/backward operator imbalance.

The backward pass of an operator should not cost dramatically more GPU time
than its forward pass; when it does (as with ``aten::index``'s deterministic
serialization in case study 6.1) there is usually an alternative operator or
setting that removes the imbalance.  Thanks to DLMonitor's sequence-ID
association, backward kernels sit under framework frames tagged ``backward``
with the *same operator name* as their forward counterpart, so the comparison
is a straightforward aggregation by operator name.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core import metrics as M
from ..core.cct import CallingContextTree
from ..dlmonitor.callpath import FrameKind
from .base import Analysis
from .issues import Issue, IssueCollector, Severity

# Suggested replacements for operators whose backward pass is known to serialize.
_KNOWN_REPLACEMENTS = {
    "aten::index": "replace aten::index with aten::index_select (atomic, non-deterministic backward)",
    "aten::embedding": "consider embedding bags or non-deterministic scatter for the backward pass",
}


class ForwardBackwardAnalysis(Analysis):
    """``backward.time / forward.time > ratio`` per deep-learning operator."""

    name = "forward_backward"
    client_id = 3
    description = "Operators whose backward pass is much more expensive than the forward pass"

    def operator_times(self, tree: CallingContextTree) -> Dict[str, Dict[str, float]]:
        """Aggregate exclusive GPU time under each operator, split fwd/bwd."""
        totals: Dict[str, Dict[str, float]] = {}
        for node in tree.operators:
            entry = totals.setdefault(node.frame.name, {"forward": 0.0, "backward": 0.0})
            direction = "backward" if node.frame.tag == "backward" else "forward"
            entry[direction] += self._subtree_exclusive_gpu_time(node)
        return totals

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        ratio_threshold = self.threshold("ratio", 2.0)
        min_backward_seconds = self.threshold("min_backward_seconds", 1e-4)
        issues: List[Issue] = []
        times = self.operator_times(tree)
        nodes_by_name = self._backward_nodes_by_name(tree)
        for op_name, entry in sorted(times.items()):
            forward, backward = entry["forward"], entry["backward"]
            if backward < min_backward_seconds or forward <= 0:
                continue
            ratio = backward / forward
            if ratio <= ratio_threshold:
                continue
            node = nodes_by_name.get(op_name)
            issues.append(collector.flag(
                analysis=self.name,
                node=node,
                message=(f"Backward abnormality: {op_name} backward takes {ratio:.1f}x "
                         f"its forward time ({backward:.4f}s vs {forward:.4f}s)"),
                severity=Severity.CRITICAL if ratio > 5 * ratio_threshold else Severity.WARNING,
                suggestion=_KNOWN_REPLACEMENTS.get(
                    op_name, "inspect the backward kernels of this operator for serialization "
                             "or redundant work"),
                metrics={"forward_gpu_time": forward, "backward_gpu_time": backward,
                         "ratio": ratio},
            ))
        return issues

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _subtree_exclusive_gpu_time(node) -> float:
        """Inclusive GPU time of an operator node, avoiding double counting.

        Operator frames can nest (an op calling another op); summing inclusive
        time of every frame would count shared kernels twice, so only the time
        not already attributed to a nested operator frame is returned.
        """
        total = node.inclusive.sum(M.METRIC_GPU_TIME)
        for child in node.children.values():
            if child.kind == FrameKind.FRAMEWORK and child.frame.tag != "scope":
                total -= child.inclusive.sum(M.METRIC_GPU_TIME)
        return max(0.0, total)

    @staticmethod
    def _backward_nodes_by_name(tree: CallingContextTree):
        """One representative backward node per operator name.

        Iterates the operator index (node-creation order), so for an operator
        duplicated across contexts the issue anchors at the context observed
        first — a deterministic choice, though not the pre-order-first node
        the eager implementation happened to pick.
        """
        nodes = {}
        for node in tree.operators:
            if node.frame.tag == "backward" and node.frame.name not in nodes:
                nodes[node.frame.name] = node
        return nodes

    def ranked_imbalances(self, tree: CallingContextTree) -> List[Tuple[str, float]]:
        """(operator, backward/forward ratio) sorted by decreasing ratio."""
        ratios = []
        for op_name, entry in self.operator_times(tree).items():
            if entry["forward"] > 0 and entry["backward"] > 0:
                ratios.append((op_name, entry["backward"] / entry["forward"]))
        return sorted(ratios, key=lambda item: -item[1])
