"""Base class for automated performance analyses.

Users create custom analyses by subclassing :class:`Analysis` and implementing
:meth:`run` in terms of the query layer (call path search), the metric data on
matched nodes (metrics analysis) and the issue collector (visualization) —
exactly the three-step recipe the paper describes.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.cct import CallingContextTree
from .issues import Issue, IssueCollector
from .query import CCTQuery


class Analysis:
    """One automated performance analysis."""

    #: Unique analysis name (used in reports and issue records).
    name = "analysis"
    #: Which paper example this corresponds to (1–5), 0 for custom analyses.
    client_id = 0
    #: Short description shown in reports.
    description = ""

    def __init__(self, **thresholds: float) -> None:
        self.thresholds: Dict[str, float] = dict(thresholds)

    def threshold(self, key: str, default: float) -> float:
        return float(self.thresholds.get(key, default))

    def run(self, tree: CallingContextTree, collector: IssueCollector) -> List[Issue]:
        """Execute the analysis; implementations flag issues on ``collector``."""
        raise NotImplementedError

    def analyze(self, tree: CallingContextTree) -> List[Issue]:
        """Convenience wrapper returning just this analysis's issues."""
        collector = IssueCollector()
        self.run(tree, collector)
        return collector.issues

    def query(self, tree: CallingContextTree) -> CCTQuery:
        return CCTQuery(tree)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
