"""Analysis reports: structured and textual views of flagged issues."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .issues import Issue, Severity


@dataclass
class AnalysisReport:
    """The result of running the performance analyzer over one profile."""

    issues: List[Issue] = field(default_factory=list)
    per_analysis: Dict[str, List[Issue]] = field(default_factory=dict)

    # -- accessors -------------------------------------------------------------------

    def by_analysis(self, name: str) -> List[Issue]:
        return list(self.per_analysis.get(name, []))

    def by_severity(self, severity: Severity) -> List[Issue]:
        return [issue for issue in self.issues if issue.severity == severity]

    @property
    def count(self) -> int:
        return len(self.issues)

    def counts_by_analysis(self) -> Dict[str, int]:
        return {name: len(issues) for name, issues in self.per_analysis.items()}

    # -- rendering ---------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_issues": self.count,
            "by_analysis": self.counts_by_analysis(),
            "issues": [issue.as_dict() for issue in self.issues],
        }

    def to_text(self) -> str:
        """Plain-text report suitable for terminals and EXPERIMENTS.md."""
        lines = [f"Performance analysis report: {self.count} issue(s) found", ""]
        for name, issues in self.per_analysis.items():
            lines.append(f"== {name} ({len(issues)} issue(s)) ==")
            for issue in issues:
                lines.append(f"  [{issue.severity.value}] {issue.node_name}")
                lines.append(f"      {issue.message}")
                if issue.suggestion:
                    lines.append(f"      suggestion: {issue.suggestion}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def __str__(self) -> str:
        return self.to_text()
