"""Operator infrastructure for the mini framework.

Every framework-level operation (``aten::conv2d``, ``aten::index``, ...) is
described by an :class:`OpDef`: how to infer the output tensor, which GPU
kernels the forward and backward passes launch, which native C/C++ symbols
appear on the call stack while the operator executes, and how much host-side
dispatch time it costs.  The concrete operator library lives in
:mod:`repro.framework.op_library`; this module provides the registry and the
kernel-builder helpers shared by the definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..gpu import kernels as K
from ..gpu.device import DeviceSpec
from ..gpu.kernels import KernelSpec
from ..native import symbols as libs
from .tensor import Tensor, dtype_size


@dataclass
class OpCall:
    """One invocation of an operator, as seen by kernel planners and callbacks."""

    op: "OpDef"
    inputs: List[Tensor]
    attrs: Dict[str, Any]
    output: Optional[Tensor]
    device: DeviceSpec
    is_backward: bool = False
    sequence_id: Optional[int] = None

    @property
    def name(self) -> str:
        return self.op.name

    def input_bytes(self) -> int:
        return sum(t.nbytes for t in self.inputs)


InferFn = Callable[[List[Tensor], Dict[str, Any]], Tensor]
KernelPlanFn = Callable[[OpCall], List[KernelSpec]]


@dataclass
class OpDef:
    """Static description of a framework operator."""

    name: str
    kind: str
    infer: InferFn
    forward_kernels: KernelPlanFn
    backward_kernels: Optional[KernelPlanFn] = None
    #: (library, symbol) pairs pushed on the native stack while the op runs,
    #: ordered from outermost (dispatcher) to innermost (vendor library).
    native_symbols: List[Tuple[str, str]] = field(default_factory=list)
    cpu_overhead_us: float = 12.0
    differentiable: bool = True
    #: Semantic role used by the analyzer (e.g. "loss", "optimizer", "data").
    semantic: str = "compute"

    def __post_init__(self) -> None:
        if not self.native_symbols:
            short = self.name.split("::")[-1]
            self.native_symbols = [
                (libs.LIBTORCH_CPU, f"at::_ops::{short}::call"),
                (libs.LIBTORCH_CUDA, f"at::native::{short}_kernel_impl"),
            ]

    def __repr__(self) -> str:
        return f"OpDef({self.name!r}, kind={self.kind!r})"


class OperatorRegistry:
    """Name → :class:`OpDef` lookup with duplicate protection."""

    def __init__(self) -> None:
        self._ops: Dict[str, OpDef] = {}

    def register(self, op: OpDef) -> OpDef:
        if op.name in self._ops:
            raise ValueError(f"operator already registered: {op.name}")
        self._ops[op.name] = op
        return op

    def get(self, name: str) -> OpDef:
        if name not in self._ops:
            raise KeyError(f"unknown operator: {name!r}")
        return self._ops[name]

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> List[str]:
        return sorted(self._ops)

    def __len__(self) -> int:
        return len(self._ops)


#: The process-wide operator registry (populated by ``op_library``).
registry = OperatorRegistry()


# ---------------------------------------------------------------------------
# Kernel-builder helpers shared by the operator library.
# ---------------------------------------------------------------------------

def _blocks_for(numel: int, threads_per_block: int) -> int:
    return max(1, int(math.ceil(numel / max(1, threads_per_block))))


def elementwise_kernel(name: str, out: Tensor, reads: Sequence[Tensor] = (),
                       flops_per_element: float = 1.0, source: str = "",
                       extra_flags: Sequence[str] = ()) -> KernelSpec:
    """A bandwidth-bound elementwise kernel writing ``out`` and reading ``reads``."""
    bytes_accessed = out.nbytes + sum(t.nbytes for t in reads)
    threads = 256
    return KernelSpec(
        name=name,
        flops=out.numel * flops_per_element,
        bytes_accessed=float(bytes_accessed),
        threads_per_block=threads,
        num_blocks=_blocks_for(out.numel, threads * 4),
        registers_per_thread=24,
        dtype=out.dtype,
        flags=frozenset({K.FLAG_ELEMENTWISE, *extra_flags}),
        source_operator=source,
    )


def matmul_kernel(name: str, m: int, n: int, k: int, batch: int = 1,
                  dtype: str = "float32", source: str = "",
                  extra_flags: Sequence[str] = ()) -> KernelSpec:
    """A tiled GEMM kernel: ``batch`` × (m×k) @ (k×n)."""
    flops = 2.0 * m * n * k * batch
    element = dtype_size(dtype)
    bytes_accessed = float((m * k + k * n + m * n) * element * batch)
    tiles = max(1, int(math.ceil(m / 128)) * int(math.ceil(n / 128)) * batch)
    return KernelSpec(
        name=name,
        flops=flops,
        bytes_accessed=bytes_accessed,
        threads_per_block=256,
        num_blocks=tiles,
        registers_per_thread=128,
        shared_memory_bytes=48 * 1024,
        dtype=dtype,
        flags=frozenset({K.FLAG_MATMUL, *extra_flags}),
        source_operator=source,
    )


def conv_kernel(name: str, batch: int, out_channels: int, in_channels: int,
                kernel_size: int, out_h: int, out_w: int, dtype: str = "float32",
                source: str = "", extra_flags: Sequence[str] = ()) -> KernelSpec:
    """An implicit-GEMM convolution kernel."""
    flops = 2.0 * batch * out_channels * in_channels * kernel_size * kernel_size * out_h * out_w
    element = dtype_size(dtype)
    bytes_accessed = float(
        (batch * in_channels * out_h * out_w
         + out_channels * in_channels * kernel_size * kernel_size
         + batch * out_channels * out_h * out_w) * element
    )
    tiles = max(1, int(math.ceil(batch * out_h * out_w / 128)) * int(math.ceil(out_channels / 64)))
    return KernelSpec(
        name=name,
        flops=flops,
        bytes_accessed=bytes_accessed,
        threads_per_block=256,
        num_blocks=min(tiles, 65535),
        registers_per_thread=160,
        shared_memory_bytes=64 * 1024,
        dtype=dtype,
        flags=frozenset({K.FLAG_CONV, *extra_flags}),
        source_operator=source,
    )


def reduction_kernel(name: str, input_tensor: Tensor, rows: int,
                     source: str = "", extra_flags: Sequence[str] = ()) -> KernelSpec:
    """A row-wise reduction kernel (norm statistics, softmax denominators, ...)."""
    return KernelSpec(
        name=name,
        flops=input_tensor.numel * 2.0,
        bytes_accessed=float(input_tensor.nbytes * 2),
        threads_per_block=256,
        num_blocks=max(1, rows),
        registers_per_thread=40,
        dtype=input_tensor.dtype,
        flags=frozenset({K.FLAG_REDUCTION, *extra_flags}),
        source_operator=source,
    )


def layout_conversion_kernel(name: str, tensor_like: Tensor, source: str = "") -> KernelSpec:
    """A cudnn-style NCHW↔NHWC conversion kernel (case study 6.2)."""
    return KernelSpec(
        name=name,
        flops=float(tensor_like.numel),
        bytes_accessed=float(tensor_like.nbytes * 2),
        threads_per_block=256,
        num_blocks=_blocks_for(tensor_like.numel, 1024),
        registers_per_thread=24,
        dtype=tensor_like.dtype,
        flags=frozenset({K.FLAG_LAYOUT_CONVERSION, K.FLAG_ELEMENTWISE}),
        source_operator=source,
    )


def gather_kernel(name: str, output: Tensor, source: str = "") -> KernelSpec:
    """A gather kernel (index / index_select / embedding forward)."""
    return KernelSpec(
        name=name,
        flops=float(output.numel),
        bytes_accessed=float(output.nbytes * 2),
        threads_per_block=128,
        num_blocks=_blocks_for(output.numel, 512),
        registers_per_thread=32,
        dtype=output.dtype,
        flags=frozenset({K.FLAG_GATHER}),
        source_operator=source,
    )


def scatter_kernel(name: str, grad_like: Tensor, duplicate_fraction: float,
                   deterministic: bool, source: str = "") -> KernelSpec:
    """A scatter(-add) kernel used by index/embedding backward passes.

    When ``deterministic`` is true the kernel serializes threads writing to the
    same destination row (PyTorch's ``indexing_backward_kernel``); the
    serialization factor grows with how duplicated the indices are.  The
    non-deterministic variant uses atomics and pays only mild contention.
    """
    if deterministic:
        serialization = 1.0 + duplicate_fraction * 63.0
        flags = frozenset({K.FLAG_DETERMINISTIC_SCATTER})
    else:
        serialization = 1.0 + duplicate_fraction * 2.0
        flags = frozenset({K.FLAG_ATOMIC_SCATTER})
    return KernelSpec(
        name=name,
        flops=float(grad_like.numel),
        bytes_accessed=float(grad_like.nbytes * 3),
        threads_per_block=128,
        num_blocks=_blocks_for(grad_like.numel, 512),
        registers_per_thread=40,
        dtype=grad_like.dtype,
        flags=flags,
        serialization_factor=serialization,
        source_operator=source,
    )


def normalization_kernels(prefix: str, input_tensor: Tensor, rows: int,
                          threads_per_block: int = 512, warp32_tuned: bool = False,
                          source: str = "") -> List[KernelSpec]:
    """Statistics + transform kernel pair used by batch/instance norm."""
    flags = {K.FLAG_NORMALIZATION}
    if warp32_tuned:
        flags.add(K.FLAG_WARP32_TUNED)
    stats = KernelSpec(
        name=f"{prefix}_collect_statistics_kernel",
        flops=input_tensor.numel * 2.0,
        bytes_accessed=float(input_tensor.nbytes * 2),
        threads_per_block=threads_per_block,
        num_blocks=max(1, rows),
        registers_per_thread=48,
        dtype=input_tensor.dtype,
        flags=frozenset(flags),
        source_operator=source,
    )
    transform = KernelSpec(
        name=f"{prefix}_transform_input_kernel",
        flops=input_tensor.numel * 4.0,
        bytes_accessed=float(input_tensor.nbytes * 3),
        threads_per_block=threads_per_block,
        num_blocks=max(1, rows),
        registers_per_thread=48,
        dtype=input_tensor.dtype,
        flags=frozenset(flags),
        source_operator=source,
    )
    return [stats, transform]
