"""Mini deep-learning framework substrate (eager + JIT execution modes)."""

from . import functional, modules, op_library  # noqa: F401  (op_library populates the registry)
from .autograd import AutogradTape, GraphNode, no_grad
from .dataloader import DataLoader, DataLoaderStats
from .eager import (
    PHASE_AFTER,
    PHASE_BEFORE,
    CallbackInfo,
    EagerEngine,
    current_engine,
    has_current_engine,
)
from .graph import FusedOperator, Graph, GraphOperator
from .jit import CompiledFunction, CompilationEvent, JitCompiler, TracingEngine, jit
from .ops import OpCall, OpDef, registry
from .tensor import CHANNELS_FIRST, CHANNELS_LAST, Tensor, parameter, tensor
from .threads import THREAD_BACKWARD, THREAD_MAIN, THREAD_WORKER, ThreadContext, ThreadRegistry

__all__ = [
    "functional",
    "modules",
    "AutogradTape",
    "GraphNode",
    "no_grad",
    "DataLoader",
    "DataLoaderStats",
    "EagerEngine",
    "CallbackInfo",
    "current_engine",
    "has_current_engine",
    "PHASE_BEFORE",
    "PHASE_AFTER",
    "Graph",
    "GraphOperator",
    "FusedOperator",
    "JitCompiler",
    "CompiledFunction",
    "CompilationEvent",
    "TracingEngine",
    "jit",
    "OpCall",
    "OpDef",
    "registry",
    "Tensor",
    "tensor",
    "parameter",
    "CHANNELS_FIRST",
    "CHANNELS_LAST",
    "ThreadContext",
    "ThreadRegistry",
    "THREAD_MAIN",
    "THREAD_BACKWARD",
    "THREAD_WORKER",
]
