"""Computation graphs for the JIT (JAX-like) execution mode.

A traced graph records each original operator with the *compile-time* Python
call path where it appeared in the user program.  After the fusion pass,
executable nodes may be :class:`FusedOperator` groups whose runtime call path
no longer matches any single original operator — the mismatch DLMonitor's
fusion map resolves (paper Figure 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .tensor import Tensor

_node_ids = itertools.count(1)

#: A compile-time Python frame: (file, line, function).
PyFrame = Tuple[str, int, str]


@dataclass
class GraphOperator:
    """One original (pre-fusion) operator in a traced graph."""

    op_name: str
    inputs: List[Tensor]
    attrs: Dict[str, Any]
    output: Tensor
    #: Python call path captured while tracing (outermost frame first).
    compile_time_callpath: List[PyFrame] = field(default_factory=list)
    scope: List[str] = field(default_factory=list)
    node_id: int = field(default_factory=lambda: next(_node_ids))

    @property
    def kind(self) -> str:
        from .ops import registry

        return registry.get(self.op_name).kind if self.op_name in registry else "unknown"

    def __repr__(self) -> str:
        return f"GraphOperator(#{self.node_id} {self.op_name})"


@dataclass
class FusedOperator:
    """A group of original operators fused into a single executable kernel."""

    name: str
    members: List[GraphOperator]
    node_id: int = field(default_factory=lambda: next(_node_ids))

    @property
    def member_ids(self) -> List[int]:
        return [member.node_id for member in self.members]

    @property
    def member_names(self) -> List[str]:
        return [member.op_name for member in self.members]

    def __repr__(self) -> str:
        return f"FusedOperator(#{self.node_id} {self.name}, members={self.member_names})"


@dataclass
class Graph:
    """A traced computation graph, before or after compilation passes."""

    name: str
    operators: List[GraphOperator] = field(default_factory=list)
    #: Executable plan produced by the compilation passes; entries are either
    #: GraphOperator (unfused) or FusedOperator (fused group).
    executable: List[object] = field(default_factory=list)
    compiled: bool = False

    def add(self, operator: GraphOperator) -> GraphOperator:
        self.operators.append(operator)
        return operator

    @property
    def num_operators(self) -> int:
        return len(self.operators)

    @property
    def num_executable(self) -> int:
        return len(self.executable)

    def fused_groups(self) -> List[FusedOperator]:
        return [node for node in self.executable if isinstance(node, FusedOperator)]

    def find_operator(self, node_id: int) -> Optional[GraphOperator]:
        for operator in self.operators:
            if operator.node_id == node_id:
                return operator
        return None
