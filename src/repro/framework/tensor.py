"""Symbolic tensors for the mini deep-learning framework.

Tensors carry only *metadata* — shape, dtype, device, memory format, autograd
linkage — because the profiler reproduction needs operator and kernel structure,
not numerical results.  Shapes and dtypes drive the analytic kernel cost model;
memory formats drive the layout-conversion behaviour of case study 6.2.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

# Supported dtypes and their sizes in bytes.
DTYPE_SIZES = {
    "float32": 4,
    "float16": 2,
    "bfloat16": 2,
    "float8": 1,
    "int64": 8,
    "int32": 4,
    "bool": 1,
}

CHANNELS_FIRST = "channels_first"
CHANNELS_LAST = "channels_last"
CONTIGUOUS = "contiguous"

_tensor_ids = itertools.count(1)


def dtype_size(dtype: str) -> int:
    """Size of one element of ``dtype`` in bytes."""
    if dtype not in DTYPE_SIZES:
        raise ValueError(f"unknown dtype: {dtype!r}")
    return DTYPE_SIZES[dtype]


@dataclass
class Tensor:
    """A symbolic tensor."""

    shape: Tuple[int, ...]
    dtype: str = "float32"
    device: str = "gpu"
    memory_format: str = CONTIGUOUS
    requires_grad: bool = False
    #: Autograd node that produced this tensor (set by the engine).
    grad_fn: Optional[object] = None
    #: Human-readable provenance, e.g. a parameter or activation name.
    name: str = ""
    #: Fraction of duplicated values for index tensors (drives the
    #: deterministic-scatter serialization of case study 6.1).
    duplicate_fraction: float = 0.0
    id: int = field(default_factory=lambda: next(_tensor_ids))

    def __post_init__(self) -> None:
        self.shape = tuple(int(dim) for dim in self.shape)
        if any(dim < 0 for dim in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")
        dtype_size(self.dtype)  # validate

    # -- size helpers -----------------------------------------------------------

    @property
    def numel(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.numel * dtype_size(self.dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    # -- derivation helpers ------------------------------------------------------

    def like(self, shape: Optional[Sequence[int]] = None, dtype: Optional[str] = None,
             memory_format: Optional[str] = None, name: str = "") -> "Tensor":
        """A new tensor inheriting this one's attributes unless overridden."""
        return Tensor(
            shape=tuple(shape) if shape is not None else self.shape,
            dtype=dtype if dtype is not None else self.dtype,
            device=self.device,
            memory_format=memory_format if memory_format is not None else self.memory_format,
            requires_grad=self.requires_grad,
            name=name,
            duplicate_fraction=self.duplicate_fraction,
        )

    def to_format(self, memory_format: str) -> "Tensor":
        return self.like(memory_format=memory_format, name=self.name)

    def detach(self) -> "Tensor":
        clone = self.like(name=self.name)
        clone.requires_grad = False
        return clone

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype!r}{grad})"


def tensor(shape: Sequence[int], dtype: str = "float32", device: str = "gpu",
           requires_grad: bool = False, memory_format: str = CONTIGUOUS,
           name: str = "", duplicate_fraction: float = 0.0) -> Tensor:
    """Convenience constructor mirroring ``torch.empty``-style creation."""
    return Tensor(
        shape=tuple(shape),
        dtype=dtype,
        device=device,
        memory_format=memory_format,
        requires_grad=requires_grad,
        name=name,
        duplicate_fraction=duplicate_fraction,
    )


def parameter(shape: Sequence[int], dtype: str = "float32", name: str = "") -> Tensor:
    """A trainable parameter tensor (requires grad)."""
    return tensor(shape, dtype=dtype, requires_grad=True, name=name)


def conv_output_shape(input_shape: Sequence[int], out_channels: int, kernel_size: int,
                      stride: int = 1, padding: int = 0) -> Tuple[int, ...]:
    """Output shape of a 2D convolution over an NCHW input."""
    n, _c, h, w = input_shape
    out_h = (h + 2 * padding - kernel_size) // stride + 1
    out_w = (w + 2 * padding - kernel_size) // stride + 1
    return (n, out_channels, out_h, out_w)


def matmul_output_shape(a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Output shape of a (batched) matrix multiplication."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("matmul operands must have at least 2 dimensions")
    if a[-1] != b[-2]:
        raise ValueError(f"matmul shape mismatch: {tuple(a)} @ {tuple(b)}")
    batch = tuple(a[:-2]) if len(a) >= len(b) else tuple(b[:-2])
    return batch + (a[-2], b[-1])
