"""Virtual CPU threads of the simulated deep-learning process.

PyTorch creates dedicated *backward threads* per GPU device and *worker
threads* for data loading; DeepContext's forward/backward association exists
precisely because backward operators run on a different thread with no Python
context.  This module models those threads: each has its own CPU_TIME clock,
its own simulated native stack, and a scratch area where layers such as
DLMonitor keep per-thread state (shadow stacks, call-path caches).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..cpu.clock import MachineClock, VirtualClock
from ..native.unwinder import NativeStack

THREAD_MAIN = "main"
THREAD_BACKWARD = "backward"
THREAD_WORKER = "worker"


@dataclass
class ThreadContext:
    """One simulated CPU thread."""

    tid: int
    name: str
    kind: str
    cpu_clock: VirtualClock
    native_stack: NativeStack = field(default_factory=NativeStack)
    #: Scratch storage for higher layers (DLMonitor shadow stacks, caches, ...).
    local: Dict[str, object] = field(default_factory=dict)
    #: Backward and worker threads have no user Python frames on their stacks.
    has_python_context: bool = True
    #: Memoized (owner, shard) handle of this thread's private CCT shard —
    #: installed by ``ShardedCallingContextTree.shard_for`` so the per-event
    #: attribution path resolves its shard with one attribute read.
    cct_shard: Optional[Tuple[object, object]] = None

    def __hash__(self) -> int:
        return self.tid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadContext(tid={self.tid}, name={self.name!r}, kind={self.kind!r})"


class ThreadRegistry:
    """Creates threads and tracks which one is "currently executing".

    The simulation is single-threaded Python; concurrency is modelled by
    explicitly switching the current thread context around regions that would
    run on another thread (backward passes, data-loading workers).
    """

    def __init__(self, machine: MachineClock) -> None:
        self._machine = machine
        self._tid = itertools.count(1)
        #: Threads in creation order, indexed by tid for the per-event lookup.
        self._by_tid: Dict[int, ThreadContext] = {}
        self._creation_listeners: List = []
        self.main = self.create(THREAD_MAIN, kind=THREAD_MAIN)
        self._current = self.main

    def on_thread_created(self, listener) -> None:
        """Register ``listener(thread)`` to run whenever a new thread appears.

        The profiler's CPU collector uses this to install interval samplers on
        threads created after profiling started (backward threads, data-loading
        workers).
        """
        self._creation_listeners.append(listener)

    def create(self, name: str, kind: str = THREAD_WORKER, tied: bool = True) -> ThreadContext:
        """Create a new thread context with its own CPU clock."""
        tid = next(self._tid)
        clock = self._machine.new_cpu_clock(f"cpu[{name}#{tid}]", tied=tied)
        thread = ThreadContext(
            tid=tid,
            name=name,
            kind=kind,
            cpu_clock=clock,
            has_python_context=(kind != THREAD_BACKWARD),
        )
        self._by_tid[tid] = thread
        for listener in list(self._creation_listeners):
            listener(thread)
        return thread

    @property
    def current(self) -> ThreadContext:
        return self._current

    @property
    def threads(self) -> List[ThreadContext]:
        return list(self._by_tid.values())

    def find(self, tid: int) -> Optional[ThreadContext]:
        """O(1) lookup by thread id (dict-indexed; this is a per-event path)."""
        return self._by_tid.get(tid)

    def switch_to(self, thread: ThreadContext) -> "ThreadSwitch":
        """Context manager that makes ``thread`` current inside a ``with`` block."""
        return ThreadSwitch(self, thread)

    def _set_current(self, thread: ThreadContext) -> ThreadContext:
        previous = self._current
        self._current = thread
        return previous

    def __iter__(self) -> Iterator[ThreadContext]:
        return iter(self._by_tid.values())


class ThreadSwitch:
    """Temporarily switches the registry's current thread."""

    def __init__(self, registry: ThreadRegistry, thread: ThreadContext) -> None:
        self._registry = registry
        self._thread = thread
        self._previous: Optional[ThreadContext] = None

    def __enter__(self) -> ThreadContext:
        self._previous = self._registry._set_current(self._thread)
        return self._thread

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            self._registry._set_current(self._previous)
