"""JIT compilation with operator fusion (the JAX/XLA-like substrate).

JAX poses two problems for profilers (paper §4.1): it has no per-operator
callback hook, and once operators are fused into a compiled executable the
runtime call path of a fused kernel no longer matches the source call path of
the original operators.  This module reproduces both properties:

* tracing a Python function records every original operator together with the
  Python call path where it was written (the *compile-time* call path);
* the fusion pass groups fusable operators into single executables and exposes
  a compilation callback — the stand-in for the lightweight binary
  instrumentation DLMonitor uses to hook the real compiler — through which the
  fused→original mapping can be recorded;
* executing the compiled function launches one kernel per fused group, so the
  runtime call path only shows the jitted call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..gpu import kernels as K
from ..gpu.kernels import KernelSpec
from ..pycontext import capture_user_frames
from .eager import EagerEngine, current_engine, pop_engine, push_engine
from .graph import FusedOperator, Graph, GraphOperator
from .ops import OpCall, registry
from .tensor import Tensor

#: Operator kinds the XLA-style fusion pass merges into single kernels.
FUSABLE_KINDS = {
    "elementwise", "normalization", "softmax", "loss", "conversion",
    "copy", "reduction", "pool",
}

PHASE_TRACE = "trace"
PHASE_FUSION = "fusion"
PHASE_FINALIZE = "finalize"


@dataclass
class CompilationEvent:
    """What compilation callbacks observe after each compiler pass."""

    phase: str
    graph: Graph
    fused_groups: List[FusedOperator] = field(default_factory=list)


CompilationCallback = Callable[[CompilationEvent], None]


class TracingEngine(EagerEngine):
    """An engine that records operators into a graph instead of executing them."""

    execution_mode = "trace"

    def __init__(self, device, graph: Graph) -> None:
        super().__init__(device=device)
        self.graph = graph
        self.training = False

    def op(self, name: str, inputs: Sequence[Tensor], attrs: Optional[Dict[str, Any]] = None,
           _backward_of=None) -> Tensor:
        op_def = registry.get(name)
        attrs = dict(attrs or {})
        tensors = [t for t in inputs if t is not None]
        output = op_def.infer(list(tensors), attrs)
        self.graph.add(GraphOperator(
            op_name=name,
            inputs=list(tensors),
            attrs=attrs,
            output=output,
            compile_time_callpath=capture_user_frames(skip=2),
            scope=self.current_scope,
        ))
        return output


class JitCompiler:
    """Traces, optimises and caches compiled functions for an engine."""

    #: Host-side compile cost per traced operator (seconds of virtual CPU time).
    compile_seconds_per_op = 5e-4
    #: Fixed host-side compile cost per graph.
    compile_seconds_fixed = 0.05

    def __init__(self, engine: EagerEngine) -> None:
        self.engine = engine
        self._compilation_callbacks: List[CompilationCallback] = []
        self.graphs_compiled = 0

    def add_compilation_callback(self, callback: CompilationCallback) -> None:
        """Hook invoked after each compiler pass (DLMonitor's interception point)."""
        if callback not in self._compilation_callbacks:
            self._compilation_callbacks.append(callback)

    def remove_compilation_callback(self, callback: CompilationCallback) -> None:
        if callback in self._compilation_callbacks:
            self._compilation_callbacks.remove(callback)

    # -- tracing -----------------------------------------------------------------

    def trace(self, fn: Callable, args: Sequence[Tensor], name: Optional[str] = None) -> Graph:
        """Abstractly evaluate ``fn`` recording every operator it dispatches."""
        graph = Graph(name=name or getattr(fn, "__name__", "jitted_fn"))
        tracer = TracingEngine(self.engine.device, graph)
        push_engine(tracer)
        try:
            fn(*args)
        finally:
            pop_engine(tracer)
        self._fire(CompilationEvent(phase=PHASE_TRACE, graph=graph))
        return graph

    # -- compilation passes ----------------------------------------------------------

    def compile(self, graph: Graph) -> Graph:
        """Run the fusion pass and build the executable plan."""
        executable: List[object] = []
        pending: List[GraphOperator] = []
        fused_groups: List[FusedOperator] = []

        def flush_pending() -> None:
            if not pending:
                return
            if len(pending) == 1:
                executable.append(pending[0])
            else:
                group = FusedOperator(name=self._fusion_name(pending), members=list(pending))
                fused_groups.append(group)
                executable.append(group)
            pending.clear()

        for operator in graph.operators:
            if operator.kind == "view":
                continue  # views have no kernels; drop them from the executable
            if operator.kind in FUSABLE_KINDS:
                pending.append(operator)
            else:
                flush_pending()
                executable.append(operator)
        flush_pending()

        graph.executable = executable
        graph.compiled = True
        self.graphs_compiled += 1
        self._fire(CompilationEvent(phase=PHASE_FUSION, graph=graph, fused_groups=fused_groups))
        self._fire(CompilationEvent(phase=PHASE_FINALIZE, graph=graph, fused_groups=fused_groups))
        # Charge the host-side compilation cost to the engine's current thread.
        cost = self.compile_seconds_fixed + self.compile_seconds_per_op * graph.num_operators
        self.engine.threads.current.cpu_clock.advance(cost)
        return graph

    # -- execution ---------------------------------------------------------------------

    def execute(self, graph: Graph, with_grad: bool = False) -> None:
        """Launch the compiled executable on the engine's GPU runtime."""
        if not graph.compiled:
            raise RuntimeError("graph has not been compiled")
        for node in graph.executable:
            self._execute_node(node, is_backward=False)
        if with_grad:
            for node in reversed(graph.executable):
                self._execute_node(node, is_backward=True)

    # -- internals ------------------------------------------------------------------------

    def _execute_node(self, node: object, is_backward: bool) -> None:
        if isinstance(node, FusedOperator):
            kernels = self._fused_kernels(node, is_backward)
            if not kernels:
                return
            self.engine.run_kernels(
                f"xla::{node.name}", kernels, inputs=node.members[0].inputs,
                attrs={"members": node.member_names}, is_backward=is_backward,
                kind="fused", cpu_overhead_us=12.0,
            )
            return
        assert isinstance(node, GraphOperator)
        kernels = self._operator_kernels(node, is_backward)
        if not kernels and not is_backward:
            return
        self.engine.run_kernels(
            node.op_name, kernels, inputs=node.inputs, attrs=node.attrs,
            is_backward=is_backward, kind=node.kind, cpu_overhead_us=10.0,
        )

    def _operator_kernels(self, node: GraphOperator, is_backward: bool) -> List[KernelSpec]:
        op_def = registry.get(node.op_name)
        call = OpCall(op=op_def, inputs=node.inputs, attrs=node.attrs, output=node.output,
                      device=self.engine.device, is_backward=is_backward)
        if is_backward:
            return op_def.backward_kernels(call) if op_def.backward_kernels else []
        return op_def.forward_kernels(call)

    def _fused_kernels(self, group: FusedOperator, is_backward: bool) -> List[KernelSpec]:
        """Combine member kernels into a single fused kernel.

        Fusion keeps all the FLOPs but removes the intermediate tensor traffic
        (roughly half the bytes) and collapses many fixed kernel overheads into
        one — which is where the JAX-vs-PyTorch advantage of §6.6 comes from.
        """
        member_kernels: List[KernelSpec] = []
        for member in group.members:
            member_kernels.extend(self._operator_kernels(member, is_backward))
        if not member_kernels:
            return []
        flops = sum(k.flops for k in member_kernels)
        bytes_accessed = sum(k.bytes_accessed for k in member_kernels) * 0.5
        flags = frozenset().union(*(k.flags for k in member_kernels)) | {K.FLAG_FUSED}
        suffix = "_backward" if is_backward else ""
        return [KernelSpec(
            name=f"fusion_{group.name}{suffix}",
            flops=flops,
            bytes_accessed=bytes_accessed,
            threads_per_block=256,
            num_blocks=max(k.num_blocks for k in member_kernels),
            registers_per_thread=max(k.registers_per_thread for k in member_kernels),
            shared_memory_bytes=max(k.shared_memory_bytes for k in member_kernels),
            dtype=member_kernels[0].dtype,
            flags=flags,
            serialization_factor=max(k.serialization_factor for k in member_kernels),
            source_operator=group.name,
        )]

    @staticmethod
    def _fusion_name(members: Sequence[GraphOperator]) -> str:
        shorts = [member.op_name.split("::")[-1] for member in members[:4]]
        suffix = "" if len(members) <= 4 else f"_and_{len(members) - 4}_more"
        return "_".join(shorts) + suffix

    def _fire(self, event: CompilationEvent) -> None:
        for callback in list(self._compilation_callbacks):
            callback(event)


class CompiledFunction:
    """A jitted function: traced and compiled on first call, cached afterwards."""

    def __init__(self, fn: Callable, compiler: JitCompiler, with_grad: bool = False,
                 name: Optional[str] = None) -> None:
        self.fn = fn
        self.compiler = compiler
        self.with_grad = with_grad
        self.name = name or getattr(fn, "__name__", "jitted_fn")
        self.graph: Optional[Graph] = None
        self.calls = 0

    def __call__(self, *args: Tensor) -> None:
        if self.graph is None:
            self.graph = self.compiler.trace(self.fn, args, name=self.name)
            self.compiler.compile(self.graph)
        self.compiler.execute(self.graph, with_grad=self.with_grad)
        self.calls += 1

    @property
    def num_kernels_per_call(self) -> int:
        """Number of executable nodes (≈ kernels) per invocation."""
        if self.graph is None:
            return 0
        count = self.graph.num_executable
        return count * 2 if self.with_grad else count


def jit(fn: Callable, engine: Optional[EagerEngine] = None, with_grad: bool = False,
        compiler: Optional[JitCompiler] = None) -> CompiledFunction:
    """Wrap ``fn`` for JIT execution on ``engine`` (defaults to the active engine)."""
    engine = engine if engine is not None else current_engine()
    compiler = compiler if compiler is not None else JitCompiler(engine)
    return CompiledFunction(fn, compiler, with_grad=with_grad)
