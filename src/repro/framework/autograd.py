"""Autograd tape: sequence IDs and backward scheduling.

The mini framework records every differentiable forward operator on a tape.
Calling :meth:`AutogradTape.backward` replays the tape in reverse on a separate
*backward thread context*, exactly like PyTorch's autograd engine spawns
backward threads per device.  Each forward node carries a *sequence ID* that
its backward operators share — this is the hook DeepContext's
forward/backward association uses to recover Python context for backward
kernels.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .tensor import Tensor


@dataclass
class GraphNode:
    """One differentiable forward operator recorded on the tape."""

    op_name: str
    inputs: List[Tensor]
    output: Tensor
    attrs: Dict[str, Any] = field(default_factory=dict)
    sequence_id: int = 0
    forward_thread_tid: int = 0
    #: Module / semantic scope names active when the op ran (e.g. "loss_fn").
    scope: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"GraphNode({self.op_name!r}, seq={self.sequence_id})"


class AutogradTape:
    """Records forward nodes and replays them (reversed) for the backward pass."""

    def __init__(self) -> None:
        self._nodes: List[GraphNode] = []
        self._sequence = itertools.count(1)
        self.enabled = True

    def next_sequence_id(self) -> int:
        return next(self._sequence)

    def record(self, node: GraphNode) -> None:
        if self.enabled:
            self._nodes.append(node)

    @property
    def nodes(self) -> List[GraphNode]:
        return list(self._nodes)

    def reversed_nodes(self) -> List[GraphNode]:
        return list(reversed(self._nodes))

    def clear(self) -> None:
        self._nodes.clear()

    def __len__(self) -> int:
        return len(self._nodes)

    def find_by_sequence(self, sequence_id: int) -> Optional[GraphNode]:
        for node in self._nodes:
            if node.sequence_id == sequence_id:
                return node
        return None


class no_grad:
    """Context manager disabling tape recording (mirrors ``torch.no_grad``)."""

    def __init__(self, tape: AutogradTape) -> None:
        self._tape = tape
        self._previous = tape.enabled

    def __enter__(self) -> "no_grad":
        self._previous = self._tape.enabled
        self._tape.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tape.enabled = self._previous
