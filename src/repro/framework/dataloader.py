"""Synthetic data loading with worker threads.

Case study 6.4 of the paper finds that U-Net's input pipeline hard-codes 16
data-loading workers on a node with 6 physical CPU cores: the first iteration
spends ~10 seconds loading data from disk while the GPU sits idle, and the
over-subscription adds scheduling overhead.  This module models that
behaviour: the initial load costs a fixed amount of CPU work split across the
configured workers, with a penalty once the worker count exceeds the number of
physical cores; subsequent batches are cheap (prefetched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from .eager import EagerEngine
from .tensor import Tensor
from .threads import THREAD_WORKER, ThreadContext


@dataclass
class DataLoaderStats:
    """Accounting the CPU-latency case study reads back."""

    initial_load_real_seconds: float = 0.0
    initial_load_cpu_seconds: float = 0.0
    batches_produced: int = 0
    num_workers: int = 0
    physical_cores: int = 0


class DataLoader:
    """Produces batches from a ``batch_factory`` using simulated worker threads."""

    #: Seconds of CPU work per worker-visible scheduling penalty unit.
    oversubscription_penalty = 1.0
    #: CPU seconds of per-batch preprocessing once the cache is warm.
    steady_state_batch_seconds = 2e-3

    def __init__(self, batch_factory: Callable[[int], Sequence[Tensor]],
                 num_batches: int, engine: EagerEngine, num_workers: int = 4,
                 physical_cores: int = 6, initial_load_cpu_seconds: float = 30.0) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.batch_factory = batch_factory
        self.num_batches = num_batches
        self.engine = engine
        self.num_workers = num_workers
        self.physical_cores = physical_cores
        self.initial_load_cpu_seconds = initial_load_cpu_seconds
        self.stats = DataLoaderStats(num_workers=num_workers, physical_cores=physical_cores)
        self._workers: List[ThreadContext] = []
        self._loaded = False

    # -- worker management -------------------------------------------------------

    def _ensure_workers(self) -> List[ThreadContext]:
        if not self._workers:
            self._workers = [
                self.engine.threads.create(f"dataloader-worker-{i}", kind=THREAD_WORKER, tied=False)
                for i in range(self.num_workers)
            ]
        return self._workers

    # -- loading ----------------------------------------------------------------------

    def scheduling_overhead_factor(self) -> float:
        """Extra wall-clock factor caused by over-subscribing physical cores."""
        if self.num_workers <= self.physical_cores:
            return 1.0
        excess = (self.num_workers - self.physical_cores) / self.physical_cores
        return 1.0 + self.oversubscription_penalty * excess

    def initial_load(self, data_selection: Optional[Callable[[ThreadContext, float], None]] = None) -> float:
        """Perform the first-iteration disk load; returns the wall-clock cost.

        ``data_selection`` is the user-level function charged with the work; it
        is called once per worker with the worker thread context and that
        worker's share of CPU seconds, so the Python call path observed by the
        profiler points at user code (as it does in the paper's case study).
        """
        if self._loaded:
            return 0.0
        workers = self._ensure_workers()
        per_worker_cpu = self.initial_load_cpu_seconds / self.num_workers
        for worker in workers:
            with self.engine.threads.switch_to(worker):
                if data_selection is not None:
                    data_selection(worker, per_worker_cpu)
                else:
                    worker.cpu_clock.advance(per_worker_cpu)
        effective_parallelism = min(self.num_workers, self.physical_cores)
        real_seconds = (self.initial_load_cpu_seconds / effective_parallelism
                        * self.scheduling_overhead_factor())
        self.engine.machine.wait(real_seconds)
        self.stats.initial_load_real_seconds = real_seconds
        self.stats.initial_load_cpu_seconds = self.initial_load_cpu_seconds
        self._loaded = True
        return real_seconds

    # -- iteration ----------------------------------------------------------------------

    def __iter__(self) -> Iterator[Sequence[Tensor]]:
        for index in range(self.num_batches):
            if not self._loaded:
                self.initial_load()
            self.engine.threads.current.cpu_clock.advance(self.steady_state_batch_seconds)
            self.stats.batches_produced += 1
            yield self.batch_factory(index)

    def __len__(self) -> int:
        return self.num_batches
