"""The operator library of the mini framework.

Each operator used by the AlgoPerf-style workloads is registered here with its
output-shape inference rule and its forward/backward GPU kernel plans.  The
plans encode the behaviours DeepContext's case studies rely on:

* ``aten::index`` backward launches the deterministic, serializing
  ``indexing_backward_kernel`` while ``aten::index_select`` backward uses an
  atomic scatter (case study 6.1);
* ``aten::conv2d`` on a channels-first tensor adds ``nchwToNhwc`` /
  ``nhwcToNchw`` layout-conversion kernels (case study 6.2);
* ``aten::instance_norm`` reuses a warp-32-tuned launch configuration that
  under-utilises warp-64 AMD devices (case study 6.5);
* ``aten::_to_copy`` (``torch.to``) launches a dtype-conversion kernel whose
  instruction samples show constant-memory and math-dependency stalls
  (case study 6.7);
* the unfused cross-entropy path launches separate softmax/copy/nll kernels
  that the kernel-fusion analysis flags (case study 6.3).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from ..gpu import kernels as K
from ..gpu.kernels import KernelSpec
from ..native import symbols as libs
from . import ops as O
from .ops import OpCall, OpDef, registry
from .tensor import CHANNELS_FIRST, Tensor, matmul_output_shape


# ---------------------------------------------------------------------------
# Inference helpers
# ---------------------------------------------------------------------------

def _same_as_first(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like()


def _scalar_like_first(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like(shape=(1,))


def _grad_tensor(call: OpCall) -> Tensor:
    """The gradient flowing into the op's backward pass (shaped like the output)."""
    if call.output is not None:
        return call.output.like(name="grad_output")
    return call.inputs[0].like(name="grad_output")


# ---------------------------------------------------------------------------
# Elementwise operators
# ---------------------------------------------------------------------------

def _register_elementwise(name: str, reads: int = 2, flops: float = 1.0,
                          differentiable: bool = True) -> OpDef:
    short = name.split("::")[-1]

    def forward(call: OpCall) -> List[KernelSpec]:
        out = call.output if call.output is not None else call.inputs[0]
        return [O.elementwise_kernel(
            f"vectorized_elementwise_kernel<{short}>",
            out, call.inputs[:reads], flops_per_element=flops, source=name,
        )]

    def backward(call: OpCall) -> List[KernelSpec]:
        grad = _grad_tensor(call)
        return [O.elementwise_kernel(
            f"vectorized_elementwise_kernel<{short}_backward>",
            grad, [grad], flops_per_element=flops, source=name,
        )]

    return registry.register(OpDef(
        name=name,
        kind="elementwise",
        infer=_same_as_first,
        forward_kernels=forward,
        backward_kernels=backward if differentiable else None,
        differentiable=differentiable,
        cpu_overhead_us=8.0,
    ))


for _name, _reads in (
    ("aten::add", 2), ("aten::sub", 2), ("aten::mul", 2), ("aten::div", 2),
    ("aten::relu", 1), ("aten::gelu", 1), ("aten::silu", 1),
    ("aten::sigmoid", 1), ("aten::tanh", 1), ("aten::dropout", 1),
):
    _register_elementwise(_name, reads=_reads)


def _to_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like(dtype=attrs.get("dtype", inputs[0].dtype))


def _to_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    kernel = O.elementwise_kernel(
        "vectorized_elementwise_kernel<CUDAFunctor_to>",
        out, call.inputs[:1], source="aten::_to_copy",
        extra_flags=(K.FLAG_DTYPE_CONVERSION,),
    )
    return [kernel]


def _to_backward(call: OpCall) -> List[KernelSpec]:
    grad = _grad_tensor(call)
    return [O.elementwise_kernel(
        "vectorized_elementwise_kernel<CUDAFunctor_to_backward>",
        grad, [grad], source="aten::_to_copy",
        extra_flags=(K.FLAG_DTYPE_CONVERSION,),
    )]


registry.register(OpDef(
    name="aten::_to_copy",
    kind="conversion",
    infer=_to_infer,
    forward_kernels=_to_forward,
    backward_kernels=_to_backward,
    cpu_overhead_us=8.0,
))


def _copy_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    return [O.elementwise_kernel("copy_device_to_device", out, call.inputs[:1],
                                 source="aten::copy_")]


registry.register(OpDef(
    name="aten::copy_",
    kind="copy",
    infer=_same_as_first,
    forward_kernels=_copy_forward,
    backward_kernels=_copy_forward,
    cpu_overhead_us=6.0,
))


def _contiguous_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like(memory_format=attrs.get("memory_format", "contiguous"))


registry.register(OpDef(
    name="aten::contiguous",
    kind="copy",
    infer=_contiguous_infer,
    forward_kernels=_copy_forward,
    backward_kernels=_copy_forward,
    cpu_overhead_us=6.0,
))


def _cat_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    dim = attrs.get("dim", 0)
    shape = list(inputs[0].shape)
    shape[dim] = sum(t.shape[dim] for t in inputs)
    return inputs[0].like(shape=shape)


def _cat_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    return [O.elementwise_kernel("CatArrayBatchedCopy", out, call.inputs, source="aten::cat")]


registry.register(OpDef(
    name="aten::cat",
    kind="copy",
    infer=_cat_infer,
    forward_kernels=_cat_forward,
    backward_kernels=_cat_forward,
    cpu_overhead_us=10.0,
))


# View-like operators: no kernels, only host-side dispatch.

def _no_kernels(call: OpCall) -> List[KernelSpec]:
    return []


def _view_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    shape = attrs.get("shape", inputs[0].shape)
    return inputs[0].like(shape=shape)


for _view_name in ("aten::view", "aten::reshape", "aten::permute", "aten::transpose"):
    registry.register(OpDef(
        name=_view_name,
        kind="view",
        infer=_view_infer,
        forward_kernels=_no_kernels,
        backward_kernels=_no_kernels,
        cpu_overhead_us=3.0,
    ))


# ---------------------------------------------------------------------------
# Matrix multiplication / linear
# ---------------------------------------------------------------------------

def _matmul_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like(shape=matmul_output_shape(inputs[0].shape, inputs[1].shape))


def _matmul_dims(call: OpCall) -> Dict[str, int]:
    a, b = call.inputs[0], call.inputs[1]
    m, k = a.shape[-2], a.shape[-1]
    n = b.shape[-1]
    batch = int(math.prod(a.shape[:-2])) if a.ndim > 2 else 1
    return {"m": m, "n": n, "k": k, "batch": batch}


def _matmul_forward(call: OpCall) -> List[KernelSpec]:
    dims = _matmul_dims(call)
    name = "ampere_sgemm_128x128" if call.device.vendor == "nvidia" else "Cijk_Alik_Bljk_SB_MT128x128"
    return [O.matmul_kernel(name, dims["m"], dims["n"], dims["k"], dims["batch"],
                            dtype=call.inputs[0].dtype, source=call.name)]


def _matmul_backward(call: OpCall) -> List[KernelSpec]:
    dims = _matmul_dims(call)
    name = "ampere_sgemm_128x128" if call.device.vendor == "nvidia" else "Cijk_Alik_Bljk_SB_MT128x128"
    return [
        O.matmul_kernel(f"{name}_dgrad", dims["m"], dims["k"], dims["n"], dims["batch"],
                        dtype=call.inputs[0].dtype, source=call.name),
        O.matmul_kernel(f"{name}_wgrad", dims["k"], dims["n"], dims["m"], dims["batch"],
                        dtype=call.inputs[0].dtype, source=call.name),
    ]


for _mm_name in ("aten::matmul", "aten::bmm", "aten::mm"):
    registry.register(OpDef(
        name=_mm_name,
        kind="matmul",
        infer=_matmul_infer,
        forward_kernels=_matmul_forward,
        backward_kernels=_matmul_backward,
        native_symbols=[
            (libs.LIBTORCH_CPU, f"at::_ops::{_mm_name.split('::')[-1]}::call"),
            (libs.LIBTORCH_CUDA, "at::native::cublas_gemm"),
        ],
        cpu_overhead_us=15.0,
    ))


def _linear_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    x, w = inputs[0], inputs[1]
    return x.like(shape=tuple(x.shape[:-1]) + (w.shape[0],))


def _linear_forward(call: OpCall) -> List[KernelSpec]:
    x, w = call.inputs[0], call.inputs[1]
    m = int(math.prod(x.shape[:-1]))
    k = x.shape[-1]
    n = w.shape[0]
    name = "ampere_sgemm_128x64_tn" if call.device.vendor == "nvidia" else "Cijk_Ailk_Bljk_SB_MT128x64"
    kernels = [O.matmul_kernel(name, m, n, k, dtype=x.dtype, source="aten::linear")]
    if len(call.inputs) > 2 and call.inputs[2] is not None:
        out = call.output if call.output is not None else x
        kernels.append(O.elementwise_kernel("vectorized_elementwise_kernel<add_bias>",
                                            out, [], source="aten::linear"))
    return kernels


def _linear_backward(call: OpCall) -> List[KernelSpec]:
    x, w = call.inputs[0], call.inputs[1]
    m = int(math.prod(x.shape[:-1]))
    k = x.shape[-1]
    n = w.shape[0]
    name = "ampere_sgemm_128x64_nt" if call.device.vendor == "nvidia" else "Cijk_Ailk_Bjlk_SB_MT128x64"
    kernels = [
        O.matmul_kernel(f"{name}_dgrad", m, k, n, dtype=x.dtype, source="aten::linear"),
        O.matmul_kernel(f"{name}_wgrad", n, k, m, dtype=x.dtype, source="aten::linear"),
    ]
    if len(call.inputs) > 2 and call.inputs[2] is not None:
        grad = _grad_tensor(call)
        kernels.append(O.reduction_kernel("reduce_kernel<bias_grad>", grad,
                                          rows=max(1, n // 32), source="aten::linear"))
    return kernels


registry.register(OpDef(
    name="aten::linear",
    kind="matmul",
    infer=_linear_infer,
    forward_kernels=_linear_forward,
    backward_kernels=_linear_backward,
    native_symbols=[
        (libs.LIBTORCH_CPU, "at::_ops::linear::call"),
        (libs.LIBTORCH_CUDA, "at::native::addmm_out_cuda"),
    ],
    cpu_overhead_us=18.0,
))


# ---------------------------------------------------------------------------
# Convolution and pooling
# ---------------------------------------------------------------------------

def _conv2d_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    x, w = inputs[0], inputs[1]
    n, _c, h, wd = x.shape
    kernel_size = w.shape[-1]
    stride = attrs.get("stride", 1)
    padding = attrs.get("padding", kernel_size // 2)
    out_h = (h + 2 * padding - kernel_size) // stride + 1
    out_w = (wd + 2 * padding - kernel_size) // stride + 1
    return x.like(shape=(n, w.shape[0], out_h, out_w))


def _conv_backend_prefix(call: OpCall) -> str:
    return "cudnn" if call.device.vendor == "nvidia" else "miopen"


def _conv2d_forward(call: OpCall) -> List[KernelSpec]:
    x, w = call.inputs[0], call.inputs[1]
    out = call.output if call.output is not None else x
    n = x.shape[0]
    kernel_size = w.shape[-1]
    prefix = _conv_backend_prefix(call)
    kernels: List[KernelSpec] = []
    needs_conversion = x.memory_format == CHANNELS_FIRST
    if needs_conversion:
        kernels.append(O.layout_conversion_kernel(f"{prefix}::nchwToNhwcKernel", x,
                                                  source="aten::conv2d"))
    kernels.append(O.conv_kernel(
        f"{prefix}::implicit_convolve_sgemm", n, w.shape[0], w.shape[1], kernel_size,
        out.shape[-2], out.shape[-1], dtype=x.dtype, source="aten::conv2d",
    ))
    if needs_conversion:
        kernels.append(O.layout_conversion_kernel(f"{prefix}::nhwcToNchwKernel", out,
                                                  source="aten::conv2d"))
    if len(call.inputs) > 2 and call.inputs[2] is not None:
        kernels.append(O.elementwise_kernel("vectorized_elementwise_kernel<add_bias>",
                                            out, [], source="aten::conv2d"))
    return kernels


def _conv2d_backward(call: OpCall) -> List[KernelSpec]:
    x, w = call.inputs[0], call.inputs[1]
    out = call.output if call.output is not None else x
    n = x.shape[0]
    kernel_size = w.shape[-1]
    prefix = _conv_backend_prefix(call)
    kernels: List[KernelSpec] = []
    needs_conversion = x.memory_format == CHANNELS_FIRST
    if needs_conversion:
        kernels.append(O.layout_conversion_kernel(f"{prefix}::nchwToNhwcKernel", out,
                                                  source="aten::conv2d"))
    kernels.append(O.conv_kernel(
        f"{prefix}::dgrad_implicit_gemm", n, w.shape[1], w.shape[0], kernel_size,
        x.shape[-2], x.shape[-1], dtype=x.dtype, source="aten::conv2d",
    ))
    kernels.append(O.conv_kernel(
        f"{prefix}::wgrad_implicit_gemm", n, w.shape[0], w.shape[1], kernel_size,
        out.shape[-2], out.shape[-1], dtype=x.dtype, source="aten::conv2d",
    ))
    if needs_conversion:
        kernels.append(O.layout_conversion_kernel(f"{prefix}::nhwcToNchwKernel", x,
                                                  source="aten::conv2d"))
    return kernels


registry.register(OpDef(
    name="aten::conv2d",
    kind="conv",
    infer=_conv2d_infer,
    forward_kernels=_conv2d_forward,
    backward_kernels=_conv2d_backward,
    native_symbols=[
        (libs.LIBTORCH_CPU, "at::_ops::conv2d::call"),
        (libs.LIBTORCH_CUDA, "at::native::cudnn_convolution"),
        (libs.LIBCUDNN, "cudnnConvolutionForward"),
    ],
    cpu_overhead_us=25.0,
))


def _conv1d_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    x, w = inputs[0], inputs[1]
    n, _c, length = x.shape
    kernel_size = w.shape[-1]
    stride = attrs.get("stride", 1)
    padding = attrs.get("padding", kernel_size // 2)
    out_l = (length + 2 * padding - kernel_size) // stride + 1
    return x.like(shape=(n, w.shape[0], out_l))


def _conv1d_forward(call: OpCall) -> List[KernelSpec]:
    x, w = call.inputs[0], call.inputs[1]
    out = call.output if call.output is not None else x
    prefix = _conv_backend_prefix(call)
    return [O.conv_kernel(f"{prefix}::conv1d_implicit_gemm", x.shape[0], w.shape[0],
                          w.shape[1], w.shape[-1], 1, out.shape[-1],
                          dtype=x.dtype, source="aten::conv1d")]


def _conv1d_backward(call: OpCall) -> List[KernelSpec]:
    x, w = call.inputs[0], call.inputs[1]
    out = call.output if call.output is not None else x
    prefix = _conv_backend_prefix(call)
    return [
        O.conv_kernel(f"{prefix}::conv1d_dgrad", x.shape[0], w.shape[1], w.shape[0],
                      w.shape[-1], 1, x.shape[-1], dtype=x.dtype, source="aten::conv1d"),
        O.conv_kernel(f"{prefix}::conv1d_wgrad", x.shape[0], w.shape[0], w.shape[1],
                      w.shape[-1], 1, out.shape[-1], dtype=x.dtype, source="aten::conv1d"),
    ]


registry.register(OpDef(
    name="aten::conv1d",
    kind="conv",
    infer=_conv1d_infer,
    forward_kernels=_conv1d_forward,
    backward_kernels=_conv1d_backward,
    cpu_overhead_us=20.0,
))


def _pool_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    x = inputs[0]
    stride = attrs.get("stride", attrs.get("kernel_size", 2))
    n, c, h, w = x.shape
    return x.like(shape=(n, c, max(1, h // stride), max(1, w // stride)))


def _pool_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    short = call.name.split("::")[-1]
    return [O.elementwise_kernel(f"{short}_nchw_kernel", out, call.inputs[:1],
                                 flops_per_element=4.0, source=call.name)]


def _pool_backward(call: OpCall) -> List[KernelSpec]:
    grad = call.inputs[0].like(name="grad_input")
    short = call.name.split("::")[-1]
    return [O.elementwise_kernel(f"{short}_backward_nchw_kernel", grad, [grad],
                                 flops_per_element=4.0, source=call.name)]


for _pool_name in ("aten::max_pool2d", "aten::avg_pool2d"):
    registry.register(OpDef(
        name=_pool_name,
        kind="pool",
        infer=_pool_infer,
        forward_kernels=_pool_forward,
        backward_kernels=_pool_backward,
        cpu_overhead_us=10.0,
    ))


def _upsample_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    x = inputs[0]
    scale = attrs.get("scale_factor", 2)
    n, c, h, w = x.shape
    return x.like(shape=(n, c, h * scale, w * scale))


def _upsample_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    return [O.elementwise_kernel("upsample_nearest2d_nchw_kernel", out, call.inputs[:1],
                                 source="aten::upsample_nearest2d")]


def _upsample_backward(call: OpCall) -> List[KernelSpec]:
    grad = call.inputs[0].like(name="grad_input")
    return [O.elementwise_kernel("upsample_nearest2d_backward_kernel", grad, [grad],
                                 source="aten::upsample_nearest2d")]


registry.register(OpDef(
    name="aten::upsample_nearest2d",
    kind="pool",
    infer=_upsample_infer,
    forward_kernels=_upsample_forward,
    backward_kernels=_upsample_backward,
    cpu_overhead_us=10.0,
))


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

def _norm_rows(call: OpCall) -> int:
    x = call.inputs[0]
    if x.ndim >= 2:
        return x.shape[0] * x.shape[1]
    return x.shape[0]


def _batch_norm_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return O.normalization_kernels("batch_norm", x, rows=x.shape[1] if x.ndim > 1 else 1,
                                   source="aten::batch_norm")


def _batch_norm_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return O.normalization_kernels("batch_norm_backward", x,
                                   rows=x.shape[1] if x.ndim > 1 else 1,
                                   source="aten::batch_norm")


registry.register(OpDef(
    name="aten::batch_norm",
    kind="normalization",
    infer=_same_as_first,
    forward_kernels=_batch_norm_forward,
    backward_kernels=_batch_norm_backward,
    native_symbols=[
        (libs.LIBTORCH_CPU, "at::_ops::batch_norm::call"),
        (libs.LIBTORCH_CUDA, "at::native::batch_norm_cuda"),
    ],
    cpu_overhead_us=15.0,
))


def _instance_norm_forward(call: OpCall) -> List[KernelSpec]:
    # PyTorch implements instance norm on GPUs by reusing the batch-norm CUDA
    # template with a launch configuration tuned for warp-32 devices
    # (Normalization.cuh); on warp-64 AMD GPUs this yields fewer CTAs and lower
    # parallelism — exactly the anomaly of case study 6.5.
    x = call.inputs[0]
    return O.normalization_kernels(
        "batch_norm", x, rows=_norm_rows(call), threads_per_block=512,
        warp32_tuned=True, source="aten::instance_norm",
    )


def _instance_norm_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return O.normalization_kernels(
        "batch_norm_backward_cuda_template", x, rows=_norm_rows(call),
        threads_per_block=512, warp32_tuned=True, source="aten::instance_norm",
    )


registry.register(OpDef(
    name="aten::instance_norm",
    kind="normalization",
    infer=_same_as_first,
    forward_kernels=_instance_norm_forward,
    backward_kernels=_instance_norm_backward,
    native_symbols=[
        (libs.LIBTORCH_CPU, "at::_ops::instance_norm::call"),
        (libs.LIBTORCH_CUDA, "at::native::batch_norm_cuda_template"),
    ],
    cpu_overhead_us=15.0,
))


def _layer_norm_rows(call: OpCall) -> int:
    x = call.inputs[0]
    return max(1, x.numel // x.shape[-1])


def _layer_norm_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.reduction_kernel("vectorized_layer_norm_kernel", x, rows=_layer_norm_rows(call),
                               source="aten::layer_norm",
                               extra_flags=(K.FLAG_NORMALIZATION,))]


def _layer_norm_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [
        O.reduction_kernel("layer_norm_grad_input_kernel", x, rows=_layer_norm_rows(call),
                           source="aten::layer_norm", extra_flags=(K.FLAG_NORMALIZATION,)),
        O.reduction_kernel("GammaBetaBackwardCUDAKernel", x, rows=max(1, x.shape[-1] // 32),
                           source="aten::layer_norm", extra_flags=(K.FLAG_NORMALIZATION,)),
    ]


for _ln_name in ("aten::layer_norm", "aten::group_norm", "aten::rms_norm"):
    registry.register(OpDef(
        name=_ln_name,
        kind="normalization",
        infer=_same_as_first,
        forward_kernels=_layer_norm_forward,
        backward_kernels=_layer_norm_backward,
        cpu_overhead_us=14.0,
    ))


# ---------------------------------------------------------------------------
# Softmax / losses / reductions
# ---------------------------------------------------------------------------

def _softmax_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    short = call.name.split("::")[-1]
    return [O.reduction_kernel(f"{short}_warp_forward", x, rows=_layer_norm_rows(call),
                               source=call.name, extra_flags=(K.FLAG_SOFTMAX,))]


def _softmax_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    short = call.name.split("::")[-1]
    return [O.reduction_kernel(f"{short}_warp_backward", x, rows=_layer_norm_rows(call),
                               source=call.name, extra_flags=(K.FLAG_SOFTMAX,))]


for _sm_name in ("aten::softmax", "aten::log_softmax"):
    registry.register(OpDef(
        name=_sm_name,
        kind="softmax",
        infer=_same_as_first,
        forward_kernels=_softmax_forward,
        backward_kernels=_softmax_backward,
        cpu_overhead_us=10.0,
    ))


def _nll_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.reduction_kernel("nll_loss_forward_reduce_cuda_kernel_2d", x,
                               rows=max(1, x.shape[0] // 32), source="aten::nll_loss",
                               extra_flags=(K.FLAG_LOSS,))]


def _nll_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.elementwise_kernel("nll_loss_backward_reduce_cuda_kernel_2d", x, [x],
                                 source="aten::nll_loss", extra_flags=(K.FLAG_LOSS,))]


registry.register(OpDef(
    name="aten::nll_loss",
    kind="loss",
    infer=_scalar_like_first,
    forward_kernels=_nll_forward,
    backward_kernels=_nll_backward,
    semantic="loss",
    cpu_overhead_us=12.0,
))


def _mse_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.reduction_kernel("mse_loss_reduce_kernel", x, rows=max(1, x.shape[0]),
                               source="aten::mse_loss", extra_flags=(K.FLAG_LOSS,))]


def _mse_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.elementwise_kernel("mse_loss_backward_kernel", x, [x],
                                 source="aten::mse_loss", extra_flags=(K.FLAG_LOSS,))]


registry.register(OpDef(
    name="aten::mse_loss",
    kind="loss",
    infer=_scalar_like_first,
    forward_kernels=_mse_forward,
    backward_kernels=_mse_backward,
    semantic="loss",
    cpu_overhead_us=12.0,
))


def _fused_cross_entropy_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.reduction_kernel("fused_cross_entropy_forward", x,
                               rows=_layer_norm_rows(call), source="fused::cross_entropy",
                               extra_flags=(K.FLAG_LOSS, K.FLAG_SOFTMAX, K.FLAG_FUSED))]


def _fused_cross_entropy_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    return [O.reduction_kernel("fused_cross_entropy_backward", x,
                               rows=_layer_norm_rows(call), source="fused::cross_entropy",
                               extra_flags=(K.FLAG_LOSS, K.FLAG_SOFTMAX, K.FLAG_FUSED))]


registry.register(OpDef(
    name="fused::cross_entropy",
    kind="loss",
    infer=_scalar_like_first,
    forward_kernels=_fused_cross_entropy_forward,
    backward_kernels=_fused_cross_entropy_backward,
    semantic="loss",
    cpu_overhead_us=14.0,
))


def _reduce_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like(shape=(1,))


def _reduce_forward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    short = call.name.split("::")[-1]
    return [O.reduction_kernel(f"reduce_kernel<{short}>", x,
                               rows=max(1, x.numel // 4096), source=call.name)]


def _reduce_backward(call: OpCall) -> List[KernelSpec]:
    x = call.inputs[0]
    short = call.name.split("::")[-1]
    return [O.elementwise_kernel(f"reduce_backward_kernel<{short}>", x, [],
                                 source=call.name)]


for _red_name in ("aten::sum", "aten::mean"):
    registry.register(OpDef(
        name=_red_name,
        kind="reduction",
        infer=_reduce_infer,
        forward_kernels=_reduce_forward,
        backward_kernels=_reduce_backward,
        cpu_overhead_us=8.0,
    ))


# ---------------------------------------------------------------------------
# Indexing, embedding, scatter
# ---------------------------------------------------------------------------

def _index_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    table, indices = inputs[0], inputs[1]
    return table.like(shape=tuple(indices.shape) + tuple(table.shape[1:]),
                      memory_format="contiguous")


def _index_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    return [O.gather_kernel("index_elementwise_kernel", out, source="aten::index")]


def _index_backward(call: OpCall) -> List[KernelSpec]:
    # Deterministic by default: threads scattering into the same embedding row
    # are serialized (PyTorch issue #41162), which is what case study 6.1 finds.
    grad = _grad_tensor(call)
    duplicate = call.inputs[1].duplicate_fraction if len(call.inputs) > 1 else 0.0
    return [O.scatter_kernel("indexing_backward_kernel", grad, duplicate,
                             deterministic=True, source="aten::index")]


registry.register(OpDef(
    name="aten::index",
    kind="gather",
    infer=_index_infer,
    forward_kernels=_index_forward,
    backward_kernels=_index_backward,
    native_symbols=[
        (libs.LIBTORCH_CPU, "at::_ops::index_Tensor::call"),
        (libs.LIBTORCH_CUDA, "at::native::index_cuda"),
    ],
    cpu_overhead_us=14.0,
))


def _index_select_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    return [O.gather_kernel("index_select_large_index_kernel", out,
                            source="aten::index_select")]


def _index_select_backward(call: OpCall) -> List[KernelSpec]:
    grad = _grad_tensor(call)
    duplicate = call.inputs[1].duplicate_fraction if len(call.inputs) > 1 else 0.0
    return [O.scatter_kernel("index_add_kernel_atomic", grad, duplicate,
                             deterministic=False, source="aten::index_select")]


registry.register(OpDef(
    name="aten::index_select",
    kind="gather",
    infer=_index_infer,
    forward_kernels=_index_select_forward,
    backward_kernels=_index_select_backward,
    cpu_overhead_us=14.0,
))


def _embedding_forward(call: OpCall) -> List[KernelSpec]:
    out = call.output if call.output is not None else call.inputs[0]
    return [O.gather_kernel("embedding_forward_kernel", out, source="aten::embedding")]


def _embedding_backward(call: OpCall) -> List[KernelSpec]:
    grad = _grad_tensor(call)
    duplicate = call.inputs[1].duplicate_fraction if len(call.inputs) > 1 else 0.0
    return [O.scatter_kernel("embedding_dense_backward_kernel", grad, duplicate,
                             deterministic=False, source="aten::embedding")]


registry.register(OpDef(
    name="aten::embedding",
    kind="gather",
    infer=_index_infer,
    forward_kernels=_embedding_forward,
    backward_kernels=_embedding_backward,
    cpu_overhead_us=14.0,
))


def _scatter_add_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[-1].like()


def _scatter_add_forward(call: OpCall) -> List[KernelSpec]:
    src = call.inputs[0]
    duplicate = call.inputs[1].duplicate_fraction if len(call.inputs) > 1 else 0.5
    return [O.scatter_kernel("scatter_add_kernel", src, duplicate,
                             deterministic=False, source="aten::scatter_add")]


def _scatter_add_backward(call: OpCall) -> List[KernelSpec]:
    grad = _grad_tensor(call)
    return [O.gather_kernel("scatter_add_backward_gather", grad,
                            source="aten::scatter_add")]


registry.register(OpDef(
    name="aten::scatter_add",
    kind="scatter",
    infer=_scatter_add_infer,
    forward_kernels=_scatter_add_forward,
    backward_kernels=_scatter_add_backward,
    cpu_overhead_us=14.0,
))


# ---------------------------------------------------------------------------
# Attention
# ---------------------------------------------------------------------------

def _sdpa_infer(inputs: List[Tensor], attrs: Dict[str, Any]) -> Tensor:
    return inputs[0].like()


def _sdpa_dims(call: OpCall) -> Dict[str, int]:
    q = call.inputs[0]
    # (batch, heads, seq, head_dim)
    batch, heads, seq, dim = q.shape
    return {"batch": batch * heads, "seq": seq, "dim": dim}


def _sdpa_forward(call: OpCall) -> List[KernelSpec]:
    d = _sdpa_dims(call)
    q = call.inputs[0]
    scores = q.like(shape=(d["batch"], d["seq"], d["seq"]))
    return [
        O.matmul_kernel("attention_qk_gemm", d["seq"], d["seq"], d["dim"], d["batch"],
                        dtype=q.dtype, source=call.name),
        O.reduction_kernel("softmax_warp_forward", scores, rows=d["batch"] * d["seq"],
                           source=call.name, extra_flags=(K.FLAG_SOFTMAX,)),
        O.matmul_kernel("attention_av_gemm", d["seq"], d["dim"], d["seq"], d["batch"],
                        dtype=q.dtype, source=call.name),
    ]


def _sdpa_backward(call: OpCall) -> List[KernelSpec]:
    d = _sdpa_dims(call)
    q = call.inputs[0]
    scores = q.like(shape=(d["batch"], d["seq"], d["seq"]))
    return [
        O.matmul_kernel("attention_backward_dq_gemm", d["seq"], d["dim"], d["seq"],
                        d["batch"], dtype=q.dtype, source=call.name),
        O.matmul_kernel("attention_backward_dkv_gemm", d["seq"], d["dim"], d["seq"],
                        d["batch"], dtype=q.dtype, source=call.name),
        O.reduction_kernel("softmax_warp_backward", scores, rows=d["batch"] * d["seq"],
                           source=call.name, extra_flags=(K.FLAG_SOFTMAX,)),
    ]


registry.register(OpDef(
    name="aten::scaled_dot_product_attention",
    kind="attention",
    infer=_sdpa_infer,
    forward_kernels=_sdpa_forward,
    backward_kernels=_sdpa_backward,
    cpu_overhead_us=22.0,
))


# ---------------------------------------------------------------------------
# Optimizer steps (non-differentiable, one small kernel per parameter)
# ---------------------------------------------------------------------------

def _optimizer_forward(call: OpCall) -> List[KernelSpec]:
    kernels = []
    short = call.name.split("::")[-1]
    for param in call.inputs:
        kernels.append(O.elementwise_kernel(
            f"multi_tensor_apply_kernel<{short}>", param, [param],
            flops_per_element=4.0, source=call.name,
        ))
    return kernels


for _opt_name in ("optim::sgd_step", "optim::adam_step", "optim::zero_grad"):
    registry.register(OpDef(
        name=_opt_name,
        kind="optimizer",
        infer=_same_as_first,
        forward_kernels=_optimizer_forward,
        backward_kernels=None,
        differentiable=False,
        semantic="optimizer",
        cpu_overhead_us=20.0,
    ))


def op_names() -> List[str]:
    """All operator names registered by this library."""
    return registry.names()
