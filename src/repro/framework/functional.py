"""Functional operator API (the ``torch.nn.functional`` analogue).

Thin wrappers that dispatch to the currently active execution engine.  Model
code written against this API is what the profiler's *Python call path*
captures — these functions (and the modules built on them) are deliberately
ordinary Python so the real interpreter stack is available to DLMonitor.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .eager import current_engine
from .tensor import CHANNELS_LAST, Tensor


def _op(name: str, inputs: Sequence[Optional[Tensor]], **attrs: Any) -> Tensor:
    return current_engine().op(name, [t for t in inputs if t is not None], attrs)


# -- elementwise -----------------------------------------------------------------

def add(a: Tensor, b: Tensor) -> Tensor:
    return _op("aten::add", [a, b])


def sub(a: Tensor, b: Tensor) -> Tensor:
    return _op("aten::sub", [a, b])


def mul(a: Tensor, b: Tensor) -> Tensor:
    return _op("aten::mul", [a, b])


def div(a: Tensor, b: Tensor) -> Tensor:
    return _op("aten::div", [a, b])


def relu(x: Tensor) -> Tensor:
    return _op("aten::relu", [x])


def gelu(x: Tensor) -> Tensor:
    return _op("aten::gelu", [x])


def silu(x: Tensor) -> Tensor:
    return _op("aten::silu", [x])


def sigmoid(x: Tensor) -> Tensor:
    return _op("aten::sigmoid", [x])


def tanh(x: Tensor) -> Tensor:
    return _op("aten::tanh", [x])


def dropout(x: Tensor, p: float = 0.1) -> Tensor:
    return _op("aten::dropout", [x], p=p)


def to(x: Tensor, dtype: str) -> Tensor:
    """Dtype conversion (``tensor.to(dtype)``) — launches a conversion kernel."""
    if x.dtype == dtype:
        return x
    return _op("aten::_to_copy", [x], dtype=dtype)


def contiguous(x: Tensor, memory_format: str = "contiguous") -> Tensor:
    return _op("aten::contiguous", [x], memory_format=memory_format)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    return _op("aten::cat", list(tensors), dim=dim)


def view(x: Tensor, shape: Sequence[int]) -> Tensor:
    return _op("aten::view", [x], shape=tuple(shape))


def reshape(x: Tensor, shape: Sequence[int]) -> Tensor:
    return _op("aten::reshape", [x], shape=tuple(shape))


def transpose(x: Tensor, dim0: int, dim1: int) -> Tensor:
    shape = list(x.shape)
    shape[dim0], shape[dim1] = shape[dim1], shape[dim0]
    return _op("aten::transpose", [x], shape=tuple(shape))


# -- linear algebra -----------------------------------------------------------------

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    return _op("aten::linear", [x, weight, bias])


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return _op("aten::matmul", [a, b])


def bmm(a: Tensor, b: Tensor) -> Tensor:
    return _op("aten::bmm", [a, b])


# -- convolution / pooling ------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Optional[int] = None) -> Tensor:
    if padding is None:
        padding = weight.shape[-1] // 2
    return _op("aten::conv2d", [x, weight, bias], stride=stride, padding=padding)


def conv1d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Optional[int] = None) -> Tensor:
    if padding is None:
        padding = weight.shape[-1] // 2
    return _op("aten::conv1d", [x, weight, bias], stride=stride, padding=padding)


def max_pool2d(x: Tensor, kernel_size: int = 2, stride: Optional[int] = None) -> Tensor:
    return _op("aten::max_pool2d", [x], kernel_size=kernel_size,
               stride=stride if stride is not None else kernel_size)


def avg_pool2d(x: Tensor, kernel_size: int = 2, stride: Optional[int] = None) -> Tensor:
    return _op("aten::avg_pool2d", [x], kernel_size=kernel_size,
               stride=stride if stride is not None else kernel_size)


def upsample_nearest2d(x: Tensor, scale_factor: int = 2) -> Tensor:
    return _op("aten::upsample_nearest2d", [x], scale_factor=scale_factor)


# -- normalization -----------------------------------------------------------------------

def batch_norm(x: Tensor, weight: Optional[Tensor] = None, bias: Optional[Tensor] = None) -> Tensor:
    return _op("aten::batch_norm", [x, weight, bias])


def instance_norm(x: Tensor, weight: Optional[Tensor] = None,
                  bias: Optional[Tensor] = None) -> Tensor:
    return _op("aten::instance_norm", [x, weight, bias])


def layer_norm(x: Tensor, weight: Optional[Tensor] = None, bias: Optional[Tensor] = None) -> Tensor:
    return _op("aten::layer_norm", [x, weight, bias])


def group_norm(x: Tensor, weight: Optional[Tensor] = None, bias: Optional[Tensor] = None) -> Tensor:
    return _op("aten::group_norm", [x, weight, bias])


def rms_norm(x: Tensor, weight: Optional[Tensor] = None) -> Tensor:
    return _op("aten::rms_norm", [x, weight])


# -- softmax and losses ---------------------------------------------------------------------

def softmax(x: Tensor, dim: int = -1) -> Tensor:
    return _op("aten::softmax", [x], dim=dim)


def log_softmax(x: Tensor, dim: int = -1) -> Tensor:
    return _op("aten::log_softmax", [x], dim=dim)


def nll_loss(log_probs: Tensor, targets: Tensor) -> Tensor:
    return _op("aten::nll_loss", [log_probs, targets])


def cross_entropy(logits: Tensor, targets: Tensor, fused: bool = False) -> Tensor:
    """Cross-entropy loss.

    The default (unfused) path mirrors the Transformer-Big ``loss_fn`` of case
    study 6.3: a softmax kernel, a copy kernel and an nll_loss kernel, each
    invoked once per call.  With ``fused=True`` a single fused kernel is
    launched instead (the optimisation the kernel-fusion analysis suggests).
    """
    if fused:
        return _op("fused::cross_entropy", [logits, targets])
    log_probs = log_softmax(logits, dim=-1)
    staged = _op("aten::copy_", [log_probs])
    return nll_loss(staged, targets)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    return _op("aten::mse_loss", [prediction, target])


def sum_(x: Tensor) -> Tensor:
    return _op("aten::sum", [x])


def mean(x: Tensor) -> Tensor:
    return _op("aten::mean", [x])


# -- indexing / embedding ---------------------------------------------------------------------

def index(table: Tensor, indices: Tensor) -> Tensor:
    """Advanced indexing ``table[indices]`` (deterministic backward)."""
    return _op("aten::index", [table, indices])


def index_select(table: Tensor, indices: Tensor, dim: int = 0) -> Tensor:
    """``torch.index_select`` (non-deterministic, atomic backward)."""
    return _op("aten::index_select", [table, indices], dim=dim)


def embedding(table: Tensor, indices: Tensor) -> Tensor:
    return _op("aten::embedding", [table, indices])


def scatter_add(src: Tensor, indices: Tensor, base: Tensor, dim: int = 0) -> Tensor:
    return _op("aten::scatter_add", [src, indices, base], dim=dim)


# -- attention -------------------------------------------------------------------------------------

def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor) -> Tensor:
    return _op("aten::scaled_dot_product_attention", [q, k, v])


# -- optimizer steps -------------------------------------------------------------------------------

def sgd_step(params: List[Tensor], lr: float = 0.01) -> None:
    _op("optim::sgd_step", params, lr=lr)


def adam_step(params: List[Tensor], lr: float = 1e-3) -> None:
    _op("optim::adam_step", params, lr=lr)


def zero_grad(params: List[Tensor]) -> None:
    _op("optim::zero_grad", params)


def channels_last(x: Tensor) -> Tensor:
    """Store a tensor in channels_last layout (case study 6.2 optimisation)."""
    if x.memory_format == CHANNELS_LAST:
        return x
    return contiguous(x, memory_format=CHANNELS_LAST)
