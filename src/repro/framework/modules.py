"""Neural-network modules and optimizers for the mini framework.

Modules mirror ``torch.nn``: they own parameter tensors and compose through
``forward``.  Every ``__call__`` wraps the forward pass in an engine *scope*
carrying the module's name, which is how the profiler and analyzer recognise
semantic regions such as ``loss_fn`` or individual layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from . import functional as F
from .eager import current_engine
from .tensor import CHANNELS_LAST, Tensor, parameter


class Module:
    """Base class for all neural-network modules."""

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name or type(self).__name__
        self._parameters: Dict[str, Tensor] = {}
        self._children: Dict[str, "Module"] = {}

    # -- construction helpers -----------------------------------------------------

    def register_parameter(self, name: str, param: Tensor) -> Tensor:
        param.name = f"{self._name}.{name}"
        self._parameters[name] = param
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        self._children[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and not name.startswith("_"):
            object.__setattr__(self, name, value)
            self._children[name] = value
            return
        object.__setattr__(self, name, value)

    # -- introspection ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    def parameters(self) -> List[Tensor]:
        params = list(self._parameters.values())
        for child in self._children.values():
            params.extend(child.parameters())
        return params

    def named_children(self) -> Dict[str, "Module"]:
        return dict(self._children)

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    # -- execution -----------------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - must be overridden
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        engine = current_engine()
        with engine.scope(self._name):
            return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chains modules, feeding each output into the next module."""

    def __init__(self, *modules: Module, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._ordered: List[Module] = []
        for i, module in enumerate(modules):
            self.add_module(str(i), module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self) -> Iterable[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)


class ModuleList(Module):
    """An indexable list of sub-modules."""

    def __init__(self, modules: Sequence[Module] = (), name: Optional[str] = None) -> None:
        super().__init__(name)
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self.add_module(str(len(self._items)), module)
        self._items.append(module)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterable[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")


# ---------------------------------------------------------------------------
# Basic layers
# ---------------------------------------------------------------------------

class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 dtype: str = "float32", name: Optional[str] = None) -> None:
        super().__init__(name)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter("weight", parameter((out_features, in_features), dtype))
        self.bias = self.register_parameter("bias", parameter((out_features,), dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True,
                 name: Optional[str] = None) -> None:
        super().__init__(name)
        self.stride = stride
        self.padding = padding if padding is not None else kernel_size // 2
        self.weight = self.register_parameter(
            "weight", parameter((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = self.register_parameter("bias", parameter((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Conv1d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.stride = stride
        self.weight = self.register_parameter(
            "weight", parameter((out_channels, in_channels, kernel_size)))
        self.bias = self.register_parameter("bias", parameter((out_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, stride=self.stride)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class SiLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)


class Dropout(Module):
    def __init__(self, p: float = 0.1, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class Upsample(Module):
    def __init__(self, scale_factor: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.scale_factor = scale_factor

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale_factor)


# ---------------------------------------------------------------------------
# Normalization layers
# ---------------------------------------------------------------------------

class BatchNorm2d(Module):
    def __init__(self, channels: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.weight = self.register_parameter("weight", parameter((channels,)))
        self.bias = self.register_parameter("bias", parameter((channels,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.weight, self.bias)


class InstanceNorm2d(Module):
    """Instance normalization.

    ``channels_last_weights`` reflects the U-Net optimisation of case study
    6.2: storing the affine parameters in the channels_last layout removes the
    implicit conversion when the surrounding convolutions run in NHWC.
    """

    def __init__(self, channels: int, channels_last_weights: bool = False,
                 name: Optional[str] = None) -> None:
        super().__init__(name)
        fmt = CHANNELS_LAST if channels_last_weights else "contiguous"
        weight = parameter((channels,))
        bias = parameter((channels,))
        weight.memory_format = fmt
        bias.memory_format = fmt
        self.weight = self.register_parameter("weight", weight)
        self.bias = self.register_parameter("bias", bias)

    def forward(self, x: Tensor) -> Tensor:
        return F.instance_norm(x, self.weight, self.bias)


class LayerNorm(Module):
    def __init__(self, dim: int, channels_last_weights: bool = False,
                 name: Optional[str] = None) -> None:
        super().__init__(name)
        fmt = CHANNELS_LAST if channels_last_weights else "contiguous"
        weight = parameter((dim,))
        bias = parameter((dim,))
        weight.memory_format = fmt
        bias.memory_format = fmt
        self.weight = self.register_parameter("weight", weight)
        self.bias = self.register_parameter("bias", bias)

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias)


class RMSNorm(Module):
    """Llama-style RMS norm; optionally keeps activations in low precision.

    The default implementation up-casts to float32 and back (two ``torch.to``
    conversion kernels), which is the behaviour the fine-grained stall analysis
    flags in case study 6.7.  ``fast_conversion=True`` models the optimised
    variant that fuses the conversions away.
    """

    def __init__(self, dim: int, compute_dtype: str = "float32",
                 fast_conversion: bool = False, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.compute_dtype = compute_dtype
        self.fast_conversion = fast_conversion
        self.weight = self.register_parameter("weight", parameter((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        original_dtype = x.dtype
        if not self.fast_conversion and original_dtype != self.compute_dtype:
            x = F.to(x, self.compute_dtype)
        out = F.rms_norm(x, self.weight)
        if not self.fast_conversion and original_dtype != self.compute_dtype:
            out = F.to(out, original_dtype)
        return out


# ---------------------------------------------------------------------------
# Embedding and attention
# ---------------------------------------------------------------------------

class Embedding(Module):
    """Embedding lookup.

    ``use_index`` selects PyTorch-style advanced indexing (``table[idx]``,
    i.e. ``aten::index`` with a deterministic backward) instead of
    ``aten::embedding`` — the pattern DLRM and the GNN workload exhibit in
    case study 6.1.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 use_index: bool = False, use_index_select: bool = False,
                 name: Optional[str] = None) -> None:
        super().__init__(name)
        self.use_index = use_index
        self.use_index_select = use_index_select
        self.weight = self.register_parameter(
            "weight", parameter((num_embeddings, embedding_dim)))

    def forward(self, indices: Tensor) -> Tensor:
        if self.use_index_select:
            return F.index_select(self.weight, indices)
        if self.use_index:
            return F.index(self.weight, indices)
        return F.embedding(self.weight, indices)


class MultiheadAttention(Module):
    def __init__(self, embed_dim: int, num_heads: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.q_proj = Linear(embed_dim, embed_dim, name="q_proj")
        self.k_proj = Linear(embed_dim, embed_dim, name="k_proj")
        self.v_proj = Linear(embed_dim, embed_dim, name="v_proj")
        self.out_proj = Linear(embed_dim, embed_dim, name="out_proj")

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _dim = x.shape
        head_dim = self.embed_dim // self.num_heads
        q = self.q_proj(x)
        k = self.k_proj(x)
        v = self.v_proj(x)
        q = F.reshape(q, (batch, self.num_heads, seq, head_dim))
        k = F.reshape(k, (batch, self.num_heads, seq, head_dim))
        v = F.reshape(v, (batch, self.num_heads, seq, head_dim))
        attended = F.scaled_dot_product_attention(q, k, v)
        attended = F.reshape(attended, (batch, seq, self.embed_dim))
        return self.out_proj(attended)


class FeedForward(Module):
    def __init__(self, dim: int, hidden_dim: int, activation: str = "gelu",
                 name: Optional[str] = None) -> None:
        super().__init__(name)
        self.up = Linear(dim, hidden_dim, name="up")
        self.down = Linear(hidden_dim, dim, name="down")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        h = self.up(x)
        h = F.gelu(h) if self.activation == "gelu" else F.silu(h)
        return self.down(h)


class TransformerBlock(Module):
    def __init__(self, dim: int, num_heads: int, hidden_dim: Optional[int] = None,
                 norm: str = "layer_norm", name: Optional[str] = None) -> None:
        super().__init__(name)
        hidden_dim = hidden_dim or dim * 4
        self.attention = MultiheadAttention(dim, num_heads, name="attention")
        self.feed_forward = FeedForward(dim, hidden_dim, name="feed_forward")
        if norm == "rms_norm":
            self.norm1: Module = RMSNorm(dim, name="norm1")
            self.norm2: Module = RMSNorm(dim, name="norm2")
        else:
            self.norm1 = LayerNorm(dim, name="norm1")
            self.norm2 = LayerNorm(dim, name="norm2")

    def forward(self, x: Tensor) -> Tensor:
        attended = self.attention(self.norm1(x))
        x = F.add(x, attended)
        fed = self.feed_forward(self.norm2(x))
        return F.add(x, fed)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

class CrossEntropyLoss(Module):
    """Cross-entropy ``loss_fn`` (unfused by default, see case study 6.3)."""

    def __init__(self, fused: bool = False, name: str = "loss_fn") -> None:
        super().__init__(name)
        self.fused = fused

    def forward(self, logits: Tensor, targets: Tensor) -> Tensor:
        return F.cross_entropy(logits, targets, fused=self.fused)


class MSELoss(Module):
    def __init__(self, name: str = "loss_fn") -> None:
        super().__init__(name)

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(prediction, target)


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------

class Optimizer:
    """Base optimizer: owns the parameter list and the ``optimizer`` scope."""

    op_name = "optim::sgd_step"

    def __init__(self, params: Sequence[Tensor], lr: float = 0.01) -> None:
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        engine = current_engine()
        with engine.scope("optimizer"):
            engine.op(self.op_name, self.params, {"lr": self.lr})

    def zero_grad(self) -> None:
        engine = current_engine()
        with engine.scope("optimizer"):
            engine.op("optim::zero_grad", self.params, {})


class SGD(Optimizer):
    op_name = "optim::sgd_step"


class Adam(Optimizer):
    op_name = "optim::adam_step"
