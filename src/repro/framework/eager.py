"""The eager execution engine (PyTorch-like substrate).

The engine is the meeting point of all substrates: it executes operators one by
one, pushes/pops simulated native frames, advances virtual CPU time, launches
kernels on the simulated GPU runtime, maintains the autograd tape, and — most
importantly for this reproduction — exposes ``add_global_callback``, the
equivalent of PyTorch's ``aten::addGlobalCallback`` interface that DLMonitor
uses to intercept framework operations without modifying framework source.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..cpu.clock import MachineClock
from ..gpu.device import AMD, DeviceSpec, get_device
from ..gpu.kernels import KernelSpec
from ..gpu.runtime import GpuRuntime
from ..native import symbols as libs
from ..native.symbols import AddressSpace, standard_address_space
from .autograd import AutogradTape, GraphNode, no_grad
from .ops import OpCall, OpDef, registry
from .tensor import Tensor
from .threads import THREAD_BACKWARD, ThreadContext, ThreadRegistry

PHASE_BEFORE = "before"
PHASE_AFTER = "after"


@dataclass
class CallbackInfo:
    """What a global framework callback observes for one operator execution."""

    op_name: str
    phase: str
    call: OpCall
    sequence_id: Optional[int]
    is_backward: bool
    thread: ThreadContext
    scope: List[str] = field(default_factory=list)


GlobalCallback = Callable[[CallbackInfo], None]

# AMD builds of the framework link against HIP/MIOpen instead of CUDA/cuDNN.
_AMD_LIBRARY_MAP = {
    libs.LIBTORCH_CUDA: libs.LIBTORCH_HIP,
    libs.LIBCUDNN: libs.LIBMIOPEN,
    libs.LIBCUDART: libs.LIBAMDHIP,
}


class EagerEngine:
    """Executes framework operators eagerly on a simulated machine."""

    framework_name = "pytorch"
    execution_mode = "eager"

    def __init__(self, device: Union[str, DeviceSpec] = "a100",
                 machine: Optional[MachineClock] = None,
                 address_space: Optional[AddressSpace] = None) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.machine = machine if machine is not None else MachineClock()
        self.threads = ThreadRegistry(self.machine)
        self.address_space = address_space if address_space is not None else standard_address_space()
        self.runtime = GpuRuntime(self.device, real_time=self.machine.real_time)
        self.tape = AutogradTape()
        self._callbacks: List[GlobalCallback] = []
        self._backward_thread: Optional[ThreadContext] = None
        self._scope_stack: List[str] = []
        self.op_count = 0
        self.kernel_launches = 0
        self.training = True
        self._launch_symbol_cache: Dict[str, object] = {}
        # Seed realistic native stack bases: Python threads sit on top of the
        # interpreter (libpython frames), which is how call-path integration
        # detects the C <-> Python boundary; backward threads are pure C++.
        self._seed_native_stack(self.threads.main)
        self.threads.on_thread_created(self._on_thread_created)

    def _seed_native_stack(self, thread: ThreadContext) -> None:
        libc_main = self.address_space.add_symbol(libs.LIBC, "__libc_start_main")
        py_eval = self.address_space.add_symbol(libs.LIBPYTHON, "PyEval_EvalFrameDefault")
        thread.native_stack.push(libc_main)
        thread.native_stack.push(py_eval)

    def _on_thread_created(self, thread: ThreadContext) -> None:
        if thread.kind != THREAD_BACKWARD:
            self._seed_native_stack(thread)

    # ------------------------------------------------------------------ callbacks

    def add_global_callback(self, callback: GlobalCallback) -> None:
        """Register a callback fired before and after every operator.

        This is the stable interception point DLMonitor relies on for PyTorch
        (``aten::addGlobalCallback``): no framework source modification needed.
        """
        if callback not in self._callbacks:
            self._callbacks.append(callback)

    def remove_global_callback(self, callback: GlobalCallback) -> None:
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    @property
    def has_callbacks(self) -> bool:
        return bool(self._callbacks)

    # ------------------------------------------------------------------ scopes

    @contextlib.contextmanager
    def scope(self, name: str):
        """Annotate a semantic region (module name, ``loss_fn``, ``optimizer``...)."""
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    @property
    def current_scope(self) -> List[str]:
        return list(self._scope_stack)

    # ------------------------------------------------------------------ execution

    def op(self, name: str, inputs: Sequence[Tensor], attrs: Optional[Dict[str, Any]] = None,
           _backward_of: Optional[GraphNode] = None) -> Tensor:
        """Execute operator ``name`` on ``inputs`` and return its output tensor."""
        op_def = registry.get(name)
        attrs = dict(attrs or {})
        inputs = [t for t in inputs if t is not None]
        thread = self.threads.current

        is_backward = _backward_of is not None
        # For backward execution the "output" of the call is the gradient
        # flowing in, which has the shape of the forward output.
        output = op_def.infer(list(inputs), attrs) if not is_backward else _backward_of.output.like()
        requires_grad = (
            not is_backward
            and op_def.differentiable
            and self.tape.enabled
            and self.training
            and any(t.requires_grad for t in inputs)
        )
        sequence_id: Optional[int] = None
        if is_backward:
            sequence_id = _backward_of.sequence_id
        elif requires_grad:
            sequence_id = self.tape.next_sequence_id()

        call = OpCall(
            op=op_def,
            inputs=list(inputs),
            attrs=attrs,
            output=output,
            device=self.device,
            is_backward=is_backward,
            sequence_id=sequence_id,
        )

        pushed = self._push_native_frames(op_def, thread)
        info = CallbackInfo(
            op_name=name, phase=PHASE_BEFORE, call=call, sequence_id=sequence_id,
            is_backward=is_backward, thread=thread, scope=self.current_scope,
        )
        self._fire(info)

        # Host-side dispatch cost.
        thread.cpu_clock.advance(op_def.cpu_overhead_us * 1e-6)

        kernels = (
            op_def.backward_kernels(call) if is_backward and op_def.backward_kernels
            else op_def.forward_kernels(call) if not is_backward
            else []
        )
        for spec in kernels:
            self._launch(spec, thread)

        info_after = CallbackInfo(
            op_name=name, phase=PHASE_AFTER, call=call, sequence_id=sequence_id,
            is_backward=is_backward, thread=thread, scope=self.current_scope,
        )
        self._fire(info_after)
        self._pop_native_frames(pushed, thread)

        if requires_grad:
            output.requires_grad = True
            node = GraphNode(
                op_name=name, inputs=list(inputs), output=output, attrs=attrs,
                sequence_id=sequence_id or 0, forward_thread_tid=thread.tid,
                scope=self.current_scope,
            )
            output.grad_fn = node
            self.tape.record(node)

        self.op_count += 1
        return output

    def run_kernels(self, op_name: str, kernels: Sequence[KernelSpec],
                    inputs: Sequence[Tensor] = (), attrs: Optional[Dict[str, Any]] = None,
                    is_backward: bool = False, sequence_id: Optional[int] = None,
                    native_symbols: Optional[Sequence] = None,
                    cpu_overhead_us: float = 10.0, kind: str = "fused",
                    semantic: str = "compute") -> None:
        """Execute a pre-planned kernel list as one framework-level operation.

        The JIT execution path uses this for fused operators: the kernels were
        decided at compile time, but interception, native frames, CPU cost and
        launches flow through exactly the same machinery as eager operators, so
        DLMonitor observes compiled execution the same way it observes eager
        execution.
        """
        op_def = self._synthetic_op(op_name, kind=kind, semantic=semantic,
                                    native_symbols=native_symbols,
                                    cpu_overhead_us=cpu_overhead_us)
        thread = self.threads.current
        inputs = list(inputs)
        output = inputs[0].like() if inputs else Tensor(shape=(1,))
        call = OpCall(op=op_def, inputs=inputs, attrs=dict(attrs or {}), output=output,
                      device=self.device, is_backward=is_backward, sequence_id=sequence_id)
        pushed = self._push_native_frames(op_def, thread)
        self._fire(CallbackInfo(op_name=op_name, phase=PHASE_BEFORE, call=call,
                                sequence_id=sequence_id, is_backward=is_backward,
                                thread=thread, scope=self.current_scope))
        thread.cpu_clock.advance(op_def.cpu_overhead_us * 1e-6)
        for spec in kernels:
            self._launch(spec, thread)
        self._fire(CallbackInfo(op_name=op_name, phase=PHASE_AFTER, call=call,
                                sequence_id=sequence_id, is_backward=is_backward,
                                thread=thread, scope=self.current_scope))
        self._pop_native_frames(pushed, thread)
        self.op_count += 1

    def _synthetic_op(self, name: str, kind: str, semantic: str,
                      native_symbols: Optional[Sequence], cpu_overhead_us: float) -> OpDef:
        cached = self._launch_symbol_cache.get(f"op:{name}")
        if isinstance(cached, OpDef):
            return cached
        symbols = list(native_symbols) if native_symbols else [
            (libs.LIBXLA, "xla::gpu::GpuExecutable::ExecuteAsyncOnStream"),
            (libs.LIBXLA, f"xla::gpu::{name.replace('::', '_')}"),
        ]
        op_def = OpDef(
            name=name, kind=kind,
            infer=lambda inputs, attrs: inputs[0].like() if inputs else Tensor(shape=(1,)),
            forward_kernels=lambda call: [],
            backward_kernels=None,
            native_symbols=symbols,
            cpu_overhead_us=cpu_overhead_us,
            semantic=semantic,
        )
        self._launch_symbol_cache[f"op:{name}"] = op_def
        return op_def

    def backward(self, loss: Optional[Tensor] = None) -> int:
        """Run the backward pass for every node on the tape (reverse order).

        Backward operators execute on a dedicated backward thread context that
        has no user Python frames, mirroring PyTorch's per-device backward
        threads.  Returns the number of backward operators executed.
        """
        del loss  # the tape holds everything needed; kept for API familiarity
        backward_thread = self._ensure_backward_thread()
        executed = 0
        nodes = self.tape.reversed_nodes()
        with self.threads.switch_to(backward_thread):
            for node in nodes:
                op_def = registry.get(node.op_name)
                if op_def.backward_kernels is None:
                    continue
                self.op(node.op_name, node.inputs, node.attrs, _backward_of=node)
                executed += 1
        self.tape.clear()
        return executed

    def no_grad(self) -> no_grad:
        return no_grad(self.tape)

    def synchronize(self) -> float:
        """Wait for the GPU to drain (advances real time); returns the wait."""
        return self.runtime.synchronize()

    def elapsed_real_time(self) -> float:
        """Virtual end-to-end time of everything executed so far."""
        return self.machine.real_time.now

    # ------------------------------------------------------------------ internals

    def _ensure_backward_thread(self) -> ThreadContext:
        if self._backward_thread is None:
            self._backward_thread = self.threads.create("backward-0", kind=THREAD_BACKWARD)
        return self._backward_thread

    @property
    def backward_thread(self) -> Optional[ThreadContext]:
        return self._backward_thread

    def _map_library(self, library: str) -> str:
        if self.device.vendor == AMD:
            return _AMD_LIBRARY_MAP.get(library, library)
        return library

    def _push_native_frames(self, op_def: OpDef, thread: ThreadContext) -> int:
        pushed = 0
        for library, symbol_name in op_def.native_symbols:
            library = self._map_library(library)
            symbol = self.address_space.add_symbol(library, symbol_name)
            thread.native_stack.push(symbol)
            pushed += 1
        return pushed

    def _pop_native_frames(self, count: int, thread: ThreadContext) -> None:
        for _ in range(count):
            thread.native_stack.pop()

    def _launch(self, spec: KernelSpec, thread: ThreadContext) -> None:
        launch_library = self._map_library(libs.LIBCUDART)
        launch_symbol = self.address_space.add_symbol(launch_library, self.runtime.api_name_launch)
        thread.native_stack.push(launch_symbol)
        thread.cpu_clock.advance(self.device.launch_latency_us * 1e-6)
        self.runtime.launch_kernel(spec)
        self.kernel_launches += 1
        thread.native_stack.pop()

    def _fire(self, info: CallbackInfo) -> None:
        for callback in list(self._callbacks):
            callback(info)

    # ------------------------------------------------------------------ context management

    def __enter__(self) -> "EagerEngine":
        push_engine(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_engine(self)


# A stack of active engines so nested ``with engine:`` blocks behave sanely.
_engine_stack: List[EagerEngine] = []


def push_engine(engine: EagerEngine) -> None:
    _engine_stack.append(engine)


def pop_engine(engine: EagerEngine) -> None:
    if _engine_stack and _engine_stack[-1] is engine:
        _engine_stack.pop()
    elif engine in _engine_stack:
        _engine_stack.remove(engine)


def current_engine() -> EagerEngine:
    """The innermost active engine (raises if none is active)."""
    if not _engine_stack:
        raise RuntimeError("no active engine: wrap model code in `with engine:`")
    return _engine_stack[-1]


def has_current_engine() -> bool:
    return bool(_engine_stack)
