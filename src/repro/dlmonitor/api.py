"""The DLMonitor shim layer (paper §4.1).

DLMonitor sits between profilers and deep-learning frameworks: it intercepts
framework operations and GPU runtime APIs, converts them into a
framework-agnostic event format, and assembles unified call paths on demand.
The four core APIs of the paper are provided both as methods of
:class:`DLMonitor` and as module-level functions with the paper's C-style
names (``dlmonitor_init``, ``dlmonitor_callback_register``,
``dlmonitor_callpath_get``, ``dlmonitor_finalize``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..framework.eager import CallbackInfo, EagerEngine, PHASE_BEFORE
from ..framework.jit import CompilationEvent, JitCompiler, PHASE_FUSION
from ..framework.threads import THREAD_BACKWARD, ThreadContext
from ..gpu.cupti import GpuTracingApi
from ..gpu.roctracer import tracing_api_for
from ..gpu.runtime import ApiCallbackData, ApiPhase
from ..native.unwinder import Unwinder
from ..pycontext import capture_user_frames
from .association import ForwardBackwardAssociator, ForwardRecord
from .audit import CustomDriverInterceptor, LibraryAuditor, parse_interception_config
from .cache import CachedPrefix, CallPathCache
from .callpath import CallPath
from .domains import (
    DLMONITOR_FRAMEWORK,
    DLMONITOR_GPU,
    EVENT_COMPILATION,
    EVENT_OPERATOR,
    PHASE_ENTER,
    PHASE_EXIT,
    FrameworkEvent,
    GpuEvent,
)
from .fusion_map import FusionMap, OriginalOperator
from .integration import CallPathBuilder, CallPathSources, GpuLeafContext
from .shadow_stack import ShadowEntry, ShadowStackRegistry

FrameworkCallback = Callable[[FrameworkEvent], None]
GpuCallback = Callable[[GpuEvent], None]


@dataclass
class DLMonitorStats:
    """Bookkeeping used by tests and the overhead evaluation."""

    framework_events: int = 0
    gpu_events: int = 0
    compilation_events: int = 0
    callpaths_built: int = 0
    python_captures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "framework_events": self.framework_events,
            "gpu_events": self.gpu_events,
            "compilation_events": self.compilation_events,
            "callpaths_built": self.callpaths_built,
            "python_captures": self.python_captures,
        }


class DLMonitor:
    """The shim layer between the profiler and the (simulated) framework."""

    def __init__(self, engine: EagerEngine, jit_compiler: Optional[JitCompiler] = None,
                 program_name: str = "program", enable_callpath_cache: bool = True,
                 interception_config: Optional[Dict[str, object]] = None) -> None:
        self.engine = engine
        self.jit_compiler = jit_compiler
        self.program_name = program_name
        self.enable_callpath_cache = enable_callpath_cache

        self.auditor = LibraryAuditor(engine.address_space)
        self.unwinder = Unwinder(engine.address_space)
        self.builder = CallPathBuilder(self.auditor, self.unwinder, program_name)
        self.shadow_stacks = ShadowStackRegistry()
        self.associator = ForwardBackwardAssociator()
        self.cache = CallPathCache()
        self.fusion_map = FusionMap()
        self.tracing_api: GpuTracingApi = tracing_api_for(engine.runtime)
        self.stats = DLMonitorStats()

        self._framework_callbacks: List[FrameworkCallback] = []
        self._gpu_callbacks: List[GpuCallback] = []
        self._gpu_leaf: Dict[int, GpuLeafContext] = {}
        self._initialized = False
        self._custom_interceptor: Optional[CustomDriverInterceptor] = None
        if interception_config:
            configs = parse_interception_config(interception_config)
            self._custom_interceptor = CustomDriverInterceptor(engine.runtime, configs)

    # ------------------------------------------------------------------ lifecycle

    def init(self) -> "DLMonitor":
        """Load the shim: hook the framework, the GPU runtime and the JIT compiler."""
        if self._initialized:
            return self
        self.engine.add_global_callback(self._on_framework_event)
        self.tracing_api.subscribe(self._on_gpu_api)
        if self.jit_compiler is not None:
            self.jit_compiler.add_compilation_callback(self._on_compilation)
        if self._custom_interceptor is not None:
            self._custom_interceptor.install(self._on_gpu_api)
        self._initialized = True
        return self

    def finalize(self) -> None:
        """Disable monitoring and release every interception."""
        if not self._initialized:
            return
        self.engine.remove_global_callback(self._on_framework_event)
        self.tracing_api.finalize()
        if self.jit_compiler is not None:
            self.jit_compiler.remove_compilation_callback(self._on_compilation)
        if self._custom_interceptor is not None:
            self._custom_interceptor.uninstall()
        self._framework_callbacks.clear()
        self._gpu_callbacks.clear()
        self._gpu_leaf.clear()
        self.cache.clear()
        self._initialized = False

    @property
    def initialized(self) -> bool:
        return self._initialized

    # ------------------------------------------------------------------ registration

    def callback_register(self, domain: str, callback) -> None:
        """Register a profiler callback for ``DLMONITOR_FRAMEWORK`` or ``DLMONITOR_GPU``."""
        if domain == DLMONITOR_FRAMEWORK:
            if callback not in self._framework_callbacks:
                self._framework_callbacks.append(callback)
        elif domain == DLMONITOR_GPU:
            if callback not in self._gpu_callbacks:
                self._gpu_callbacks.append(callback)
        else:
            raise ValueError(f"unknown DLMonitor domain: {domain!r}")

    def callback_unregister(self, domain: str, callback) -> None:
        if domain == DLMONITOR_FRAMEWORK and callback in self._framework_callbacks:
            self._framework_callbacks.remove(callback)
        elif domain == DLMONITOR_GPU and callback in self._gpu_callbacks:
            self._gpu_callbacks.remove(callback)

    # ------------------------------------------------------------------ call paths

    def callpath_get(self, sources: Optional[CallPathSources] = None,
                     thread: Optional[ThreadContext] = None) -> CallPath:
        """Construct the unified multi-layer call path for ``thread`` (default: current)."""
        sources = sources if sources is not None else CallPathSources.all()
        thread = thread if thread is not None else self.engine.threads.current
        tid = thread.tid
        stack = self.shadow_stacks.for_thread(tid)

        cached_prefix: Optional[CachedPrefix] = None
        if self.enable_callpath_cache:
            cached_prefix = self.cache.lookup(tid)

        python_triples = ()
        if sources.python and thread.has_python_context:
            if cached_prefix is not None:
                python_triples = cached_prefix.python_callpath
            else:
                python_triples = tuple(capture_user_frames(skip=2))
                self.stats.python_captures += 1

        forward_record: Optional[ForwardRecord] = None
        if thread.kind == THREAD_BACKWARD:
            top = stack.top()
            if top is not None:
                forward_record = self.associator.lookup(top.sequence_id)

        gpu_leaf = self._gpu_leaf.get(tid) if sources.gpu else None

        path = self.builder.build(
            thread=thread,
            shadow_stack=stack,
            python_triples=python_triples,
            sources=sources,
            gpu_leaf=gpu_leaf,
            cached_prefix=cached_prefix,
            forward_record=forward_record,
        )
        self.stats.callpaths_built += 1
        return path

    # ------------------------------------------------------------------ framework interception

    def _on_framework_event(self, info: CallbackInfo) -> None:
        thread = info.thread
        tid = thread.tid
        stack = self.shadow_stacks.for_thread(tid)

        if info.phase == PHASE_BEFORE:
            python_triples = ()
            if thread.has_python_context:
                python_triples = tuple(capture_user_frames(skip=2))
                self.stats.python_captures += 1
            # The operator's dispatch frame is the outermost native frame the
            # framework pushed for this operator (e.g. ``at::_ops::conv2d::call``);
            # its address is what the shadow stack records as the operator's
            # "memory location" for call-path integration.
            native_frames = thread.native_stack.frames
            pushed = len(info.call.op.native_symbols)
            dispatch_index = max(0, len(native_frames) - pushed)
            if native_frames:
                dispatch_index = min(dispatch_index, len(native_frames) - 1)
                dispatch_pc = native_frames[dispatch_index].pc
            else:
                dispatch_pc = 0
            entry = ShadowEntry(
                op_name=info.op_name,
                is_backward=info.is_backward,
                sequence_id=info.sequence_id,
                dispatch_pc=dispatch_pc,
                python_callpath=python_triples,
                scope=tuple(info.scope),
            )
            stack.push(entry)
            if not info.is_backward:
                self.associator.record_forward(info.sequence_id, info.op_name, tid,
                                               python_triples, tuple(info.scope))
            if self.enable_callpath_cache:
                self.cache.store(tid, CachedPrefix(
                    op_name=info.op_name,
                    dispatch_pc=dispatch_pc,
                    python_callpath=python_triples,
                    scope=tuple(info.scope),
                    is_backward=info.is_backward,
                    sequence_id=info.sequence_id,
                ))
            self._dispatch_framework(info, PHASE_ENTER)
        else:
            self._dispatch_framework(info, PHASE_EXIT)
            if stack.depth:
                stack.pop()
            if self.enable_callpath_cache and stack.depth == 0:
                self.cache.invalidate(tid)

    def _dispatch_framework(self, info: CallbackInfo, phase: str) -> None:
        self.stats.framework_events += 1
        if not self._framework_callbacks:
            return
        event = FrameworkEvent(
            kind=EVENT_OPERATOR,
            phase=phase,
            op_name=info.op_name,
            is_backward=info.is_backward,
            sequence_id=info.sequence_id,
            thread_tid=info.thread.tid,
            scope=list(info.scope),
            attrs=dict(info.call.attrs),
            input_bytes=info.call.input_bytes(),
            output_bytes=info.call.output.nbytes if info.call.output is not None else 0,
            framework=self.engine.framework_name,
        )
        for callback in list(self._framework_callbacks):
            callback(event)

    # ------------------------------------------------------------------ GPU interception

    def _on_gpu_api(self, data: ApiCallbackData) -> None:
        thread = self.engine.threads.current
        tid = thread.tid
        kernel_name = data.kernel_function.name if data.kernel_function is not None else ""
        if data.phase == ApiPhase.ENTER:
            self._gpu_leaf[tid] = GpuLeafContext(
                api_name=data.api_name,
                kernel_name=kernel_name,
                library="libcudart.so" if data.api_name.startswith("cuda") else "libamdhip64.so",
                device=data.device,
            )
        self.stats.gpu_events += 1
        event = GpuEvent(
            api_name=data.api_name,
            phase=PHASE_ENTER if data.phase == ApiPhase.ENTER else PHASE_EXIT,
            correlation_id=data.correlation_id,
            device=data.device,
            kernel_name=kernel_name,
            stream=data.stream,
            bytes=data.bytes,
            kind=data.kind,
            thread_tid=tid,
        )
        for callback in list(self._gpu_callbacks):
            callback(event)
        if data.phase == ApiPhase.EXIT:
            self._gpu_leaf.pop(tid, None)

    # ------------------------------------------------------------------ JIT interception

    def _on_compilation(self, event: CompilationEvent) -> None:
        self.stats.compilation_events += 1
        if event.phase != PHASE_FUSION:
            return
        for group in event.fused_groups:
            originals = [
                OriginalOperator(
                    op_name=member.op_name,
                    node_id=member.node_id,
                    compile_time_callpath=tuple(member.compile_time_callpath),
                    scope=tuple(member.scope),
                )
                for member in group.members
            ]
            self.fusion_map.record(f"xla::{group.name}", event.graph.name, originals)
        if self._framework_callbacks:
            framework_event = FrameworkEvent(
                kind=EVENT_COMPILATION,
                phase=PHASE_EXIT,
                op_name=event.graph.name,
                attrs={
                    "num_operators": event.graph.num_operators,
                    "num_fused_groups": len(event.fused_groups),
                },
                framework="jax",
            )
            for callback in list(self._framework_callbacks):
                callback(framework_event)


# ---------------------------------------------------------------------------
# Paper-style C API wrappers
# ---------------------------------------------------------------------------

def dlmonitor_init(engine: EagerEngine, jit_compiler: Optional[JitCompiler] = None,
                   program_name: str = "program", enable_callpath_cache: bool = True,
                   interception_config: Optional[Dict[str, object]] = None) -> DLMonitor:
    """Initialise DLMonitor's shared library (the ``LD_PRELOAD`` entry point)."""
    monitor = DLMonitor(engine, jit_compiler=jit_compiler, program_name=program_name,
                        enable_callpath_cache=enable_callpath_cache,
                        interception_config=interception_config)
    return monitor.init()


def dlmonitor_callback_register(monitor: DLMonitor, domain: str, callback) -> None:
    """Register a profiler callback in ``domain`` (framework or GPU)."""
    monitor.callback_register(domain, callback)


def dlmonitor_callpath_get(monitor: DLMonitor, sources: Optional[CallPathSources] = None,
                           thread: Optional[ThreadContext] = None) -> CallPath:
    """Construct and return the unified multi-layer call path."""
    return monitor.callpath_get(sources=sources, thread=thread)


def dlmonitor_finalize(monitor: DLMonitor) -> None:
    """Disable DLMonitor monitoring and release all interceptions."""
    monitor.finalize()
