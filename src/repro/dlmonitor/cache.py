"""Call-path caching (paper §4.1, "Optimizations").

Many deep-learning operators launch several GPU kernels that share the same
Python and operator call path.  DLMonitor therefore caches, per thread, the
Python call path and the operator frame captured when the operator was first
entered; subsequent GPU API callbacks from the same operator reuse the cached
prefix.  Two modes exist:

* without native call-path collection, the cached Python path is concatenated
  with the shadow operator stack and the GPU API/kernel frames directly;
* with native collection, unwinding proceeds bottom-up only until the cached
  operator's dispatch frame is reached, then the cached prefix is reused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..pycontext import PyFrame


@dataclass
class CachedPrefix:
    """The cached context of the operator currently executing on a thread."""

    op_name: str
    dispatch_pc: int
    python_callpath: Tuple[PyFrame, ...]
    scope: Tuple[str, ...]
    is_backward: bool = False
    sequence_id: Optional[int] = None


class CallPathCache:
    """Per-thread cache of the current operator's call-path prefix."""

    def __init__(self) -> None:
        self._by_thread: Dict[int, CachedPrefix] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def store(self, tid: int, prefix: CachedPrefix) -> None:
        """Cache the prefix for a thread (called when an operator is entered)."""
        self._by_thread[tid] = prefix

    def lookup(self, tid: int) -> Optional[CachedPrefix]:
        prefix = self._by_thread.get(tid)
        if prefix is not None:
            self.hits += 1
        else:
            self.misses += 1
        return prefix

    def peek(self, tid: int) -> Optional[CachedPrefix]:
        """Look without affecting hit/miss statistics."""
        return self._by_thread.get(tid)

    def invalidate(self, tid: int) -> None:
        """Drop the cached prefix (called when the operator exits)."""
        if tid in self._by_thread:
            del self._by_thread[tid]
            self.invalidations += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._by_thread.clear()
