"""Call-path integration: assembling the unified multi-layer call path.

This is the key innovation of DLMonitor (paper §4.1, "Call Path Integration"):
the Python call path, the framework operator shadow stack and the native C/C++
call path are merged into a single root→leaf call path, optionally extended
with the GPU API and GPU kernel frames at a kernel-launch callback.

The integration rules follow the paper:

* the native call path is traversed bottom-up; a native frame whose program
  counter matches a recorded operator dispatch address causes the operator
  frame to be inserted under its caller;
* native frames that fall inside ``libpython``'s address range are replaced by
  the Python call path (they are the interpreter executing the user's code);
* on backward threads (no Python context) the forward operator's Python and
  framework context — found through the sequence-ID association — is grafted
  in front of the backward native call path;
* at a GPU kernel launch, the GPU API frame and the kernel name are appended
  at the leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..framework.threads import ThreadContext
from ..native.unwinder import NativeFrame, Unwinder
from ..pycontext import PyFrame
from .association import ForwardRecord
from .audit import LibraryAuditor
from .cache import CachedPrefix
from .callpath import (
    CallPath,
    Frame,
    framework_frame,
    gpu_api_frame,
    gpu_kernel_frame,
    native_frame,
    python_frames_from_triples,
    scope_frame,
    root_frame,
    thread_frame,
)
from .shadow_stack import ShadowStack


@dataclass(frozen=True)
class CallPathSources:
    """Which call-path sources to integrate (``dlmonitor_callpath_get`` argument).

    Disabling sources reduces overhead; the paper's evaluation compares the
    full configuration against the variant without native C/C++ frames.
    """

    python: bool = True
    framework: bool = True
    native: bool = True
    gpu: bool = True

    @classmethod
    def all(cls) -> "CallPathSources":
        return cls(True, True, True, True)

    @classmethod
    def without_native(cls) -> "CallPathSources":
        return cls(python=True, framework=True, native=False, gpu=True)

    @classmethod
    def python_only(cls) -> "CallPathSources":
        return cls(python=True, framework=False, native=False, gpu=False)


@dataclass
class GpuLeafContext:
    """GPU API/kernel information appended at a kernel-launch callback."""

    api_name: str
    kernel_name: str = ""
    library: str = ""
    device: str = ""


class CallPathBuilder:
    """Builds unified call paths for a thread from the configured sources."""

    def __init__(self, auditor: LibraryAuditor, unwinder: Unwinder,
                 program_name: str = "program") -> None:
        self.auditor = auditor
        self.unwinder = unwinder
        self.program_name = program_name
        self.paths_built = 0
        # The (root, thread) prefix of a thread's paths never changes; frames
        # are immutable, so one shared pair per tid serves every build — this
        # is a per-event path (every sample, launch and operator callback).
        self._thread_prefixes: Dict[int, Tuple[Frame, Frame]] = {}

    def build(
        self,
        thread: ThreadContext,
        shadow_stack: ShadowStack,
        python_triples: Sequence[PyFrame],
        sources: CallPathSources,
        gpu_leaf: Optional[GpuLeafContext] = None,
        cached_prefix: Optional[CachedPrefix] = None,
        forward_record: Optional[ForwardRecord] = None,
    ) -> CallPath:
        """Assemble the unified call path for ``thread``."""
        prefix = self._thread_prefixes.get(thread.tid)
        if prefix is None:
            prefix = (root_frame(self.program_name), thread_frame(thread.name, thread.tid))
            self._thread_prefixes[thread.tid] = prefix
        frames: List[Frame] = list(prefix)

        python_part = self._python_part(thread, python_triples, sources,
                                         cached_prefix, forward_record)
        framework_part = self._framework_part(shadow_stack, sources, forward_record)

        if sources.native and thread.native_stack.depth:
            frames.extend(self._integrate_native(thread, shadow_stack, python_part,
                                                 framework_part, cached_prefix,
                                                 include_operators=sources.framework))
        else:
            frames.extend(python_part)
            frames.extend(framework_part)

        if sources.gpu and gpu_leaf is not None:
            frames.append(gpu_api_frame(gpu_leaf.api_name, library=gpu_leaf.library))
            if gpu_leaf.kernel_name:
                frames.append(gpu_kernel_frame(gpu_leaf.kernel_name, device=gpu_leaf.device))

        self.paths_built += 1
        return CallPath.of(frames)

    # -- parts ---------------------------------------------------------------------

    def _python_part(self, thread: ThreadContext, python_triples: Sequence[PyFrame],
                     sources: CallPathSources, cached_prefix: Optional[CachedPrefix],
                     forward_record: Optional[ForwardRecord]) -> List[Frame]:
        if not sources.python:
            return []
        if thread.has_python_context:
            triples = tuple(python_triples)
            if not triples and cached_prefix is not None:
                triples = cached_prefix.python_callpath
            return python_frames_from_triples(triples)
        # Backward / detached thread: graft the forward operator's Python path.
        if forward_record is not None:
            return python_frames_from_triples(forward_record.python_callpath)
        return []

    def _framework_part(self, shadow_stack: ShadowStack, sources: CallPathSources,
                        forward_record: Optional[ForwardRecord]) -> List[Frame]:
        if not sources.framework:
            return []
        frames: List[Frame] = []
        if forward_record is not None:
            for scope_name in forward_record.scope:
                frames.append(scope_frame(scope_name))
            frames.append(framework_frame(forward_record.op_name, backward=False))
        for entry in shadow_stack.entries:
            for scope_name in entry.scope:
                scope = scope_frame(scope_name)
                scope_identity = scope.identity()
                if not any(f.identity() == scope_identity for f in frames):
                    frames.append(scope)
            frames.append(framework_frame(entry.op_name, backward=entry.is_backward))
        return frames

    def _integrate_native(self, thread: ThreadContext, shadow_stack: ShadowStack,
                          python_part: List[Frame], framework_part: List[Frame],
                          cached_prefix: Optional[CachedPrefix],
                          include_operators: bool = True) -> List[Frame]:
        """Merge native frames with the Python and framework parts.

        The native stack is unwound bottom-up (``unw_step``-style).  When call-
        path caching is active the unwind stops as soon as the cached
        operator's dispatch frame is reached; the cached prefix stands in for
        everything above it.
        """
        cursor = self.unwinder.cursor(thread.native_stack)
        collected: List[Tuple[NativeFrame, Optional[Frame]]] = []
        stop_pc = cached_prefix.dispatch_pc if cached_prefix is not None else None
        reached_python_boundary = False

        for frame in cursor:
            operator_frame: Optional[Frame] = None
            if include_operators:
                entry = shadow_stack.find_by_pc(frame.pc)
                if entry is not None:
                    operator_frame = framework_frame(entry.op_name, backward=entry.is_backward)
            if self.auditor.is_python_frame_pc(frame.pc):
                # Everything above this point is the interpreter: it is
                # represented by the Python call path instead.
                reached_python_boundary = True
                break
            collected.append((frame, operator_frame))
            if stop_pc is not None and frame.pc == stop_pc:
                break
        self.unwinder.charge(cursor)

        # ``collected`` is bottom-up; emit top-down with operator frames
        # inserted under their caller (i.e. just before the matching native
        # frame in top-down order).
        native_top_down: List[Frame] = []
        for frame, operator_frame in reversed(collected):
            if operator_frame is not None:
                native_top_down.append(operator_frame)
            native_top_down.append(native_frame(frame.function, frame.library, frame.pc))

        merged: List[Frame] = []
        merged.extend(python_part)
        # Framework scope frames (module names) come from the shadow stack and
        # have no native address; keep them between Python and native parts.
        scope_frames = [f for f in framework_part if f.tag == "scope"]
        merged.extend(scope_frames)
        inserted_ops = {f.identity() for f in native_top_down}
        for frame in framework_part:
            if frame.tag != "scope" and frame.identity() not in inserted_ops:
                merged.append(frame)
        if not reached_python_boundary and not python_part:
            # Pure native thread with no Python context at all: nothing to graft.
            pass
        merged.extend(native_top_down)
        return merged
