"""Forward/backward operator association.

In PyTorch the backward pass runs on dedicated backward threads whose native
call paths contain no Python source — DeepContext recovers the lost context
by recording, for every forward operator, its sequence ID together with its
Python and framework call path; backward operators carry the same sequence ID,
so the backward thread can look up the forward context and graft it onto its
own native call path (paper §4.1, "Forward and backward operator
association", and case study 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..pycontext import PyFrame


@dataclass(frozen=True)
class ForwardRecord:
    """Forward-side context stored per sequence ID."""

    sequence_id: int
    op_name: str
    thread_tid: int
    python_callpath: Tuple[PyFrame, ...]
    scope: Tuple[str, ...]


class ForwardBackwardAssociator:
    """Records forward contexts and resolves them from backward threads."""

    def __init__(self, max_records: int = 100_000) -> None:
        self.max_records = max_records
        self._records: Dict[int, ForwardRecord] = {}
        self.lookups = 0
        self.hits = 0

    def record_forward(self, sequence_id: Optional[int], op_name: str, thread_tid: int,
                       python_callpath: Tuple[PyFrame, ...], scope: Tuple[str, ...]) -> None:
        """Store the forward context of an operator keyed by its sequence ID."""
        if sequence_id is None:
            return
        if len(self._records) >= self.max_records:
            # Drop the oldest record; sequence IDs are monotonically increasing.
            oldest = min(self._records)
            del self._records[oldest]
        self._records[sequence_id] = ForwardRecord(
            sequence_id=sequence_id,
            op_name=op_name,
            thread_tid=thread_tid,
            python_callpath=tuple(python_callpath),
            scope=tuple(scope),
        )

    def lookup(self, sequence_id: Optional[int]) -> Optional[ForwardRecord]:
        """Fetch the forward record for a backward operator's sequence ID."""
        self.lookups += 1
        if sequence_id is None:
            return None
        record = self._records.get(sequence_id)
        if record is not None:
            self.hits += 1
        return record

    @property
    def size(self) -> int:
        return len(self._records)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def clear(self) -> None:
        self._records.clear()
