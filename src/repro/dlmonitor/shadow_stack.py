"""Per-thread shadow stacks of framework operators.

DLMonitor maintains, in each CPU thread, a stack of the deep-learning
operators currently executing, together with the *memory location* of the
operator's dispatch frame (here: the program counter of the native frame the
framework pushed when entering the operator).  Call-path integration walks the
native stack bottom-up and matches these addresses to decide where to insert
operator frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..pycontext import PyFrame


@dataclass
class ShadowEntry:
    """One operator currently on a thread's shadow stack."""

    op_name: str
    is_backward: bool
    sequence_id: Optional[int]
    #: Program counter of the operator's outermost native dispatch frame.
    dispatch_pc: int
    #: Python call path captured when the operator was entered (user frames).
    python_callpath: Tuple[PyFrame, ...] = ()
    scope: Tuple[str, ...] = ()


class ShadowStack:
    """The operator shadow stack of a single CPU thread."""

    def __init__(self) -> None:
        self._entries: List[ShadowEntry] = []
        self.max_depth = 0

    def push(self, entry: ShadowEntry) -> None:
        self._entries.append(entry)
        self.max_depth = max(self.max_depth, len(self._entries))

    def pop(self) -> ShadowEntry:
        if not self._entries:
            raise IndexError("shadow stack is empty")
        return self._entries.pop()

    def top(self) -> Optional[ShadowEntry]:
        return self._entries[-1] if self._entries else None

    @property
    def entries(self) -> List[ShadowEntry]:
        """Entries ordered from the outermost operator to the innermost."""
        return list(self._entries)

    @property
    def depth(self) -> int:
        return len(self._entries)

    def find_by_pc(self, pc: int) -> Optional[ShadowEntry]:
        """Match a native-frame program counter against recorded dispatch PCs."""
        for entry in reversed(self._entries):
            if entry.dispatch_pc == pc:
                return entry
        return None

    def clear(self) -> None:
        self._entries.clear()


class ShadowStackRegistry:
    """Lazily creates one shadow stack per thread id."""

    def __init__(self) -> None:
        self._stacks: Dict[int, ShadowStack] = {}

    def for_thread(self, tid: int) -> ShadowStack:
        if tid not in self._stacks:
            self._stacks[tid] = ShadowStack()
        return self._stacks[tid]

    def threads(self) -> List[int]:
        return sorted(self._stacks)

    def total_max_depth(self) -> int:
        return max((stack.max_depth for stack in self._stacks.values()), default=0)
