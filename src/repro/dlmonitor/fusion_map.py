"""Fused-operator → original-operator mapping for JIT frameworks (Figure 4).

JAX compiles operators into fused executables, so the runtime call path of a
fused kernel no longer corresponds to any single line of user code.
DLMonitor hooks the compiler's fusion pass, records which original operators
each fused operator was built from — together with their compile-time Python
call paths — and the GUI later displays all possible original call paths for
each runtime call path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..pycontext import PyFrame


@dataclass(frozen=True)
class OriginalOperator:
    """One pre-fusion operator with its compile-time Python call path."""

    op_name: str
    node_id: int
    compile_time_callpath: Tuple[PyFrame, ...] = ()
    scope: Tuple[str, ...] = ()


@dataclass
class FusionRecord:
    """One fused operator and the original operators it was built from."""

    fused_name: str
    graph_name: str
    originals: List[OriginalOperator] = field(default_factory=list)

    @property
    def original_names(self) -> List[str]:
        return [original.op_name for original in self.originals]


class FusionMap:
    """All fusion records collected during compilation."""

    def __init__(self) -> None:
        self._records: Dict[str, FusionRecord] = {}

    def record(self, fused_name: str, graph_name: str,
               originals: Sequence[OriginalOperator]) -> FusionRecord:
        record = FusionRecord(fused_name=fused_name, graph_name=graph_name,
                              originals=list(originals))
        self._records[fused_name] = record
        return record

    def lookup(self, fused_name: str) -> Optional[FusionRecord]:
        return self._records.get(fused_name)

    def original_callpaths(self, fused_name: str) -> List[Tuple[PyFrame, ...]]:
        """All compile-time Python call paths a fused kernel may correspond to."""
        record = self._records.get(fused_name)
        if record is None:
            return []
        return [original.compile_time_callpath for original in record.originals]

    @property
    def records(self) -> List[FusionRecord]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fused_name: str) -> bool:
        return fused_name in self._records
