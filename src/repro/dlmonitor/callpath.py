"""Unified call-path representation.

A call path is an ordered sequence of frames from the outermost root to the
innermost leaf, mixing frame kinds from every level of the stack: Python
source frames, deep-learning framework operators, native C/C++ frames, GPU
runtime API calls, GPU kernels and (for fine-grained profiles) GPU
instructions.  Frame identity — which frames collapse into the same calling
context tree node — follows the paper: native/GPU frames compare by library
and program counter, Python frames by file and line, framework frames by
operator name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple


class FrameKind(Enum):
    """Which layer of the software stack a frame belongs to."""

    ROOT = "root"
    THREAD = "thread"
    PYTHON = "python"
    FRAMEWORK = "framework"
    NATIVE = "native"
    GPU_API = "gpu_api"
    GPU_KERNEL = "gpu_kernel"
    GPU_INSTRUCTION = "gpu_instruction"


@dataclass(frozen=True)
class Frame:
    """One frame of the unified call path."""

    kind: FrameKind
    name: str
    file: str = ""
    line: int = 0
    library: str = ""
    pc: int = 0
    #: Free-form annotation (e.g. "backward", a stall reason, a device name).
    tag: str = ""

    def identity(self) -> Tuple:
        """The key used to collapse equal frames in the calling context tree."""
        if self.kind == FrameKind.PYTHON:
            return (self.kind.value, self.file, self.line)
        if self.kind == FrameKind.FRAMEWORK:
            return (self.kind.value, self.name, self.tag)
        if self.kind in (FrameKind.NATIVE, FrameKind.GPU_API):
            return (self.kind.value, self.library, self.pc or self.name)
        if self.kind == FrameKind.GPU_INSTRUCTION:
            return (self.kind.value, self.name, self.pc)
        return (self.kind.value, self.name)

    def label(self) -> str:
        """Human-readable label used by the GUI."""
        if self.kind == FrameKind.PYTHON:
            return f"{self.name} ({os.path.basename(self.file)}:{self.line})"
        if self.kind == FrameKind.FRAMEWORK and self.tag == "backward":
            return f"{self.name} [backward]"
        if self.kind == FrameKind.NATIVE and self.library:
            return f"{self.name} [{self.library}]"
        if self.kind == FrameKind.GPU_INSTRUCTION:
            return f"pc+0x{self.pc:x} ({self.tag})"
        return self.name

    def __str__(self) -> str:
        return self.label()


@dataclass(frozen=True)
class CallPath:
    """An immutable root→leaf sequence of frames."""

    frames: Tuple[Frame, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "frames", tuple(self.frames))

    # -- construction ------------------------------------------------------------

    @classmethod
    def of(cls, frames: Iterable[Frame]) -> "CallPath":
        return cls(frames=tuple(frames))

    def extended(self, *extra: Frame) -> "CallPath":
        """A new call path with ``extra`` frames appended at the leaf."""
        return CallPath(frames=self.frames + tuple(extra))

    def prefixed(self, *prefix: Frame) -> "CallPath":
        """A new call path with ``prefix`` frames inserted at the root."""
        return CallPath(frames=tuple(prefix) + self.frames)

    # -- accessors ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def leaf(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    @property
    def root(self) -> Optional[Frame]:
        return self.frames[0] if self.frames else None

    def frames_of_kind(self, kind: FrameKind) -> List[Frame]:
        return [frame for frame in self.frames if frame.kind == kind]

    def has_kind(self, kind: FrameKind) -> bool:
        return any(frame.kind == kind for frame in self.frames)

    def kinds(self) -> List[FrameKind]:
        return [frame.kind for frame in self.frames]

    def __iter__(self):
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def __bool__(self) -> bool:
        return bool(self.frames)

    def format(self, indent: str = "  ") -> str:
        """Multi-line rendering, root at the top."""
        lines = []
        for depth, frame in enumerate(self.frames):
            lines.append(f"{indent * depth}{frame.label()}  <{frame.kind.value}>")
        return "\n".join(lines)


# -- frame construction helpers ---------------------------------------------------------

def python_frame(file: str, line: int, function: str) -> Frame:
    return Frame(kind=FrameKind.PYTHON, name=function, file=file, line=line)


def framework_frame(op_name: str, backward: bool = False) -> Frame:
    return Frame(kind=FrameKind.FRAMEWORK, name=op_name, tag="backward" if backward else "")


def native_frame(function: str, library: str, pc: int = 0) -> Frame:
    return Frame(kind=FrameKind.NATIVE, name=function, library=library, pc=pc)


def gpu_api_frame(api_name: str, library: str = "", pc: int = 0) -> Frame:
    return Frame(kind=FrameKind.GPU_API, name=api_name, library=library, pc=pc)


def gpu_kernel_frame(kernel_name: str, device: str = "") -> Frame:
    return Frame(kind=FrameKind.GPU_KERNEL, name=kernel_name, tag=device)


def gpu_instruction_frame(kernel_name: str, pc_offset: int, stall_reason: str) -> Frame:
    return Frame(kind=FrameKind.GPU_INSTRUCTION, name=kernel_name, pc=pc_offset, tag=stall_reason)


def thread_frame(thread_name: str, tid: int) -> Frame:
    return Frame(kind=FrameKind.THREAD, name=f"thread:{thread_name}", pc=tid)


def root_frame(program: str = "program") -> Frame:
    return Frame(kind=FrameKind.ROOT, name=program)


def python_frames_from_triples(triples: Sequence[Tuple[str, int, str]]) -> List[Frame]:
    """Convert ``(file, line, function)`` triples into Python frames."""
    return [python_frame(file, line, function) for file, line, function in triples]
