"""Unified call-path representation.

A call path is an ordered sequence of frames from the outermost root to the
innermost leaf, mixing frame kinds from every level of the stack: Python
source frames, deep-learning framework operators, native C/C++ frames, GPU
runtime API calls, GPU kernels and (for fine-grained profiles) GPU
instructions.  Frame identity — which frames collapse into the same calling
context tree node — follows the paper: native/GPU frames compare by library
and program counter, Python frames by file and line, framework frames by
operator name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple


class FrameKind(Enum):
    """Which layer of the software stack a frame belongs to."""

    ROOT = "root"
    THREAD = "thread"
    PYTHON = "python"
    FRAMEWORK = "framework"
    NATIVE = "native"
    GPU_API = "gpu_api"
    GPU_KERNEL = "gpu_kernel"
    GPU_INSTRUCTION = "gpu_instruction"


@dataclass(frozen=True)
class Frame:
    """One frame of the unified call path."""

    kind: FrameKind
    name: str
    file: str = ""
    line: int = 0
    library: str = ""
    pc: int = 0
    #: Free-form annotation (e.g. "backward", a stall reason, a device name).
    tag: str = ""

    def identity(self) -> Tuple:
        """The key used to collapse equal frames in the calling context tree.

        Computed once per frame instance and memoized — ``child_for`` calls it
        on every level of every inserted call path, and interned frames (see
        :func:`intern_frame`) make the cache hit rate approach 100%.
        """
        cached = self.__dict__.get("_identity")
        if cached is None:
            cached = self._compute_identity()
            object.__setattr__(self, "_identity", cached)
        return cached

    def _compute_identity(self) -> Tuple:
        if self.kind == FrameKind.PYTHON:
            return (self.kind.value, self.file, self.line)
        if self.kind == FrameKind.FRAMEWORK:
            return (self.kind.value, self.name, self.tag)
        if self.kind in (FrameKind.NATIVE, FrameKind.GPU_API):
            return (self.kind.value, self.library, self.pc or self.name)
        if self.kind == FrameKind.GPU_INSTRUCTION:
            return (self.kind.value, self.name, self.pc)
        return (self.kind.value, self.name)

    def label(self) -> str:
        """Human-readable label used by the GUI."""
        if self.kind == FrameKind.PYTHON:
            return f"{self.name} ({os.path.basename(self.file)}:{self.line})"
        if self.kind == FrameKind.FRAMEWORK and self.tag == "backward":
            return f"{self.name} [backward]"
        if self.kind == FrameKind.NATIVE and self.library:
            return f"{self.name} [{self.library}]"
        if self.kind == FrameKind.GPU_INSTRUCTION:
            return f"pc+0x{self.pc:x} ({self.tag})"
        return self.name

    def __str__(self) -> str:
        return self.label()


@dataclass(frozen=True)
class CallPath:
    """An immutable root→leaf sequence of frames."""

    frames: Tuple[Frame, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "frames", tuple(self.frames))

    # -- construction ------------------------------------------------------------

    @classmethod
    def of(cls, frames: Iterable[Frame]) -> "CallPath":
        return cls(frames=tuple(frames))

    def extended(self, *extra: Frame) -> "CallPath":
        """A new call path with ``extra`` frames appended at the leaf."""
        return CallPath(frames=self.frames + tuple(extra))

    def prefixed(self, *prefix: Frame) -> "CallPath":
        """A new call path with ``prefix`` frames inserted at the root."""
        return CallPath(frames=tuple(prefix) + self.frames)

    # -- accessors ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def leaf(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    @property
    def root(self) -> Optional[Frame]:
        return self.frames[0] if self.frames else None

    def frames_of_kind(self, kind: FrameKind) -> List[Frame]:
        return [frame for frame in self.frames if frame.kind == kind]

    def has_kind(self, kind: FrameKind) -> bool:
        return any(frame.kind == kind for frame in self.frames)

    def kinds(self) -> List[FrameKind]:
        return [frame.kind for frame in self.frames]

    def __iter__(self):
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def __bool__(self) -> bool:
        return bool(self.frames)

    def format(self, indent: str = "  ") -> str:
        """Multi-line rendering, root at the top."""
        lines = []
        for depth, frame in enumerate(self.frames):
            lines.append(f"{indent * depth}{frame.label()}  <{frame.kind.value}>")
        return "\n".join(lines)


# -- frame interning --------------------------------------------------------------------

# Distinct frames built during live profiling are bounded by distinct code
# locations (the same argument that bounds the CCT's size).  Interning makes
# repeated call-path constructions reuse one Frame object per location, which
# in turn makes the per-instance identity() memoization hit every time.
# Deserialization and thread frames deliberately do NOT intern (loaded trees
# build every frame exactly once, and tids are unbounded across sessions);
# long-lived processes can still call ``clear_frame_intern`` between sessions
# if they want a hard reset.
_FRAME_INTERN: dict = {}


def intern_frame(frame: Frame) -> Frame:
    """Return the canonical instance for ``frame`` (by field equality)."""
    cached = _FRAME_INTERN.get(frame)
    if cached is None:
        _FRAME_INTERN[frame] = frame
        return frame
    return cached


def frame_intern_size() -> int:
    """Number of frames currently pinned by the intern table."""
    return len(_FRAME_INTERN)


def clear_frame_intern() -> None:
    """Drop the intern table (safe: interning is an identity optimisation only)."""
    _FRAME_INTERN.clear()


# -- frame construction helpers ---------------------------------------------------------

def python_frame(file: str, line: int, function: str) -> Frame:
    return intern_frame(Frame(kind=FrameKind.PYTHON, name=function, file=file, line=line))


def framework_frame(op_name: str, backward: bool = False) -> Frame:
    return intern_frame(
        Frame(kind=FrameKind.FRAMEWORK, name=op_name, tag="backward" if backward else ""))


def native_frame(function: str, library: str, pc: int = 0) -> Frame:
    return intern_frame(Frame(kind=FrameKind.NATIVE, name=function, library=library, pc=pc))


def gpu_api_frame(api_name: str, library: str = "", pc: int = 0) -> Frame:
    return intern_frame(Frame(kind=FrameKind.GPU_API, name=api_name, library=library, pc=pc))


def scope_frame(scope_name: str) -> Frame:
    """A module / semantic scope frame (``loss_fn``, layer names, ...)."""
    return intern_frame(Frame(kind=FrameKind.FRAMEWORK, name=scope_name, tag="scope"))


def gpu_kernel_frame(kernel_name: str, device: str = "") -> Frame:
    return intern_frame(Frame(kind=FrameKind.GPU_KERNEL, name=kernel_name, tag=device))


def gpu_instruction_frame(kernel_name: str, pc_offset: int, stall_reason: str) -> Frame:
    # Not interned: kernel × PC offset × stall reason is the highest-cardinality
    # frame space (one entry per sampled instruction), so pinning them in the
    # process-global table would dwarf the code-location-bounded entries.
    return Frame(kind=FrameKind.GPU_INSTRUCTION, name=kernel_name, pc=pc_offset, tag=stall_reason)


def thread_frame(thread_name: str, tid: int) -> Frame:
    # Not interned: tids are unbounded across a long-lived process's sessions,
    # unlike code locations, so interning here would grow the table forever.
    return Frame(kind=FrameKind.THREAD, name=f"thread:{thread_name}", pc=tid)


def root_frame(program: str = "program") -> Frame:
    return intern_frame(Frame(kind=FrameKind.ROOT, name=program))


def python_frames_from_triples(triples: Sequence[Tuple[str, int, str]]) -> List[Frame]:
    """Convert ``(file, line, function)`` triples into Python frames."""
    return [python_frame(file, line, function) for file, line, function in triples]
