"""LD_AUDIT-style library auditing and configuration-driven interception.

Two paper features live here:

* DLMonitor records which address ranges belong to which shared object
  (notably ``libpython.so``) using the dynamic loader's audit interface; the
  call-path integration needs this to detect the C↔Python boundary.
* For hardware whose runtime has no vendor callback mechanism, users can list
  driver function signatures in a configuration file; DLMonitor then
  intercepts exactly those functions via LD_AUDIT bindings and forwards them
  as GPU-domain events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..gpu.runtime import ApiCallbackData, GpuRuntime
from ..native.symbols import LIBPYTHON, AddressSpace


@dataclass
class DriverFunctionConfig:
    """One driver function listed in the user's interception configuration."""

    function: str
    domain: str = "gpu"
    #: Argument names, in order (documentation only; the simulation does not
    #: marshal real arguments).
    signature: List[str] = field(default_factory=list)


def parse_interception_config(config: Dict[str, object]) -> List[DriverFunctionConfig]:
    """Parse the ``functions`` section of an interception configuration dict.

    The accepted shape mirrors what a user would write in a small YAML/JSON
    file::

        {"functions": [{"function": "customLaunchKernel",
                        "signature": ["void* fn", "dim3 grid", "dim3 block"]}]}
    """
    functions = config.get("functions", [])
    parsed: List[DriverFunctionConfig] = []
    for entry in functions:
        if isinstance(entry, str):
            parsed.append(DriverFunctionConfig(function=entry))
            continue
        if not isinstance(entry, dict) or "function" not in entry:
            raise ValueError(f"invalid interception config entry: {entry!r}")
        parsed.append(DriverFunctionConfig(
            function=str(entry["function"]),
            domain=str(entry.get("domain", "gpu")),
            signature=list(entry.get("signature", [])),
        ))
    return parsed


class LibraryAuditor:
    """Tracks loaded libraries and answers boundary queries for integration."""

    def __init__(self, address_space: AddressSpace) -> None:
        self.address_space = address_space

    def loaded_libraries(self) -> List[str]:
        return [library.name for library in self.address_space.libraries]

    def is_python_frame_pc(self, pc: int) -> bool:
        """True when a native PC falls inside libpython's address range."""
        return self.address_space.is_in_library(pc, LIBPYTHON)

    def library_of(self, pc: int) -> Optional[str]:
        return self.address_space.library_of(pc)


class CustomDriverInterceptor:
    """Intercepts configured driver functions on runtimes without CUPTI/RocTracer.

    The interceptor subscribes to the raw runtime and forwards only the API
    calls whose names appear in the configuration, which is how LD_AUDIT-based
    interception behaves: you get exactly the functions you asked for.
    """

    def __init__(self, runtime: GpuRuntime, configs: List[DriverFunctionConfig]) -> None:
        self.runtime = runtime
        self.functions = {config.function for config in configs}
        self._callback: Optional[Callable[[ApiCallbackData], None]] = None
        self._installed = False
        self.intercepted = 0
        self.skipped = 0

    def install(self, callback: Callable[[ApiCallbackData], None]) -> None:
        self._callback = callback
        if not self._installed:
            self.runtime.subscribe(self._forward)
            self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.runtime.unsubscribe(self._forward)
            self._installed = False
        self._callback = None

    def _forward(self, data: ApiCallbackData) -> None:
        if data.api_name not in self.functions:
            self.skipped += 1
            return
        self.intercepted += 1
        if self._callback is not None:
            self._callback(data)
