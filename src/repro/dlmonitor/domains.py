"""DLMonitor callback domains and event payloads.

Profilers register callbacks with DLMonitor per *domain*: the framework
domain delivers deep-learning operator events (enter/exit of each operator,
graph compilation, tensor allocation), and the GPU domain delivers GPU runtime
API events (kernel launches, memory copies, allocations).  These constants and
dataclasses define the framework-agnostic format the paper's "shim" layer
converts framework-specific data into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# Callback domains.
DLMONITOR_FRAMEWORK = "DLMONITOR_FRAMEWORK"
DLMONITOR_GPU = "DLMONITOR_GPU"

ALL_DOMAINS = (DLMONITOR_FRAMEWORK, DLMONITOR_GPU)

# Event phases (mirroring the before/after callbacks of the paper).
PHASE_ENTER = "enter"
PHASE_EXIT = "exit"

# Framework event kinds.
EVENT_OPERATOR = "operator"
EVENT_COMPILATION = "compilation"
EVENT_ALLOCATION = "allocation"


@dataclass
class FrameworkEvent:
    """A framework-domain event delivered to registered callbacks."""

    kind: str
    phase: str
    op_name: str = ""
    is_backward: bool = False
    sequence_id: Optional[int] = None
    thread_tid: int = 0
    scope: List[str] = field(default_factory=list)
    #: Operator inputs/outputs metadata (shapes, dtypes, bytes) when available.
    attrs: Dict[str, Any] = field(default_factory=dict)
    input_bytes: int = 0
    output_bytes: int = 0
    framework: str = "pytorch"


@dataclass
class GpuEvent:
    """A GPU-domain event delivered to registered callbacks."""

    api_name: str
    phase: str
    correlation_id: int
    device: str = ""
    kernel_name: str = ""
    stream: int = 0
    bytes: float = 0.0
    kind: str = ""
    thread_tid: int = 0


@dataclass
class CompilationInfo:
    """Details of a JIT compilation event (JAX-style graph compilation)."""

    graph_name: str
    phase: str
    num_operators: int
    num_fused_groups: int
