"""A RocTracer-like tracing interface over the simulated GPU runtime.

Shares all mechanics with the CUPTI simulation (callback subscription,
asynchronous activity buffers, instruction sampling) but attaches only to AMD
devices, matching the vendor split described in the paper.
"""

from __future__ import annotations

from .cupti import GpuTracingApi
from .device import AMD


class RocTracer(GpuTracingApi):
    """RocTracer simulation: attaches only to AMD devices."""

    vendor = AMD
    api_name = "RocTracer"


def tracing_api_for(runtime) -> GpuTracingApi:
    """Pick the vendor-appropriate tracing API for a runtime.

    This mirrors DeepContext's portability story: the profiler asks for a
    tracing substrate and gets CUPTI on Nvidia GPUs or RocTracer on AMD GPUs
    without any change to the calling code.
    """
    from .cupti import Cupti  # local import to avoid a cycle at module load

    if runtime.device.vendor == AMD:
        return RocTracer(runtime)
    return Cupti(runtime)
