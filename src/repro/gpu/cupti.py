"""A CUPTI-like tracing interface over the simulated GPU runtime.

DeepContext's profiler never talks to the runtime directly — it registers
callbacks and activity consumers through the vendor tracing API (CUPTI on
Nvidia, RocTracer on AMD).  Both simulated APIs share the same mechanics,
implemented in :class:`GpuTracingApi`; the vendor-specific subclasses only
differ in naming and in which runtime vendor they accept.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .activity import ActivityRecord
from .device import NVIDIA
from .kernels import KernelSpec
from .runtime import ApiCallback, ApiCallbackData, GpuRuntime
from .sampling import InstructionSample, InstructionSampler

# Callback domains, mirroring CUPTI_CB_DOMAIN_* / roctracer domains.
DOMAIN_RUNTIME_API = "runtime_api"
DOMAIN_DRIVER_API = "driver_api"

ActivityConsumer = Callable[[List[ActivityRecord]], None]
SampleConsumer = Callable[[List[InstructionSample]], None]


class GpuTracingApi:
    """Common machinery shared by the CUPTI and RocTracer simulations."""

    #: Vendor this API is able to attach to ("nvidia" or "amd"); ``None`` = any.
    vendor: Optional[str] = None
    #: Human-readable API name used in error messages and feature matrices.
    api_name = "gpu-tracing"

    def __init__(self, runtime: GpuRuntime, sample_period_us: float = 2.0) -> None:
        if self.vendor is not None and runtime.device.vendor != self.vendor:
            raise ValueError(
                f"{self.api_name} can only attach to {self.vendor} devices, "
                f"got {runtime.device.vendor}"
            )
        self.runtime = runtime
        self._subscriber: Optional[ApiCallback] = None
        self._activity_consumer: Optional[ActivityConsumer] = None
        self._sample_consumer: Optional[SampleConsumer] = None
        self._sampler = InstructionSampler(runtime.device, sample_period_us)
        self._sampling_enabled = False
        self._forwarder_installed = False

    # -- callback API -----------------------------------------------------------

    def subscribe(self, callback: ApiCallback) -> None:
        """Register the (single) API callback subscriber, like ``cuptiSubscribe``."""
        if self._subscriber is not None:
            raise RuntimeError(f"{self.api_name} already has a subscriber")
        self._subscriber = callback
        self._install_forwarder()

    def unsubscribe(self) -> None:
        self._subscriber = None

    # -- activity API -------------------------------------------------------------

    def activity_register_callbacks(self, consumer: ActivityConsumer) -> None:
        """Register the buffer-completed consumer, like ``cuptiActivityRegisterCallbacks``."""
        self._activity_consumer = consumer
        self.runtime.activity.register_callback(self._on_buffer_completed)

    def activity_flush_all(self) -> int:
        """Force delivery of all pending activity records."""
        return self.runtime.activity.flush()

    # -- instruction sampling -------------------------------------------------------

    def enable_pc_sampling(self, consumer: SampleConsumer,
                           sample_period_us: Optional[float] = None) -> None:
        """Enable fine-grained instruction sampling for every launched kernel."""
        if sample_period_us is not None:
            self._sampler = InstructionSampler(self.runtime.device, sample_period_us)
        self._sample_consumer = consumer
        self._sampling_enabled = True
        self._install_forwarder()

    def disable_pc_sampling(self) -> None:
        self._sampling_enabled = False
        self._sample_consumer = None

    # -- teardown -------------------------------------------------------------------

    def finalize(self) -> None:
        """Detach from the runtime entirely."""
        self.unsubscribe()
        self.disable_pc_sampling()
        self.runtime.activity.unregister()
        if self._forwarder_installed:
            self.runtime.unsubscribe(self._forward)
            self._forwarder_installed = False

    # -- internals ---------------------------------------------------------------------

    def _install_forwarder(self) -> None:
        if not self._forwarder_installed:
            self.runtime.subscribe(self._forward)
            self._forwarder_installed = True

    def _forward(self, data: ApiCallbackData) -> None:
        if self._subscriber is not None:
            self._subscriber(data)
        if (
            self._sampling_enabled
            and self._sample_consumer is not None
            and data.kernel_spec is not None
            and data.phase.value == "exit"
        ):
            samples = self._sampler.sample_kernel(data.kernel_spec, data.correlation_id)
            self._sample_consumer(samples)

    def _on_buffer_completed(self, records: List[ActivityRecord]) -> None:
        if self._activity_consumer is not None:
            self._activity_consumer(records)

    # -- convenience --------------------------------------------------------------------

    def sample_kernel(self, spec: KernelSpec, correlation_id: int = 0) -> List[InstructionSample]:
        """Synthesise samples for a kernel without launching it (used in tests)."""
        return self._sampler.sample_kernel(spec, correlation_id)


class Cupti(GpuTracingApi):
    """CUPTI simulation: attaches only to Nvidia devices."""

    vendor = NVIDIA
    api_name = "CUPTI"
