"""Simulated GPU substrate: devices, kernels, runtime, tracing APIs, sampling."""

from .activity import ActivityBufferManager, ActivityKind, ActivityRecord
from .cupti import Cupti, GpuTracingApi
from .device import A100, AMD, MI250, NVIDIA, DeviceSpec, available_devices, get_device
from .kernels import KernelCostModel, KernelSpec
from .roctracer import RocTracer, tracing_api_for
from .runtime import ApiCallbackData, ApiPhase, GpuRuntime, KernelFunction, LaunchResult, Stream
from .sampling import ALL_STALL_REASONS, InstructionSample, InstructionSampler

__all__ = [
    "ActivityBufferManager",
    "ActivityKind",
    "ActivityRecord",
    "Cupti",
    "RocTracer",
    "GpuTracingApi",
    "tracing_api_for",
    "DeviceSpec",
    "A100",
    "MI250",
    "NVIDIA",
    "AMD",
    "get_device",
    "available_devices",
    "KernelCostModel",
    "KernelSpec",
    "GpuRuntime",
    "ApiCallbackData",
    "ApiPhase",
    "KernelFunction",
    "LaunchResult",
    "Stream",
    "InstructionSample",
    "InstructionSampler",
    "ALL_STALL_REASONS",
]
