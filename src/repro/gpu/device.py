"""Simulated GPU device models.

The paper evaluates on two platforms (Table 2): an Nvidia A100 SXM (108 SMs,
warp size 32, 156 TF32 TFLOP/s, 2 TB/s) and an AMD MI250 (208 compute units,
warp size 64, 362.1 FP16 TFLOP/s, 3.2 TB/s).  The :class:`DeviceSpec` captures
the parameters that matter to the analytic kernel cost model in
:mod:`repro.gpu.kernels`: parallel capacity, warp granularity, compute
throughput, memory bandwidth and per-kernel fixed overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


NVIDIA = "nvidia"
AMD = "amd"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU used by the kernel cost model."""

    name: str
    vendor: str
    compute_units: int
    warp_size: int
    peak_fp32_tflops: float
    peak_fp16_tflops: float
    memory_bandwidth_gbps: float
    memory_gb: float
    max_threads_per_cta: int = 1024
    max_threads_per_cu: int = 2048
    kernel_fixed_overhead_us: float = 3.0
    launch_latency_us: float = 7.0
    memcpy_latency_us: float = 10.0
    constant_memory_latency_factor: float = 1.0
    cpu: str = "AMD EPYC 7543"
    host_memory_gb: float = 256.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def peak_fp32_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def peak_fp16_flops(self) -> float:
        return self.peak_fp16_tflops * 1e12

    @property
    def memory_bandwidth(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def parallel_capacity(self) -> int:
        """Maximum number of resident threads across the whole device."""
        return self.compute_units * self.max_threads_per_cu

    def peak_flops_for_dtype(self, dtype: str) -> float:
        """Peak throughput for a dtype ('float32', 'float16', 'bfloat16', ...)."""
        if dtype in ("float16", "bfloat16", "float8"):
            return self.peak_fp16_flops
        return self.peak_fp32_flops

    def summary_row(self) -> Dict[str, str]:
        """Row used to regenerate Table 2."""
        return {
            "Platform": self.vendor.capitalize(),
            "CPU": self.cpu,
            "Memory": f"{self.host_memory_gb:.0f} GB",
            "GPU": self.name,
            "GPU Memory": f"{self.memory_gb:.0f} GB",
            "GPU Specifications": (
                f"{self.compute_units} "
                + ("SMs" if self.vendor == NVIDIA else "Compute Units")
                + f", warp {self.warp_size}, "
                + f"{self.peak_fp32_tflops:.0f} FP32 TFLOP/s, "
                + f"{self.memory_bandwidth_gbps / 1000:.1f} TB/s Bandwidth"
            ),
        }


A100 = DeviceSpec(
    name="A100 SXM",
    vendor=NVIDIA,
    compute_units=108,
    warp_size=32,
    peak_fp32_tflops=156.0,  # TF32 tensor-core rate used by the paper
    peak_fp16_tflops=312.0,
    memory_bandwidth_gbps=2000.0,
    memory_gb=80.0,
    host_memory_gb=256.0,
)

MI250 = DeviceSpec(
    name="MI250",
    vendor=AMD,
    compute_units=208,
    warp_size=64,
    peak_fp32_tflops=181.0,
    peak_fp16_tflops=362.1,
    memory_bandwidth_gbps=3200.0,
    memory_gb=64.0,
    host_memory_gb=2048.0,
    kernel_fixed_overhead_us=4.0,
    launch_latency_us=9.0,
)


_DEVICES: Dict[str, DeviceSpec] = {
    "a100": A100,
    "nvidia": A100,
    "mi250": MI250,
    "amd": MI250,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device model by name or vendor alias (case-insensitive)."""
    key = name.lower()
    if key not in _DEVICES:
        raise KeyError(f"unknown device: {name!r} (known: {sorted(_DEVICES)})")
    return _DEVICES[key]


def available_devices() -> Dict[str, DeviceSpec]:
    """The two evaluation platforms of Table 2, keyed by canonical name."""
    return {"a100": A100, "mi250": MI250}
