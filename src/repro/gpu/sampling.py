"""Fine-grained GPU instruction sampling with stall reasons.

Nvidia's PC sampling (CUPTI) and AMD's instruction sampling attribute kernel
time to individual instructions together with the reason the warp scheduler was
stalled.  The paper's fine-grained stall analysis (case study 6.7) consumes
these samples.  Here, samples are synthesised deterministically from the
kernel's behaviour flags and its cost breakdown, so that e.g. a dtype
conversion kernel exhibits constant-memory and math-dependency stalls while a
bandwidth-bound elementwise kernel exhibits long-scoreboard stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from . import kernels as K
from .device import DeviceSpec
from .kernels import KernelCostModel, KernelSpec

# Stall reasons, following CUPTI's naming.
STALL_NONE = "selected"
STALL_LONG_SCOREBOARD = "long_scoreboard"      # waiting on global memory
STALL_SHORT_SCOREBOARD = "short_scoreboard"    # waiting on shared memory
STALL_MATH_DEPENDENCY = "math_dependency"      # waiting on ALU results
STALL_EXECUTION_DEPENDENCY = "execution_dependency"
STALL_CONSTANT_MEMORY = "constant_memory_dependency"
STALL_MEMORY_THROTTLE = "memory_throttle"
STALL_BARRIER = "barrier"
STALL_ATOMIC = "atomic_contention"
STALL_NOT_SELECTED = "not_selected"

ALL_STALL_REASONS = (
    STALL_NONE,
    STALL_LONG_SCOREBOARD,
    STALL_SHORT_SCOREBOARD,
    STALL_MATH_DEPENDENCY,
    STALL_EXECUTION_DEPENDENCY,
    STALL_CONSTANT_MEMORY,
    STALL_MEMORY_THROTTLE,
    STALL_BARRIER,
    STALL_ATOMIC,
    STALL_NOT_SELECTED,
)


@dataclass(frozen=True)
class InstructionSample:
    """A PC sample inside a kernel: an instruction offset, stall reason and count."""

    kernel_name: str
    pc_offset: int
    stall_reason: str
    samples: int
    correlation_id: int = 0

    @property
    def is_stalled(self) -> bool:
        return self.stall_reason not in (STALL_NONE, STALL_NOT_SELECTED)


class InstructionSampler:
    """Synthesises instruction samples for launched kernels.

    The number of samples is proportional to kernel duration (one sample per
    ``sample_period_us``); the stall-reason mix is derived from the kernel's
    behaviour flags.
    """

    def __init__(self, device: DeviceSpec, sample_period_us: float = 2.0) -> None:
        self.device = device
        self.cost_model = KernelCostModel(device)
        self.sample_period_us = sample_period_us

    def stall_distribution(self, spec: KernelSpec) -> Dict[str, float]:
        """Fractional stall-reason mix for a kernel (sums to 1.0)."""
        breakdown = self.cost_model.explain(spec)
        dist: Dict[str, float] = {STALL_NONE: 0.15, STALL_NOT_SELECTED: 0.05}
        flags = spec.flags
        if K.FLAG_DTYPE_CONVERSION in flags:
            # Case study 6.7: constant-memory misses per CTA plus math
            # dependencies from non-vectorised conversions dominate.
            dist[STALL_CONSTANT_MEMORY] = 0.35
            dist[STALL_MATH_DEPENDENCY] = 0.30
            dist[STALL_LONG_SCOREBOARD] = 0.15
        elif K.FLAG_DETERMINISTIC_SCATTER in flags:
            dist[STALL_EXECUTION_DEPENDENCY] = 0.50
            dist[STALL_LONG_SCOREBOARD] = 0.30
        elif K.FLAG_ATOMIC_SCATTER in flags:
            dist[STALL_ATOMIC] = 0.40
            dist[STALL_LONG_SCOREBOARD] = 0.40
        elif K.FLAG_MATMUL in flags or K.FLAG_CONV in flags:
            if breakdown.bound == "compute":
                dist[STALL_MATH_DEPENDENCY] = 0.35
                dist[STALL_EXECUTION_DEPENDENCY] = 0.25
                dist[STALL_SHORT_SCOREBOARD] = 0.20
            else:
                dist[STALL_LONG_SCOREBOARD] = 0.50
                dist[STALL_SHORT_SCOREBOARD] = 0.30
        elif K.FLAG_NORMALIZATION in flags or K.FLAG_SOFTMAX in flags:
            dist[STALL_BARRIER] = 0.35
            dist[STALL_LONG_SCOREBOARD] = 0.35
            dist[STALL_SHORT_SCOREBOARD] = 0.10
        else:
            # Generic elementwise / memory-bound default.
            dist[STALL_LONG_SCOREBOARD] = 0.55
            dist[STALL_MEMORY_THROTTLE] = 0.15
            dist[STALL_EXECUTION_DEPENDENCY] = 0.10
        total = sum(dist.values())
        return {reason: fraction / total for reason, fraction in dist.items()}

    def sample_kernel(self, spec: KernelSpec, correlation_id: int = 0) -> List[InstructionSample]:
        """Generate instruction samples for one kernel launch."""
        duration = self.cost_model.duration(spec)
        total_samples = max(1, int(duration / (self.sample_period_us * 1e-6)))
        distribution = self.stall_distribution(spec)
        samples: List[InstructionSample] = []
        pc_offset = 0x10
        for reason, fraction in sorted(distribution.items()):
            count = int(round(total_samples * fraction))
            if count <= 0:
                continue
            samples.append(InstructionSample(
                kernel_name=spec.name,
                pc_offset=pc_offset,
                stall_reason=reason,
                samples=count,
                correlation_id=correlation_id,
            ))
            pc_offset += 0x10
        return samples

    def top_stall_reasons(self, samples: List[InstructionSample], k: int = 3) -> List[str]:
        """The ``k`` most frequent *stall* reasons across a set of samples."""
        counts: Dict[str, int] = {}
        for sample in samples:
            if sample.is_stalled:
                counts[sample.stall_reason] = counts.get(sample.stall_reason, 0) + sample.samples
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return [reason for reason, _count in ranked[:k]]
