"""Analytic GPU kernel cost model.

Kernel durations in this reproduction come from a roofline-style analytic
model instead of real hardware.  The model captures the effects the paper's
evaluation and case studies depend on:

* compute- vs memory-bound behaviour (roofline of FLOPs vs bytes),
* under-utilisation of the device by small kernels (fixed overhead dominates,
  which is what the kernel-fusion analysis detects),
* warp-size sensitivity (a launch configuration tuned for warp 32 wastes lanes
  and CTAs on a warp-64 AMD device — case study 6.5),
* serialization of deterministic scatter kernels
  (``indexing_backward_kernel`` — case study 6.1), and
* extra kernels for memory-layout conversion (case study 6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from .device import DeviceSpec

# Kernel behaviour flags understood by the cost model and the stall sampler.
FLAG_ELEMENTWISE = "elementwise"
FLAG_REDUCTION = "reduction"
FLAG_MATMUL = "matmul"
FLAG_CONV = "conv"
FLAG_LAYOUT_CONVERSION = "layout_conversion"
FLAG_DTYPE_CONVERSION = "dtype_conversion"
FLAG_DETERMINISTIC_SCATTER = "deterministic_scatter"
FLAG_ATOMIC_SCATTER = "atomic_scatter"
FLAG_GATHER = "gather"
FLAG_WARP32_TUNED = "warp32_tuned"
FLAG_MEMCPY = "memcpy"
FLAG_NORMALIZATION = "normalization"
FLAG_SOFTMAX = "softmax"
FLAG_LOSS = "loss"
FLAG_FUSED = "fused"


@dataclass(frozen=True)
class KernelSpec:
    """A device kernel requested by an operator implementation.

    ``flops`` and ``bytes_accessed`` describe the work; the launch configuration
    (``num_blocks`` × ``threads_per_block``) and per-thread resources determine
    occupancy; ``flags`` select special cost-model behaviour.
    """

    name: str
    flops: float = 0.0
    bytes_accessed: float = 0.0
    threads_per_block: int = 256
    num_blocks: int = 1
    registers_per_thread: int = 32
    shared_memory_bytes: int = 0
    dtype: str = "float32"
    flags: FrozenSet[str] = frozenset()
    serialization_factor: float = 1.0
    source_operator: Optional[str] = None
    stream: int = 0

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def with_flags(self, *extra: str) -> "KernelSpec":
        """Return a copy with additional behaviour flags."""
        return KernelSpec(
            name=self.name,
            flops=self.flops,
            bytes_accessed=self.bytes_accessed,
            threads_per_block=self.threads_per_block,
            num_blocks=self.num_blocks,
            registers_per_thread=self.registers_per_thread,
            shared_memory_bytes=self.shared_memory_bytes,
            dtype=self.dtype,
            flags=self.flags | frozenset(extra),
            serialization_factor=self.serialization_factor,
            source_operator=self.source_operator,
            stream=self.stream,
        )


@dataclass
class KernelCostBreakdown:
    """The cost model's explanation of a kernel duration (for tests and docs)."""

    compute_seconds: float
    memory_seconds: float
    occupancy: float
    warp_efficiency: float
    serialization_factor: float
    fixed_overhead_seconds: float
    duration_seconds: float
    bound: str = "memory"
    details: Dict[str, float] = field(default_factory=dict)


class KernelCostModel:
    """Estimates kernel execution time on a :class:`DeviceSpec`.

    The model is deliberately simple and fully deterministic:

    ``duration = max(compute, memory) / (occupancy * warp_efficiency)
                 * serialization_factor + fixed_overhead``

    where occupancy reflects how much of the device's parallel capacity the
    launch grid can use, and warp efficiency penalises launch configurations
    whose block size does not divide the device warp size evenly.
    """

    #: Achievable fraction of peak FLOP/s for dense compute kernels.
    compute_efficiency = 0.55
    #: Achievable fraction of peak bandwidth for streaming kernels.
    memory_efficiency = 0.75
    #: Minimum occupancy so tiny kernels do not diverge to infinity.
    min_occupancy = 0.02

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # -- individual factors -------------------------------------------------

    def occupancy(self, kernel: KernelSpec) -> float:
        """Fraction of device thread capacity the launch grid occupies."""
        padded_block = self._padded_block(kernel.threads_per_block)
        num_blocks = kernel.num_blocks
        if FLAG_WARP32_TUNED in kernel.flags and self.device.warp_size > 32:
            # A kernel template that derives its grid from a warp-32 launch
            # configuration creates proportionally fewer CTAs on a warp-64
            # device (paper case study 6.5: the batch-norm template reused by
            # instance norm), exposing less parallelism.
            num_blocks = max(1, int(num_blocks * 32 / self.device.warp_size))
        active_threads = num_blocks * padded_block
        capacity = self.device.parallel_capacity
        occ = active_threads / capacity
        return max(self.min_occupancy, min(1.0, occ))

    def warp_efficiency(self, kernel: KernelSpec) -> float:
        """Fraction of lanes doing useful work given the device's warp size."""
        padded_block = self._padded_block(kernel.threads_per_block)
        efficiency = kernel.threads_per_block / padded_block
        if FLAG_WARP32_TUNED in kernel.flags and self.device.warp_size > 32:
            # Within each CTA, a block size tuned for warp-32 GPUs yields half
            # as many schedulable warps on a warp-64 device (worse latency
            # hiding) and leaves the wider SIMD units half-empty during the
            # per-warp reduction steps of the template (paper case study 6.5).
            ratio = 32.0 / self.device.warp_size
            efficiency *= ratio * ratio
        return max(0.05, efficiency)

    def compute_seconds(self, kernel: KernelSpec) -> float:
        peak = self.device.peak_flops_for_dtype(kernel.dtype) * self.compute_efficiency
        return kernel.flops / peak if kernel.flops else 0.0

    def memory_seconds(self, kernel: KernelSpec) -> float:
        bandwidth = self.device.memory_bandwidth * self.memory_efficiency
        seconds = kernel.bytes_accessed / bandwidth if kernel.bytes_accessed else 0.0
        if FLAG_DTYPE_CONVERSION in kernel.flags:
            # Non-vectorised conversion instructions plus constant-memory loads
            # per CTA (paper case study 6.7) reduce effective bandwidth.
            seconds *= 2.0 * self.device.constant_memory_latency_factor
        return seconds

    # -- public API ----------------------------------------------------------

    def explain(self, kernel: KernelSpec) -> KernelCostBreakdown:
        """Full cost breakdown for a kernel on this device."""
        compute = self.compute_seconds(kernel)
        memory = self.memory_seconds(kernel)
        occupancy = self.occupancy(kernel)
        warp_eff = self.warp_efficiency(kernel)
        serialization = max(1.0, kernel.serialization_factor)
        if FLAG_WARP32_TUNED in kernel.flags and self.device.warp_size > 32:
            # The per-warp tree reduction hard-coded for 32 lanes performs its
            # serial steps over twice as many lanes on a warp-64 device with
            # half as many warps available to overlap them.
            serialization *= self.device.warp_size / 32.0
        fixed = self.device.kernel_fixed_overhead_us * 1e-6
        body = max(compute, memory)
        duration = body / (occupancy * warp_eff) * serialization + fixed
        return KernelCostBreakdown(
            compute_seconds=compute,
            memory_seconds=memory,
            occupancy=occupancy,
            warp_efficiency=warp_eff,
            serialization_factor=serialization,
            fixed_overhead_seconds=fixed,
            duration_seconds=duration,
            bound="compute" if compute >= memory else "memory",
            details={
                "padded_block": float(self._padded_block(kernel.threads_per_block)),
                "total_threads": float(kernel.total_threads),
            },
        )

    def duration(self, kernel: KernelSpec) -> float:
        """Kernel duration in seconds."""
        return self.explain(kernel).duration_seconds

    def theoretical_occupancy_ctas(self, kernel: KernelSpec) -> int:
        """Number of CTAs that can be resident simultaneously."""
        padded_block = self._padded_block(kernel.threads_per_block)
        per_cu = max(1, self.device.max_threads_per_cu // padded_block)
        return per_cu * self.device.compute_units

    # -- helpers ---------------------------------------------------------------

    def _padded_block(self, threads_per_block: int) -> int:
        warp = self.device.warp_size
        return int(math.ceil(max(1, threads_per_block) / warp) * warp)
