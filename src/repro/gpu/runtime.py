"""Simulated GPU runtime: streams, kernel launches, memory operations.

The runtime owns the *device side* of the simulation: it assigns correlation
IDs to API calls, schedules kernels on per-stream timelines, emits activity
records through the :class:`~repro.gpu.activity.ActivityBufferManager`, and
fires driver API callbacks to which CUPTI-/RocTracer-style tracing layers (and
through them DLMonitor) subscribe.

Host-side effects — advancing the launching thread's CPU clock by the launch
latency and pushing ``cudaLaunchKernel``/``hipLaunchKernel`` native frames —
are the responsibility of the framework execution engine, mirroring how the
real stack splits work between the framework and the driver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..cpu.clock import VirtualClock
from .activity import ActivityBufferManager, ActivityKind, ActivityRecord
from .device import DeviceSpec
from .kernels import KernelCostModel, KernelSpec


class ApiPhase(Enum):
    """Callback phases, matching CUPTI's ENTER/EXIT convention."""

    ENTER = "enter"
    EXIT = "exit"


@dataclass(frozen=True)
class KernelFunction:
    """The simulated equivalent of a ``CUfunction``/``hipFunction_t`` handle.

    DLMonitor parses this object at kernel-launch callbacks to obtain the
    kernel name that is inserted at the bottom of the unified call path.
    """

    name: str
    module: str = "device_module"


@dataclass
class ApiCallbackData:
    """Data passed to driver API callbacks (CUPTI ``CUpti_CallbackData`` analog)."""

    api_name: str
    phase: ApiPhase
    correlation_id: int
    device: str
    stream: int = 0
    kernel_function: Optional[KernelFunction] = None
    kernel_spec: Optional[KernelSpec] = None
    bytes: float = 0.0
    kind: str = ""


ApiCallback = Callable[[ApiCallbackData], None]


@dataclass
class Stream:
    """A GPU stream with its own in-order timeline."""

    index: int
    next_free: float = 0.0
    busy_seconds: float = 0.0
    kernels_launched: int = 0


@dataclass
class LaunchResult:
    """What a kernel launch returns to the caller."""

    correlation_id: int
    start: float
    end: float
    duration: float
    record: ActivityRecord


class GpuRuntime:
    """A single simulated GPU device and its driver front-end."""

    def __init__(
        self,
        device: DeviceSpec,
        real_time: Optional[VirtualClock] = None,
        activity_buffer_size: int = 512,
    ) -> None:
        self.device = device
        self.cost_model = KernelCostModel(device)
        self.real_time = real_time if real_time is not None else VirtualClock("REAL_TIME")
        self.activity = ActivityBufferManager(buffer_size=activity_buffer_size)
        self._correlation = itertools.count(1)
        self._streams: Dict[int, Stream] = {0: Stream(0)}
        self._api_callbacks: List[ApiCallback] = []
        self._allocations: Dict[int, float] = {}
        self._next_ptr = itertools.count(0x10000000)
        self.allocated_bytes = 0.0
        self.peak_allocated_bytes = 0.0
        self.total_kernel_seconds = 0.0
        self.kernel_count = 0
        self.memcpy_count = 0
        self.launch_log: List[ActivityRecord] = []
        self.keep_launch_log = False

    # -- subscriptions ---------------------------------------------------------

    def subscribe(self, callback: ApiCallback) -> None:
        """Register a driver API callback (used by the CUPTI/RocTracer layers)."""
        if callback not in self._api_callbacks:
            self._api_callbacks.append(callback)

    def unsubscribe(self, callback: ApiCallback) -> None:
        if callback in self._api_callbacks:
            self._api_callbacks.remove(callback)

    @property
    def api_name_launch(self) -> str:
        return "cudaLaunchKernel" if self.device.vendor == "nvidia" else "hipLaunchKernel"

    @property
    def api_name_memcpy(self) -> str:
        return "cudaMemcpyAsync" if self.device.vendor == "nvidia" else "hipMemcpyAsync"

    @property
    def api_name_malloc(self) -> str:
        return "cudaMalloc" if self.device.vendor == "nvidia" else "hipMalloc"

    @property
    def api_name_free(self) -> str:
        return "cudaFree" if self.device.vendor == "nvidia" else "hipFree"

    # -- device operations -----------------------------------------------------

    def stream(self, index: int) -> Stream:
        if index not in self._streams:
            self._streams[index] = Stream(index)
        return self._streams[index]

    def launch_kernel(self, spec: KernelSpec) -> LaunchResult:
        """Launch a kernel asynchronously on its stream.

        The kernel starts when both the stream is free and the host has reached
        the launch point (current real time); its duration comes from the
        analytic cost model.
        """
        correlation_id = next(self._correlation)
        function = KernelFunction(name=spec.name)
        data = ApiCallbackData(
            api_name=self.api_name_launch,
            phase=ApiPhase.ENTER,
            correlation_id=correlation_id,
            device=self.device.name,
            stream=spec.stream,
            kernel_function=function,
            kernel_spec=spec,
        )
        self._fire(data)

        stream = self.stream(spec.stream)
        duration = self.cost_model.duration(spec)
        start = max(stream.next_free, self.real_time.now)
        end = start + duration
        stream.next_free = end
        stream.busy_seconds += duration
        stream.kernels_launched += 1
        self.total_kernel_seconds += duration
        self.kernel_count += 1

        record = ActivityRecord(
            kind=ActivityKind.KERNEL,
            name=spec.name,
            start=start,
            end=end,
            correlation_id=correlation_id,
            device=self.device.name,
            stream=spec.stream,
            grid_size=spec.num_blocks,
            block_size=spec.threads_per_block,
            registers_per_thread=spec.registers_per_thread,
            shared_memory_bytes=spec.shared_memory_bytes,
            attributes={"flops": spec.flops, "bytes": spec.bytes_accessed},
        )
        self.activity.emit(record)
        if self.keep_launch_log:
            self.launch_log.append(record)

        data_exit = ApiCallbackData(
            api_name=self.api_name_launch,
            phase=ApiPhase.EXIT,
            correlation_id=correlation_id,
            device=self.device.name,
            stream=spec.stream,
            kernel_function=function,
            kernel_spec=spec,
        )
        self._fire(data_exit)
        return LaunchResult(correlation_id, start, end, duration, record)

    def memcpy(self, bytes_count: float, kind: str = "h2d", stream_index: int = 0,
               name: Optional[str] = None) -> LaunchResult:
        """Issue an asynchronous memory copy on a stream."""
        correlation_id = next(self._correlation)
        api = self.api_name_memcpy
        copy_name = name or f"Memcpy {kind.upper()}"
        enter = ApiCallbackData(
            api_name=api, phase=ApiPhase.ENTER, correlation_id=correlation_id,
            device=self.device.name, stream=stream_index, bytes=bytes_count, kind=kind,
        )
        self._fire(enter)

        stream = self.stream(stream_index)
        bandwidth = self.device.memory_bandwidth * 0.8
        if kind in ("h2d", "d2h"):
            bandwidth = min(bandwidth, 25e9)  # PCIe/NVLink-ish host link
        duration = bytes_count / bandwidth + self.device.memcpy_latency_us * 1e-6
        start = max(stream.next_free, self.real_time.now)
        end = start + duration
        stream.next_free = end
        stream.busy_seconds += duration
        self.memcpy_count += 1

        record = ActivityRecord(
            kind=ActivityKind.MEMCPY,
            name=copy_name,
            start=start,
            end=end,
            correlation_id=correlation_id,
            device=self.device.name,
            stream=stream_index,
            bytes=bytes_count,
            attributes={"kind_" + kind: 1.0},
        )
        self.activity.emit(record)
        exit_data = ApiCallbackData(
            api_name=api, phase=ApiPhase.EXIT, correlation_id=correlation_id,
            device=self.device.name, stream=stream_index, bytes=bytes_count, kind=kind,
        )
        self._fire(exit_data)
        return LaunchResult(correlation_id, start, end, duration, record)

    def malloc(self, bytes_count: float) -> int:
        """Allocate device memory; returns a fake device pointer."""
        correlation_id = next(self._correlation)
        self._fire(ApiCallbackData(
            api_name=self.api_name_malloc, phase=ApiPhase.ENTER,
            correlation_id=correlation_id, device=self.device.name, bytes=bytes_count,
        ))
        ptr = next(self._next_ptr)
        self._allocations[ptr] = bytes_count
        self.allocated_bytes += bytes_count
        self.peak_allocated_bytes = max(self.peak_allocated_bytes, self.allocated_bytes)
        now = self.real_time.now
        self.activity.emit(ActivityRecord(
            kind=ActivityKind.MALLOC, name="cudaMalloc", start=now, end=now,
            correlation_id=correlation_id, device=self.device.name, bytes=bytes_count,
        ))
        self._fire(ApiCallbackData(
            api_name=self.api_name_malloc, phase=ApiPhase.EXIT,
            correlation_id=correlation_id, device=self.device.name, bytes=bytes_count,
        ))
        return ptr

    def free(self, ptr: int) -> None:
        """Release device memory allocated with :meth:`malloc`."""
        if ptr not in self._allocations:
            raise KeyError(f"unknown device pointer: {ptr:#x}")
        bytes_count = self._allocations.pop(ptr)
        correlation_id = next(self._correlation)
        self._fire(ApiCallbackData(
            api_name=self.api_name_free, phase=ApiPhase.ENTER,
            correlation_id=correlation_id, device=self.device.name, bytes=bytes_count,
        ))
        self.allocated_bytes -= bytes_count
        now = self.real_time.now
        self.activity.emit(ActivityRecord(
            kind=ActivityKind.FREE, name="cudaFree", start=now, end=now,
            correlation_id=correlation_id, device=self.device.name, bytes=bytes_count,
        ))
        self._fire(ApiCallbackData(
            api_name=self.api_name_free, phase=ApiPhase.EXIT,
            correlation_id=correlation_id, device=self.device.name, bytes=bytes_count,
        ))

    def synchronize(self) -> float:
        """Block the host until all streams drain; returns the wait in seconds."""
        device_end = max((s.next_free for s in self._streams.values()), default=0.0)
        wait = max(0.0, device_end - self.real_time.now)
        if wait:
            self.real_time.advance(wait)
        return wait

    # -- introspection -----------------------------------------------------------

    @property
    def streams(self) -> List[Stream]:
        return list(self._streams.values())

    @property
    def device_busy_until(self) -> float:
        return max((s.next_free for s in self._streams.values()), default=0.0)

    def _fire(self, data: ApiCallbackData) -> None:
        for callback in list(self._api_callbacks):
            callback(data)
