"""GPU activity records and asynchronous buffered delivery.

CUPTI and RocTracer deliver device-side measurements (kernel execution spans,
memory copies, instruction samples) asynchronously through activity buffers:
the tool registers buffer-completed callbacks and records arrive batched, after
the fact, identified by a *correlation ID* that links them back to the CPU-side
API call that launched the work.  This module reproduces that delivery model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional


class ActivityKind(Enum):
    """Kinds of device activity the simulated runtimes emit."""

    KERNEL = "kernel"
    MEMCPY = "memcpy"
    MEMSET = "memset"
    MALLOC = "malloc"
    FREE = "free"
    SYNCHRONIZE = "synchronize"
    PC_SAMPLE = "pc_sample"


@dataclass(frozen=True)
class ActivityRecord:
    """One device-side activity, delivered asynchronously to subscribers."""

    kind: ActivityKind
    name: str
    start: float
    end: float
    correlation_id: int
    device: str
    stream: int = 0
    bytes: float = 0.0
    grid_size: int = 0
    block_size: int = 0
    registers_per_thread: int = 0
    shared_memory_bytes: int = 0
    attributes: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


BufferCompletedCallback = Callable[[List[ActivityRecord]], None]


class ActivityBufferManager:
    """Batches activity records and delivers them like an async driver would.

    Records accumulate in an internal buffer; when the buffer reaches
    ``buffer_size`` records, or when :meth:`flush` is called explicitly, the
    whole batch is handed to the registered buffer-completed callback.  Tools
    that never register a callback simply drop the records (as the drivers do
    when activity collection is not enabled).
    """

    def __init__(self, buffer_size: int = 512) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.buffer_size = buffer_size
        self._buffer: List[ActivityRecord] = []
        self._callback: Optional[BufferCompletedCallback] = None
        self.enabled = False
        self.records_emitted = 0
        self.buffers_delivered = 0
        self.records_dropped = 0

    def register_callback(self, callback: BufferCompletedCallback) -> None:
        """Register the buffer-completed callback and enable collection."""
        self._callback = callback
        self.enabled = True

    def unregister(self) -> None:
        self._callback = None
        self.enabled = False
        self._buffer.clear()

    def emit(self, record: ActivityRecord) -> None:
        """Add a record; delivers the buffer when it becomes full."""
        self.records_emitted += 1
        if not self.enabled:
            self.records_dropped += 1
            return
        self._buffer.append(record)
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> int:
        """Deliver all pending records; returns how many were delivered."""
        if not self._buffer or self._callback is None:
            self._buffer.clear()
            return 0
        batch, self._buffer = self._buffer, []
        self.buffers_delivered += 1
        self._callback(batch)
        return len(batch)

    @property
    def pending(self) -> int:
        return len(self._buffer)
