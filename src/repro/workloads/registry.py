"""Workload registry: the ten evaluation workloads of paper §5."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Workload
from .models.conformer import ConformerWorkload
from .models.dlrm import DLRMWorkload
from .models.gnn import GNNWorkload
from .models.llm import GemmaWorkload, Llama3Workload, NanoGPTWorkload
from .models.resnet import ResNetWorkload
from .models.transformer_big import TransformerBigWorkload
from .models.unet import UNetWorkload
from .models.vit import ViTWorkload

#: The paper's evaluation order (Figure 6 x-axis).
WORKLOAD_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "conformer": ConformerWorkload,
    "dlrm": DLRMWorkload,
    "unet": UNetWorkload,
    "gnn": GNNWorkload,
    "resnet": ResNetWorkload,
    "vit": ViTWorkload,
    "transformer_big": TransformerBigWorkload,
    "llama3": Llama3Workload,
    "gemma": GemmaWorkload,
    "nanogpt": NanoGPTWorkload,
}

#: Small-configuration overrides used by tests and fast benchmark runs.
SMALL_CONFIGS: Dict[str, Dict[str, object]] = {
    "conformer": {"batch_size": 4, "time_steps": 64, "num_layers": 2},
    "dlrm": {"batch_size": 512, "num_tables": 4},
    "unet": {"batch_size": 2, "image_size": 64},
    "gnn": {"num_nodes": 1024, "num_edges": 4096},
    "resnet": {"batch_size": 4, "image_size": 64},
    "vit": {"batch_size": 2, "image_size": 64, "num_layers": 2},
    "transformer_big": {"batch_size": 4, "sequence_length": 64, "num_layers": 2},
    "llama3": {"prompt_length": 32, "decode_tokens": 2},
    "gemma": {"prompt_length": 32, "decode_tokens": 2},
    "nanogpt": {"prompt_length": 32, "decode_tokens": 2},
}


def workload_names() -> List[str]:
    """Canonical workload names in evaluation order."""
    return list(WORKLOAD_FACTORIES)


def create_workload(name: str, small: bool = False, **options) -> Workload:
    """Instantiate a workload by name.

    ``small=True`` applies the reduced configuration used by the test suite
    and quick benchmark runs; explicit ``options`` always win.
    """
    key = name.lower().replace("-", "_")
    aliases = {
        "dlrm_small": "dlrm",
        "llama3_8b": "llama3",
        "gemma_7b": "gemma",
        "transformer": "transformer_big",
    }
    key = aliases.get(key, key)
    if key not in WORKLOAD_FACTORIES:
        raise KeyError(f"unknown workload: {name!r} (known: {workload_names()})")
    config: Dict[str, object] = {}
    if small:
        config.update(SMALL_CONFIGS.get(key, {}))
    config.update(options)
    return WORKLOAD_FACTORIES[key](**config)
