"""Evaluation workloads (synthetic AlgoPerf-style models on the mini framework)."""

from .base import Workload
from .registry import SMALL_CONFIGS, WORKLOAD_FACTORIES, create_workload, workload_names

__all__ = [
    "Workload",
    "create_workload",
    "workload_names",
    "WORKLOAD_FACTORIES",
    "SMALL_CONFIGS",
]
