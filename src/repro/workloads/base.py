"""Common workload protocol.

Every evaluation workload (the MLCommons AlgoPerf-style models of §5) exposes
the same interface so the overhead harness, the case studies and the examples
can run any of them interchangeably, in eager (PyTorch-like) or JIT (JAX-like)
execution mode.

Workload code deliberately lives inside ``repro.workloads`` because this
package is treated as *user code* by the Python call-path capture — its frames
appear in profiles exactly like a user's model script would.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..framework.eager import EagerEngine
from ..framework.modules import Module, Optimizer
from ..framework.tensor import Tensor


class Workload:
    """Base class for all evaluation workloads."""

    #: Workload name as used in the paper's figures (e.g. "DLRM-small").
    name = "workload"
    #: Dataset the paper pairs the model with (synthetic equivalents here).
    dataset = "synthetic"
    #: True for training workloads (forward + backward + optimizer step).
    training = True
    #: False when the workload cannot be expressed as a jitted step function.
    supports_jit = True

    def __init__(self, **options: object) -> None:
        self.options = dict(options)
        self.model: Optional[Module] = None
        self.optimizer: Optional[Optimizer] = None

    # -- to be implemented by workloads ------------------------------------------------

    def build(self, engine: EagerEngine) -> None:
        """Construct the model (and optimizer for training workloads)."""
        raise NotImplementedError

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        """Produce one input batch (symbolic tensors)."""
        raise NotImplementedError

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        """Forward pass returning the loss (or the model output for inference)."""
        raise NotImplementedError

    # -- shared driver code --------------------------------------------------------------

    def run_iteration(self, engine: EagerEngine, iteration: int = 0) -> None:
        """One eager-mode iteration: forward, loss, backward, optimizer step."""
        batch = self.make_batch(engine, iteration)
        loss = self.forward_loss(engine, batch)
        if self.training:
            engine.backward(loss)
            if self.optimizer is not None:
                self.optimizer.step()

    def step_fn(self, engine: EagerEngine) -> Callable[..., Tensor]:
        """The function the JIT compiler traces for JAX-style execution."""

        def jitted_step(*batch: Tensor) -> Tensor:
            return self.forward_loss(engine, list(batch))

        jitted_step.__name__ = f"{self.name.lower().replace('-', '_')}_step"
        return jitted_step

    # -- accounting ------------------------------------------------------------------------

    def parameter_bytes(self) -> int:
        return self.model.parameter_bytes() if self.model is not None else 0

    def approximate_footprint_bytes(self) -> int:
        """Approximate application memory footprint without any profiler.

        Parameters plus gradients plus optimizer state plus a batch's worth of
        activations — the denominator of the memory-overhead ratio in
        Figure 6(c,d).
        """
        params = self.parameter_bytes()
        multiplier = 4 if self.training else 1  # grads + 2 optimizer moments
        activations = int(self.options.get("activation_bytes", 256 * 1024 * 1024))
        return params * multiplier + activations

    def describe(self) -> str:
        return f"{self.name} ({self.dataset})"


def first_parameters(modules: List[Module]) -> List[Tensor]:
    """All parameters of a list of modules (helper for optimizers)."""
    params: List[Tensor] = []
    for module in modules:
        params.extend(module.parameters())
    return params
